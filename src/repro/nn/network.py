"""Sequential container."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse.

    Each child is given a stable ``layer_name`` (``"<index>:<class>"``)
    so the MERCURY reuse engine can key per-layer signature tables and
    per-layer statistics.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        self._rename_layers()

    def _rename_layers(self) -> None:
        for index, layer in enumerate(self.layers):
            layer.layer_name = f"{index}:{layer.__class__.__name__}"

    def add(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        self._rename_layers()
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
