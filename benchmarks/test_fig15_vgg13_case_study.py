"""Figure 15: VGG-13 case study.

Paper: (a) MCACHE accesses shift toward HIT/MAU in the deeper layers as
the number of input vectors shrinks; (b) per-layer cycles drop under
MERCURY with only a small signature component; (c) the number of unique
vectors per layer is largest in the early layers.
"""

from benchmarks.harness import functional_stats, paper_scale_report, print_header
from repro import MercuryConfig
from repro.analysis import format_table


def run_experiment():
    engine = functional_stats("vgg13", MercuryConfig(signature_bits=20,
                                                     adaptive_stoppage=False),
                              iterations=1)
    conv_layers = [layer for layer in engine.stats.layers("forward")
                   if "Conv2D" in layer]
    access_rows = []
    unique_rows = []
    for index, layer in enumerate(conv_layers):
        record = engine.stats.get(layer, "forward")
        total = max(record.total_vectors, 1)
        access_rows.append([f"layer-{index + 1}", record.hits / total * 100,
                            record.mau / total * 100, record.mnu / total * 100])
        unique_rows.append([f"layer-{index + 1}", record.unique_signatures,
                            record.total_vectors])

    report = paper_scale_report("vgg13")
    cycle_rows = []
    per_layer = {}
    for item in report.layer_cycles:
        entry = per_layer.setdefault(item.layer, {"baseline": 0.0,
                                                  "compute": 0.0,
                                                  "signature": 0.0})
        entry["baseline"] += item.baseline_cycles
        entry["compute"] += item.compute_cycles
        entry["signature"] += item.signature_cycles
    for index, (layer, entry) in enumerate(per_layer.items()):
        cycle_rows.append([f"layer-{index + 1}", entry["baseline"] / 1e6,
                           entry["compute"] / 1e6, entry["signature"] / 1e6])
    return access_rows, cycle_rows, unique_rows


def test_fig15_vgg13_case_study(benchmark):
    access_rows, cycle_rows, unique_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    print_header("Figure 15a — MCACHE access type per VGG-13 layer (%)")
    print(format_table(["layer", "HIT", "MAU", "MNU"], access_rows, "{:.1f}"))

    print_header("Figure 15b — per-layer cycles, baseline vs MERCURY (Mcycles)")
    print(format_table(["layer", "baseline", "MERCURY compute",
                        "MERCURY signature"], cycle_rows, "{:.2f}"))

    print_header("Figure 15c — unique vectors per VGG-13 layer")
    print(format_table(["layer", "unique signatures", "total vectors"],
                       unique_rows))

    assert len(access_rows) == 10
    # Access fractions are a partition of all accesses.
    for row in access_rows:
        assert abs(sum(row[1:]) - 100.0) < 1e-6
    # MERCURY reduces cycles in every paper-scale VGG-13 layer.
    for row in cycle_rows:
        assert row[1] > row[2] + row[3]
    # Early layers have the most unique vectors (largest inputs).
    assert unique_rows[0][1] >= unique_rows[-1][1]
