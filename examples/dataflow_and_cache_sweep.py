"""Explore MERCURY across dataflows and MCACHE organisations.

Projects the twelve paper-scale workloads onto the row-, weight- and
input-stationary dataflows and sweeps the MCACHE geometry, mirroring the
paper's Figures 16 and 18.  Run with:

    python examples/dataflow_and_cache_sweep.py
"""

from repro import MercuryConfig
from repro.accelerator import FPGAModel, MercurySimulator, make_dataflow
from repro.accelerator.workloads import build_workload, workload_to_stats
from repro.analysis import format_table, geomean
from repro.models import CNN_MODEL_NAMES


def speedup(model_name: str, dataflow_name: str, config: MercuryConfig) -> float:
    stats = workload_to_stats(build_workload(model_name,
                                             signature_bits=config.signature_bits))
    simulator = MercurySimulator(config, dataflow=make_dataflow(dataflow_name))
    return simulator.speedup(stats, model_name, apply_analytic_stoppage=True)


def main() -> None:
    config = MercuryConfig()

    # --- Figure 18: the three dataflows ---------------------------------
    rows = []
    for name in CNN_MODEL_NAMES:
        rows.append([name,
                     speedup(name, "row_stationary", config),
                     speedup(name, "weight_stationary", config),
                     speedup(name, "input_stationary", config)])
    means = [geomean([row[i] for row in rows]) for i in (1, 2, 3)]
    rows.append(["geomean", *means])
    print("Speedup per dataflow (paper: RS 1.97x, WS 1.66x, IS 1.55x)")
    print(format_table(["model", "row-stationary", "weight-stationary",
                        "input-stationary"], rows, "{:.2f}"))

    # --- Figure 16 / Tables II-III: what does a bigger MCACHE cost? -----
    fpga = FPGAModel()
    cache_rows = []
    for sets, ways in ((16, 16), (32, 16), (64, 8), (64, 16)):
        resources = fpga.mercury_resources(sets, ways)
        power = fpga.mercury_power(sets, ways)
        cache_rows.append([sets * ways, sets, ways, resources.slice_luts,
                           resources.slice_registers, power.total])
    print("\nMCACHE organisation cost (calibrated Virtex-7 model)")
    print(format_table(["entries", "sets", "ways", "LUTs", "registers",
                        "power (W)"], cache_rows, "{:.1f}"))
    print(f"MERCURY power overhead over baseline: "
          f"{fpga.power_overhead(64, 16):.2f}x")


if __name__ == "__main__":
    main()
