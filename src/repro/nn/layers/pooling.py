"""Pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import conv_output_size, sliding_windows
from repro.nn.module import Module


class MaxPool2D(Module):
    """Max pooling over non-overlapping or strided square windows.

    Both passes are vectorised over every window at once via the
    strided-view helper the convolution hot path uses; the argmax /
    scatter semantics (first-maximum wins, contributions accumulate in
    window order) are identical to a per-window loop.
    """

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(height, k, s, 0)
        out_w = conv_output_size(width, k, s, 0)

        windows = sliding_windows(x, k, k, s)
        # (batch, channels, out_h, out_w, k*k): each window's elements
        # row-major, matching the per-window reshape of the scalar loop.
        flat = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
            batch, channels, out_h, out_w, k * k)
        argmax = flat.argmax(axis=4)
        out = np.take_along_axis(flat, argmax[..., None], axis=4)[..., 0]

        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, argmax = self._cache
        batch, channels, height, width = input_shape
        k, s = self.kernel_size, self.stride
        _, _, out_h, out_w = grad_output.shape

        di, dj = np.divmod(argmax, k)
        rows = np.arange(out_h, dtype=np.int64)[None, None, :, None] * s + di
        cols = np.arange(out_w, dtype=np.int64)[None, None, None, :] * s + dj
        b_idx = np.arange(batch)[:, None, None, None]
        c_idx = np.arange(channels)[None, :, None, None]

        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        np.add.at(grad_input, (b_idx, c_idx, rows, cols), grad_output)
        return grad_input


class AvgPool2D(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(height, k, s, 0)
        out_w = conv_output_size(width, k, s, 0)

        out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
        for i in range(out_h):
            for j in range(out_w):
                window = x[:, :, i * s:i * s + k, j * s:j * s + k]
                out[:, :, i, j] = window.mean(axis=(2, 3))

        self._cache = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape = self._cache
        k, s = self.kernel_size, self.stride
        _, _, out_h, out_w = grad_output.shape

        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        scale = 1.0 / (k * k)
        for i in range(out_h):
            for j in range(out_w):
                grad_input[:, :, i * s:i * s + k, j * s:j * s + k] += (
                    grad_output[:, :, i, j][:, :, None, None] * scale)
        return grad_input


class GlobalAvgPool2D(Module):
    """Average over the full spatial extent, producing ``(batch, channels)``."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._cache
        scale = 1.0 / (height * width)
        grad = grad_output[:, :, None, None] * scale
        return np.broadcast_to(grad, self._cache).copy()
