"""The console-script entry points resolve and run.

The container cannot ``pip install`` the package, so these tests call
the entry functions directly with argv lists — the same call the
installed ``repro-serve`` / ``repro-sweep`` scripts make — and check
that ``setup.py`` names exactly those callables.
"""

from __future__ import annotations

import ast
import importlib
import json
import re
import socket
import threading
import time
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def declared_entry_points() -> dict[str, str]:
    """Parse the console_scripts mapping out of setup.py."""
    tree = ast.parse((REPO_ROOT / "setup.py").read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.keyword) and node.arg == "entry_points":
            mapping = ast.literal_eval(node.value)
            return dict(spec.split("=", 1)
                        for spec in mapping["console_scripts"])
    raise AssertionError("setup.py declares no entry_points")


class TestEntryPointDeclarations:
    def test_scripts_are_declared(self):
        scripts = declared_entry_points()
        assert set(scripts) == {"repro-serve", "repro-sweep"}

    def test_targets_resolve_to_callables(self):
        for target in declared_entry_points().values():
            module_name, function_name = target.split(":")
            module = importlib.import_module(module_name)
            assert callable(getattr(module, function_name))


class TestReproServeCli:
    def test_replay_mode(self, capsys):
        from repro.serving.cli import serve_main
        code = serve_main(["--requests", "30", "--pool-size", "6",
                           "--traffic", "zipfian"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "served 30 requests" in out

    def test_http_drive_mode_batches_concurrent_requests(self, capsys):
        # The self-test drives the trace with concurrent clients, so
        # requests actually share micro-batches — serial requests would
        # leave the batching path untested (every batch of size 1).
        from repro.serving.cli import serve_main
        code = serve_main(["--requests", "24", "--pool-size", "4",
                           "--http"])
        assert code == 0
        out = capsys.readouterr().out
        assert "HTTP front end" in out
        assert "drove 24 requests over HTTP" in out
        match = re.search(r"mean batch size (\d+\.\d+)", out)
        assert match, out
        assert float(match.group(1)) > 1.0

    def test_serve_forever_starts_and_shuts_down(self, capsys):
        # --serve-forever parks on cli._shutdown; a test can bring the
        # server up, talk to it, and stop it without SIGINT.
        from repro.serving import cli

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        codes = []
        thread = threading.Thread(target=lambda: codes.append(
            cli.serve_main(["--http", "--serve-forever",
                            "--port", str(port),
                            "--requests", "4", "--pool-size", "4"])))
        thread.start()
        try:
            deadline = time.monotonic() + 60
            while True:
                try:
                    with urllib.request.urlopen(
                            f"http://127.0.0.1:{port}/healthz",
                            timeout=2) as response:
                        assert response.status == 200
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
        finally:
            # Keep setting the event until the loop notices: setting it
            # in the startup window would be erased by its clear().
            deadline = time.monotonic() + 30
            while thread.is_alive() and time.monotonic() < deadline:
                cli._shutdown.set()
                thread.join(timeout=0.2)
        assert not thread.is_alive()
        assert codes == [0]
        assert "shutdown requested" in capsys.readouterr().out

    def test_parallel_replay_with_injected_kill(self, capsys):
        # The CI parallel-serving smoke in miniature: real worker
        # processes, one injected kill, recovery, and parity with the
        # single-process replay.
        from repro.serving.cli import serve_main
        code = serve_main(["--parallel", "--workers", "2",
                           "--requests", "40", "--pool-size", "8",
                           "--kill-worker", "0",
                           "--kill-after-batches", "1",
                           "--snapshot-every", "2", "--parity-check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured makespan" in out
        assert "1 recovery" in out
        assert "parity: outputs and hit rate" in out

    def test_parallel_rejects_http_and_snapshot_flags(self, capsys):
        from repro.serving.cli import serve_main
        with pytest.raises(SystemExit):
            serve_main(["--parallel", "--http"])
        with pytest.raises(SystemExit):
            serve_main(["--parallel", "--warm-start", "somewhere"])

    def test_sharded_warm_start_round_trip(self, tmp_path, capsys):
        # serve → snapshot → restart → restore → the warm run must hit
        # on (nearly) every request, which no cold run can.
        from repro.serving.cli import serve_main
        snap = str(tmp_path / "snap")
        base = ["--shards", "2", "--requests", "60", "--pool-size", "8"]
        assert serve_main(base + ["--snapshot-to", snap]) == 0
        out = capsys.readouterr().out
        assert "snapshot written" in out
        assert "2 shards" in out
        code = serve_main(base + ["--warm-start", snap,
                                  "--min-hit-rate", "0.97"])
        assert code == 0
        out = capsys.readouterr().out
        assert "warm-started" in out
        assert "this run: hit rate 100.00%" in out

    def test_warm_start_gate_fails_cold(self, tmp_path, capsys):
        from repro.serving.cli import serve_main
        code = serve_main(["--requests", "40", "--pool-size", "8",
                           "--min-hit-rate", "0.99"])
        assert code == 1
        assert "FAIL hit rate" in capsys.readouterr().out

    def test_tiered_replay_with_parity(self, capsys):
        # The CI tiered-serving smoke in miniature: LRU eviction on a
        # churning Zipfian trace, hot-key replication across 2 shards,
        # every output checked against the per-request oracle.
        from repro.serving.cli import serve_main
        code = serve_main(["--shards", "2", "--requests", "80",
                           "--pool-size", "12", "--traffic", "zipfian",
                           "--eviction", "lru", "--replicate-top", "4",
                           "--rotate-every", "20", "--entries", "4",
                           "--ways", "4", "--parity-check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lru eviction" in out
        assert "top-4 replication" in out
        assert "tiering:" in out
        assert "parity: all 80 outputs byte-identical" in out

    def test_l2_store_round_trip(self, tmp_path, capsys):
        # First run fills and flushes the shared L2; the second run
        # opens the same directory warm and reports its entry count.
        from repro.serving.cli import serve_main
        l2 = str(tmp_path / "l2")
        base = ["--requests", "40", "--pool-size", "8",
                "--eviction", "lru", "--entries", "2", "--ways", "2",
                "--l2", l2]
        assert serve_main(base) == 0
        out = capsys.readouterr().out
        assert "L2 store flushed" in out
        assert serve_main(base) == 0
        out = capsys.readouterr().out
        assert "shared L2 (" in out
        assert "0 warm entries" not in out

    def test_tiered_flag_guards(self):
        from repro.serving.cli import serve_main
        with pytest.raises(SystemExit):
            serve_main(["--parallel", "--replicate-top", "4"])
        with pytest.raises(SystemExit):
            serve_main(["--parallel", "--l2", "somewhere"])
        with pytest.raises(SystemExit):
            serve_main(["--parity-check", "--cache-policy", "none"])


class TestReproSweepCli:
    def test_sweep_writes_envelope(self, tmp_path, capsys):
        from repro.analysis.serving_sweep import main
        output = tmp_path / "serving.json"
        code = main(["--models", "squeezenet", "--traffics", "zipfian",
                     "--cache-policies", "none", "request_exact",
                     "--requests", "30", "--pool-size", "6",
                     "--processes", "0", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["schema"] == "serving-sweep"
        assert len(payload["rows"]) == 2
        out = capsys.readouterr().out
        assert "cache_policy" in out
        assert "mean hit rate" in out
