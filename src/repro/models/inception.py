"""Scaled Inception-V4."""

from __future__ import annotations

import numpy as np

from repro.models.blocks import ConvBNReLU, InceptionBlock
from repro.nn import GlobalAvgPool2D, Linear, MaxPool2D
from repro.nn.module import Module, assign_unique_layer_names


class InceptionV4(Module):
    """Two-convolution stem + four inception blocks + classifier.

    Deeper and wider than the GoogLeNet entry so the pair keeps the
    original ordering (Inception-V4 is the heavier network).
    """

    def __init__(self, num_classes: int = 8, in_channels: int = 3, seed: int = 0):
        super().__init__()
        self.stem1 = ConvBNReLU(in_channels, 8, 3, 1, 1, seed=seed)
        self.stem2 = ConvBNReLU(8, 12, 3, 1, 1, seed=seed + 1)
        self.pool1 = MaxPool2D(2)
        self.inception1 = InceptionBlock(12, (6, 8, 6), seed=seed + 2)
        self.inception2 = InceptionBlock(self.inception1.out_channels,
                                         (8, 10, 8), seed=seed + 12)
        self.pool2 = MaxPool2D(2)
        self.inception3 = InceptionBlock(self.inception2.out_channels,
                                         (10, 12, 10), seed=seed + 22)
        self.inception4 = InceptionBlock(self.inception3.out_channels,
                                         (12, 12, 12), seed=seed + 32)
        self.pool = GlobalAvgPool2D()
        self.head = Linear(self.inception4.out_channels, num_classes,
                           seed=seed + 42)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.pool1(self.stem2(self.stem1(x)))
        x = self.inception2(self.inception1(x))
        x = self.pool2(x)
        x = self.inception4(self.inception3(x))
        return self.head(self.pool(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.head.backward(grad_output))
        grad = self.inception3.backward(self.inception4.backward(grad))
        grad = self.pool2.backward(grad)
        grad = self.inception1.backward(self.inception2.backward(grad))
        return self.stem1.backward(self.stem2.backward(self.pool1.backward(grad)))


def build_inception_v4(num_classes: int = 8, in_channels: int = 3,
                       seed: int = 0) -> InceptionV4:
    model = InceptionV4(num_classes, in_channels, seed)
    return assign_unique_layer_names(model, prefix="inception_v4")
