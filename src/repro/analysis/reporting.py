"""Plain-text table formatting and small statistics helpers."""

from __future__ import annotations

import math


def geomean(values) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers, rows, float_format: str = "{:.3f}") -> str:
    """Render a list-of-rows table as aligned monospace text."""
    headers = [str(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [render_line(headers), render_line(["-" * w for w in widths])]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
