"""End-to-end integration tests across the functional and timing layers."""

import numpy as np
import pytest

from repro import MercuryConfig, ReuseEngine
from repro.accelerator import BaselineAccelerator, MercurySimulator
from repro.baselines import CaptureEngine
from repro.core.reuse import ExactCountingEngine
from repro.data import ClusteredImageDataset, ImageDatasetConfig, train_test_split
from repro.models import build_model
from repro.nn import CrossEntropyLoss
from repro.training import Trainer, TrainingConfig

RNG = np.random.default_rng(23)


def _dataset():
    return ClusteredImageDataset(ImageDatasetConfig(num_classes=4,
                                                    samples_per_class=10,
                                                    image_size=16))


def test_conv_layer_reuse_output_close_to_exact():
    """With long signatures the reused forward pass tracks the exact one."""
    dataset = _dataset()
    exact_model = build_model("squeezenet", num_classes=4, seed=3)
    reuse_model = build_model("squeezenet", num_classes=4, seed=3)
    engine = ReuseEngine(MercuryConfig(signature_bits=30,
                                       adaptive_stoppage=False))
    reuse_model.set_engine(engine)

    x = dataset.images[:6]
    exact_logits = exact_model(x)
    reuse_logits = reuse_model(x)
    # Outputs differ only where similar-but-not-identical patches merged;
    # the approximation stays within the logits' own scale.
    difference = np.abs(exact_logits - reuse_logits).mean()
    scale = np.abs(exact_logits).mean()
    assert difference < scale
    assert engine.stats.overall_hit_fraction > 0.1


def test_mercury_training_matches_baseline_accuracy():
    """The Figure 13 claim at miniature scale: comparable accuracy."""
    dataset = _dataset()
    xtr, ytr, xte, yte = train_test_split(dataset.images, dataset.labels,
                                          test_fraction=0.25, seed=0)
    config = TrainingConfig(epochs=4, batch_size=8, learning_rate=0.01,
                            optimizer="adam")

    baseline_model = build_model("squeezenet", num_classes=4, seed=1)
    baseline = Trainer(baseline_model, config).fit(xtr, ytr,
                                                   validation=(xte, yte))

    mercury_model = build_model("squeezenet", num_classes=4, seed=1)
    engine = ReuseEngine(MercuryConfig(signature_bits=20))
    mercury = Trainer(mercury_model, config, engine=engine).fit(
        xtr, ytr, validation=(xte, yte))

    assert baseline.final_validation_accuracy >= 0.45
    assert mercury.final_validation_accuracy >= \
        baseline.final_validation_accuracy - 0.3
    # Training with reuse still makes progress and detects similarity.
    assert mercury.epoch_losses[-1] < mercury.epoch_losses[0]
    assert engine.stats.overall_hit_fraction > 0.03


def test_simulator_consumes_training_statistics():
    dataset = _dataset()
    config = MercuryConfig(signature_bits=16)
    engine = ReuseEngine(config)
    model = build_model("mobilenet_v2", num_classes=4, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=8,
                                            learning_rate=0.01,
                                            optimizer="adam"), engine=engine)
    trainer.fit(dataset.images, dataset.labels)

    report = MercurySimulator(config).simulate(engine.stats, "mobilenet_v2")
    assert report.baseline_total_cycles > 0
    assert report.mercury_total_cycles > 0
    assert 0.0 <= report.signature_fraction <= 1.0
    baseline = BaselineAccelerator()
    assert baseline.total_cycles(engine.stats) == pytest.approx(
        report.baseline_total_cycles)


def test_counting_and_reuse_engines_see_identical_workload_shapes():
    """Both engines observe the same total per-layer MAC workload."""
    x = RNG.normal(size=(2, 3, 32, 32))
    y = RNG.integers(0, 4, size=2)
    loss_fn = CrossEntropyLoss()

    shapes = {}
    for label, engine in (("exact", ExactCountingEngine()),
                          ("reuse", ReuseEngine(MercuryConfig(
                              signature_bits=12, adaptive_stoppage=False)))):
        model = build_model("alexnet", num_classes=4, seed=2)
        model.set_engine(engine)
        logits = model(x)
        loss_fn(logits, y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        shapes[label] = {
            (rec.layer, rec.phase): rec.baseline_macs
            for rec in engine.stats.all_records()}
    assert shapes["exact"].keys() == shapes["reuse"].keys()
    for key in shapes["exact"]:
        assert shapes["exact"][key] == shapes["reuse"][key]


def test_backward_reuse_does_not_break_gradient_shapes():
    model = build_model("googlenet", num_classes=4, seed=0)
    engine = ReuseEngine(MercuryConfig(signature_bits=16))
    model.set_engine(engine)
    x = RNG.normal(size=(2, 3, 32, 32))
    loss_fn = CrossEntropyLoss()
    logits = model(x)
    loss_fn(logits, RNG.integers(0, 4, size=2))
    model.zero_grad()
    grad = model.backward(loss_fn.backward())
    assert grad.shape == x.shape
    assert any(rec.phase == "backward" for rec in engine.stats.all_records())


def test_capture_engine_with_full_model_matches_exact_forward():
    model_a = build_model("alexnet", num_classes=4, seed=5)
    model_b = build_model("alexnet", num_classes=4, seed=5)
    model_b.set_engine(CaptureEngine())
    model_a.eval()
    model_b.eval()
    x = RNG.normal(size=(2, 3, 32, 32))
    np.testing.assert_allclose(model_a(x), model_b(x))


def test_transformer_training_with_reuse_learns():
    from repro.data import TranslationConfig, TranslationDataset
    dataset = TranslationDataset(TranslationConfig(num_samples=96,
                                                   vocab_size=32))
    model = build_model("transformer", num_classes=32, seed=0)
    engine = ReuseEngine(MercuryConfig(signature_bits=20))
    trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=16,
                                            learning_rate=0.01,
                                            optimizer="adam"), engine=engine)
    result = trainer.fit(dataset.sources, dataset.targets)
    assert result.epoch_losses[-1] < result.epoch_losses[0]
    assert engine.stats.total_vectors > 0
