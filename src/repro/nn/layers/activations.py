"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out ** 2)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _COEFF = np.sqrt(2.0 / np.pi)

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        inner = self._COEFF * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out = 0.5 * x * (1.0 + tanh_inner)
        self._cache = (x, tanh_inner)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x, tanh_inner = self._cache
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = self._COEFF * (1.0 + 3 * 0.044715 * x ** 2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        return grad_output * grad


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


class Softmax(Module):
    """Softmax layer along the last axis."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = softmax(x, axis=self.axis)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._out
        dot = np.sum(grad_output * out, axis=self.axis, keepdims=True)
        return out * (grad_output - dot)
