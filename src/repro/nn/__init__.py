"""A small, from-scratch numpy DNN training framework.

The framework implements explicit forward/backward passes for the layer
types the MERCURY paper exercises (convolution, fully-connected,
attention, pooling, normalisation) so that the reuse engine in
:mod:`repro.core` can intercept every dot product that the paper's
accelerator would perform.
"""

from repro.nn.module import Module, Parameter
from repro.nn.network import Sequential
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh, GELU, Softmax
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D, GlobalAvgPool2D
from repro.nn.layers.norm import BatchNorm2D, LayerNorm
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.attention import SelfAttention, MultiHeadSelfAttention
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2D",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Softmax",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "LayerNorm",
    "Dropout",
    "Flatten",
    "Embedding",
    "SelfAttention",
    "MultiHeadSelfAttention",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
]
