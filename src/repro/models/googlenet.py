"""Scaled GoogLeNet (inception-v1 style)."""

from __future__ import annotations

import numpy as np

from repro.models.blocks import ConvBNReLU, InceptionBlock
from repro.nn import GlobalAvgPool2D, Linear, MaxPool2D
from repro.nn.module import Module, assign_unique_layer_names


class GoogLeNet(Module):
    """Stem + three inception blocks + classifier."""

    def __init__(self, num_classes: int = 8, in_channels: int = 3, seed: int = 0):
        super().__init__()
        self.stem = ConvBNReLU(in_channels, 8, 3, 1, 1, seed=seed)
        self.pool1 = MaxPool2D(2)
        self.inception1 = InceptionBlock(8, (4, 6, 4), seed=seed + 1)
        self.inception2 = InceptionBlock(self.inception1.out_channels,
                                         (6, 8, 6), seed=seed + 10)
        self.pool2 = MaxPool2D(2)
        self.inception3 = InceptionBlock(self.inception2.out_channels,
                                         (8, 12, 8), seed=seed + 20)
        self.pool = GlobalAvgPool2D()
        self.head = Linear(self.inception3.out_channels, num_classes,
                           seed=seed + 30)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.pool1(self.stem(x))
        x = self.inception1(x)
        x = self.pool2(self.inception2(x))
        x = self.inception3(x)
        return self.head(self.pool(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.head.backward(grad_output))
        grad = self.inception3.backward(grad)
        grad = self.inception2.backward(self.pool2.backward(grad))
        grad = self.inception1.backward(grad)
        return self.stem.backward(self.pool1.backward(grad))


def build_googlenet(num_classes: int = 8, in_channels: int = 3,
                    seed: int = 0) -> GoogLeNet:
    model = GoogLeNet(num_classes, in_channels, seed)
    return assign_unique_layer_names(model, prefix="googlenet")
