"""``repro-serve`` — the serving stack's console entry point.

Stands up an :class:`~repro.serving.server.InferenceServer` (optionally
sharded) for a model zoo entry and either replays a load-generator
trace through it (the default; prints the telemetry report) or exposes
the HTTP front end:

    repro-serve --model squeezenet --traffic zipfian --requests 300
    repro-serve --cache-policy layered --traffic bursty
    repro-serve --shards 4 --admission frequency
    repro-serve --shards 2 --snapshot-to snap/          # persist caches
    repro-serve --shards 2 --warm-start snap/ --min-hit-rate 0.97
    repro-serve --eviction lru --replicate-top 8 --l2 l2/ --shards 2
    repro-serve --parallel --workers 4                  # real processes
    repro-serve --parallel --workers 4 --kill-worker 1  # crash recovery
    repro-serve --telemetry                             # event bus on
    repro-serve --audit runs/ --controller --rotate-every 40
    repro-serve --audit-read runs/       # print the audit manifest
    repro-serve --http --port 8080 --serve-forever
    repro-serve --http --requests 50     # drive the trace over HTTP
    repro-serve --http --telemetry       # ... and scrape GET /metrics

``--snapshot-to`` writes the cache state after the replay;
``--warm-start`` restores it before serving, so a restarted server
keeps its hit rate; ``--min-hit-rate`` turns the run into a gate (the
CI warm-start round trip).  ``--parallel`` runs the hash-ring shards
as real worker processes with supervised crash recovery;
``--kill-worker``/``--kill-after-batches`` inject a fault into the
replay (the CI parallel-serving smoke), and ``--parity-check``
asserts the parallel run converges to the single-process replay's
outputs and hit counters.  ``--eviction``/``--replicate-top``/``--l2``
turn on the cache-tiering stack (replacement policies, hot-key
replication, shared L2); without ``--parallel``, ``--parity-check``
asserts every served output is byte-identical to the per-request
oracle (the CI tiered-serving smoke).  ``--telemetry`` attaches the
:mod:`repro.obs` event bus and metrics registry (and, with ``--http``,
the ``GET /metrics`` Prometheus endpoint); ``--audit DIR`` persists a
versioned run manifest there (``--audit-read DIR`` prints one back);
``--controller`` runs the online adaptive policy controller over
``--controller-window``-batch telemetry windows.  Installed by
``setup.py`` (``console_scripts``); equally runnable as ``python -m
repro.serving.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request

import numpy as np

from repro.analysis.serving_sweep import (CACHE_POLICIES, ServingPoint,
                                          serving_pieces)
from repro.core.eviction import EVICTION_POLICIES
from repro.core.session import ADMISSION_POLICIES
from repro.models.registry import MODEL_NAMES
from repro.serving.loadgen import TRAFFIC_PATTERNS, trace_summary

# --serve-forever parks on this event instead of a bare sleep loop, so
# tests (and embedders) can stop a serving thread without SIGINT.
_shutdown = threading.Event()


def _print_report(report) -> None:
    print(f"served {report.requests} requests "
          f"({report.throughput_rps:.0f} rps, {report.batches} "
          f"micro-batches, mean size {report.mean_batch_size:.1f})")
    print(f"hit rate {report.hit_rate:.2%}, latency p50 "
          f"{report.latency_p50_ms:.2f} ms / p99 "
          f"{report.latency_p99_ms:.2f} ms")
    if report.shards > 1:
        shares = ", ".join(
            f"shard {row['shard']}: {row['requests']} reqs "
            f"{row['hit_rate']:.0%}" for row in report.shard_stats)
        print(f"{report.shards} shards ({shares})")


def _print_telemetry(args, report) -> None:
    if not report.telemetry:
        return
    digest = report.telemetry
    print(f"telemetry: {digest['events']} events "
          f"({digest['dropped']} dropped), histogram latency p50 "
          f"{report.latency_hist_p50_ms:.2f} ms / p99 "
          f"{report.latency_hist_p99_ms:.2f} ms"
          + (f", {digest['decisions']} controller decisions"
             if args.controller else ""))
    if args.audit:
        print(f"audit manifest written to {args.audit} "
              f"(read back with --audit-read {args.audit})")


def _parallel_main(args, point, pool, trace, server) -> int:
    """The ``--parallel`` replay: real workers, supervised recovery."""
    from repro.analysis.serving_sweep import policy_for
    from repro.serving.batcher import BatcherConfig
    from repro.serving.parallel import (FaultInjection,
                                        ParallelInferenceServer)

    fault = None
    if args.kill_worker is not None:
        fault = FaultInjection(worker=args.kill_worker,
                               kill_after_batches=args.kill_after_batches)
        print(f"fault injection: kill worker {fault.worker} after "
              f"{fault.kill_after_batches} batches")
    parallel = ParallelInferenceServer(
        server.model, policy_for(point),
        BatcherConfig(max_batch_size=point.batch_size,
                      max_wait_s=point.max_wait_ms / 1e3),
        workers=args.workers, snapshot_every_batches=args.snapshot_every,
        fault=fault, telemetry=server.telemetry)
    with parallel:
        outputs, report = parallel.replay(trace, pool)
    _print_report(report)
    _print_telemetry(args, report)
    print(f"{args.workers} worker processes: measured makespan "
          f"{report.measured_makespan_s:.3f}s, "
          f"{report.recoveries} recover"
          f"{'y' if report.recoveries == 1 else 'ies'}")
    if args.kill_worker is not None and report.recoveries == 0:
        print("FAIL fault was injected but no recovery happened")
        return 1

    failures = []
    if args.parity_check:
        # The determinism oracle: the same trace through the
        # single-process replay at the same shard count must produce
        # identical outputs and identical cache decisions.
        reference_outputs, reference = server.replay(trace, pool)
        mismatched = sum(
            1 for ours, theirs in zip(outputs, reference_outputs)
            if not np.array_equal(ours, theirs))
        if mismatched:
            failures.append(f"{mismatched}/{len(trace)} outputs differ "
                            f"from the single-process replay")
        if abs(report.hit_rate - reference.hit_rate) > 1e-12:
            failures.append(
                f"hit rate {report.hit_rate:.4%} != single-process "
                f"{reference.hit_rate:.4%}")
        if not failures:
            print(f"parity: outputs and hit rate "
                  f"({report.hit_rate:.2%}) match the single-process "
                  f"replay")
    if args.min_hit_rate is not None \
            and report.hit_rate < args.min_hit_rate:
        failures.append(f"hit rate {report.hit_rate:.2%} below the "
                        f"{args.min_hit_rate:.2%} floor")
    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="squeezenet",
                        choices=list(MODEL_NAMES))
    parser.add_argument("--traffic", default="zipfian",
                        choices=list(TRAFFIC_PATTERNS))
    parser.add_argument("--cache-policy", default="request_exact",
                        choices=sorted(CACHE_POLICIES))
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--pool-size", type=int, default=24)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--shards", type=int, default=1,
                        help="worker shards behind the routing front end")
    parser.add_argument("--admission", default="always",
                        choices=list(ADMISSION_POLICIES),
                        help="cache insertion gate")
    parser.add_argument("--eviction", default="none",
                        choices=list(EVICTION_POLICIES),
                        help="cache replacement policy (none = the "
                             "paper's no-replacement behaviour)")
    parser.add_argument("--replicate-top", type=int, default=0,
                        metavar="K",
                        help="replicate the K hottest signatures' "
                             "cached rows across shards (0 = off)")
    parser.add_argument("--l2", default=None, metavar="DIR",
                        help="back the per-shard caches with a shared "
                             "L2 tier persisted under DIR")
    parser.add_argument("--entries", type=int, default=4096,
                        help="cache entries per shard")
    parser.add_argument("--ways", type=int, default=16,
                        help="cache set associativity")
    parser.add_argument("--rotate-every", type=int, default=0,
                        help="zipfian hot-set churn period in requests "
                             "(0 = stationary popularity)")
    parser.add_argument("--warm-start", default=None, metavar="DIR",
                        help="restore cache state from a snapshot "
                             "directory before serving")
    parser.add_argument("--snapshot-to", default=None, metavar="DIR",
                        help="write cache state to a snapshot directory "
                             "after serving")
    parser.add_argument("--min-hit-rate", type=float, default=None,
                        help="exit non-zero unless the replay hit rate "
                             "reaches this floor (warm-start gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--parallel", action="store_true",
                        help="run the shards as real worker processes "
                             "with supervised crash recovery")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker-process count for --parallel")
    parser.add_argument("--kill-worker", type=int, default=None,
                        metavar="W",
                        help="with --parallel: inject a fault that kills "
                             "worker W mid-replay (recovery smoke)")
    parser.add_argument("--kill-after-batches", type=int, default=2,
                        help="batches the faulted worker completes "
                             "before dying")
    parser.add_argument("--snapshot-every", type=int, default=4,
                        help="with --parallel: worker snapshot cadence "
                             "in batches (recovery watermark)")
    parser.add_argument("--parity-check", action="store_true",
                        help="with --parallel: exit non-zero unless the "
                             "parallel replay matches the single-process "
                             "replay's outputs and hit counters; "
                             "otherwise: exit non-zero unless every "
                             "served output is byte-identical to the "
                             "engine-less per-request oracle (needs "
                             "--cache-policy request_exact)")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach the repro.obs event bus + metrics "
                             "registry to the run")
    parser.add_argument("--audit", default=None, metavar="DIR",
                        help="persist a versioned audit manifest of the "
                             "run under DIR (implies --telemetry)")
    parser.add_argument("--audit-read", default=None, metavar="DIR",
                        help="print the audit manifest found under DIR "
                             "and exit")
    parser.add_argument("--controller", action="store_true",
                        help="retune TTL/admission online from telemetry "
                             "windows (implies --telemetry)")
    parser.add_argument("--controller-window", type=int, default=4,
                        metavar="N",
                        help="telemetry window size in micro-batches")
    parser.add_argument("--http", action="store_true",
                        help="expose the stdlib HTTP front end")
    parser.add_argument("--port", type=int, default=0,
                        help="HTTP port (0 = ephemeral)")
    parser.add_argument("--serve-forever", action="store_true",
                        help="with --http: block until interrupted")
    args = parser.parse_args(argv)
    if args.audit_read:
        from repro.obs import read_manifest, render_manifest
        print(render_manifest(read_manifest(args.audit_read)))
        return 0
    if args.controller and args.parallel:
        parser.error("--controller retunes the in-process server's "
                     "caches; it cannot be combined with --parallel")
    if args.parallel and args.http:
        parser.error("--parallel serves the replay path; it cannot be "
                     "combined with --http")
    if args.parallel and (args.warm_start or args.snapshot_to):
        parser.error("--parallel manages per-worker snapshots itself; "
                     "--warm-start/--snapshot-to apply to the "
                     "single-process server")
    if args.parallel and (args.replicate_top or args.l2):
        parser.error("--replicate-top/--l2 need shards that share "
                     "memory; they cannot be combined with --parallel")
    if not args.parallel and args.parity_check \
            and args.cache_policy != "request_exact":
        parser.error("--parity-check without --parallel asserts "
                     "byte-identity against the per-request oracle, "
                     "which only the request_exact policy guarantees")

    shards = args.workers if args.parallel else args.shards
    l2_store = None
    if args.l2 is not None:
        from repro.serving.tiering import SharedL2Cache
        l2_store = SharedL2Cache(directory=args.l2)
    telemetry = None
    if args.telemetry or args.audit or args.controller:
        from repro.analysis.functional_sweep import derive_seed
        from repro.analysis.serving_sweep import (MODEL_STREAM,
                                                  POOL_STREAM,
                                                  TRACE_STREAM)
        from repro.obs import AdaptivePolicyController, Telemetry
        telemetry = Telemetry(
            audit_dir=args.audit,
            controller=AdaptivePolicyController() if args.controller
            else None,
            window_batches=args.controller_window,
            seeds={"model": derive_seed(args.seed, MODEL_STREAM),
                   "pool": derive_seed(args.seed, POOL_STREAM),
                   "trace": derive_seed(args.seed, TRACE_STREAM)})
    point = ServingPoint(model=args.model, traffic=args.traffic,
                         cache_policy=args.cache_policy,
                         batch_size=args.batch_size,
                         num_requests=args.requests,
                         pool_size=args.pool_size,
                         entries=args.entries, ways=args.ways,
                         shards=shards,
                         admission=args.admission,
                         eviction=args.eviction,
                         replicate_top=args.replicate_top,
                         l2=args.l2 is not None,
                         rotate_every=args.rotate_every,
                         telemetry=telemetry is not None,
                         controller=args.controller, seed=args.seed)
    _, pool, trace, server = serving_pieces(point, l2_store=l2_store,
                                            telemetry=telemetry)
    tiering = ""
    if args.eviction != "none" or args.replicate_top or args.l2:
        pieces = [f"{args.eviction} eviction"]
        if args.replicate_top:
            pieces.append(f"top-{args.replicate_top} replication")
        if args.l2:
            pieces.append(f"shared L2 ({len(l2_store)} warm entries)")
        tiering = ", " + ", ".join(pieces)
    print(f"{args.model} behind a {args.cache_policy} cache "
          f"({shards} shard{'s' if shards != 1 else ''}, "
          f"{args.admission} admission{tiering}); {args.traffic} trace "
          f"({trace_summary(trace)['distinct_payloads']} distinct "
          f"payloads)")
    if args.parallel:
        return _parallel_main(args, point, pool, trace, server)
    if args.warm_start:
        manifest = server.restore(args.warm_start)
        print(f"warm-started from {args.warm_start} "
              f"({len(manifest['caches'])} cache streams)")

    if not args.http:
        before = server.cache_counters()
        outputs, report = server.replay(trace, pool)
        _print_report(report)
        _print_telemetry(args, report)
        if report.request_cache.get("evicted") \
                or report.request_cache.get("replicated"):
            print(f"tiering: {report.request_cache.get('evicted', 0)} "
                  f"evictions, {report.request_cache.get('replicated', 0)} "
                  f"replica pushes")
        if report.l2:
            print(f"shared L2: {report.l2['entries']} entries, hit rate "
                  f"{report.l2['hit_rate']:.2%}")
        # Counters survive a warm start, so isolate this run's rate.
        after = server.cache_counters()
        run_requests = after.requests - before.requests
        run_hit_rate = (after.hits - before.hits) / run_requests \
            if run_requests else report.hit_rate
        if args.warm_start:
            print(f"this run: hit rate {run_hit_rate:.2%} "
                  f"(lifetime {report.hit_rate:.2%})")
        if args.snapshot_to:
            manifest = server.snapshot(args.snapshot_to)
            print(f"snapshot written to {args.snapshot_to} "
                  f"({len(manifest['caches'])} cache streams)")
        if l2_store is not None:
            manifest = l2_store.flush()
            print(f"L2 store flushed to {args.l2} "
                  f"({manifest['entries']} entries)")
        failures = []
        if args.parity_check:
            # The exactness oracle: every served output must be
            # byte-identical to the engine-less per-request forward —
            # eviction, replication and L2 may change *where* a row
            # comes from, never its bytes.
            oracle = server.oracle_outputs(pool)
            mismatched = sum(
                1 for request, output in zip(trace, outputs)
                if not np.array_equal(output,
                                      oracle[request.pool_index]))
            if mismatched:
                failures.append(f"{mismatched}/{len(trace)} outputs "
                                f"differ from the per-request oracle")
            else:
                print(f"parity: all {len(trace)} outputs byte-identical "
                      f"to the per-request oracle")
        if args.min_hit_rate is not None \
                and run_hit_rate < args.min_hit_rate:
            failures.append(f"hit rate {run_hit_rate:.2%} below the "
                            f"{args.min_hit_rate:.2%} floor")
        for failure in failures:
            print(f"FAIL {failure}")
        return 1 if failures else 0

    front = server.serve_http(port=args.port)
    print(f"HTTP front end at {front.url()} "
          f"(POST /infer, GET /stats, GET /healthz)")
    try:
        if args.serve_forever:
            _shutdown.clear()
            try:
                # Park on the event (poll cheaply) so a test or an
                # embedder can stop the loop by setting it; Ctrl-C
                # still works for interactive runs.
                while not _shutdown.wait(timeout=0.2):
                    pass
                print("shutdown requested")
            except KeyboardInterrupt:
                print("interrupted")
            return 0

        # Drive the trace through the HTTP door as a self-test — with
        # concurrent clients, so requests actually share micro-batches
        # (serial requests would make every batch size 1 and leave the
        # batching path untested).
        from concurrent.futures import ThreadPoolExecutor

        def post(request):
            body = json.dumps(
                {"inputs": np.asarray(
                    pool[request.pool_index]).tolist()}).encode()
            http_request = urllib.request.Request(
                front.url("/infer"), data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(http_request, timeout=30):
                pass

        with ThreadPoolExecutor(max_workers=min(16, args.batch_size * 2)) \
                as executor:
            for future in [executor.submit(post, request)
                           for request in trace]:
                future.result()
        with urllib.request.urlopen(front.url("/stats"),
                                    timeout=10) as response:
            stats = json.load(response)
        print(f"drove {args.requests} requests over HTTP: hit rate "
              f"{stats['hit_rate']:.2%}, mean batch size "
              f"{stats['mean_batch_size']:.2f}, p99 "
              f"{stats['latency_p99_ms']:.2f} ms")
        if telemetry is not None:
            with urllib.request.urlopen(front.url("/metrics"),
                                        timeout=10) as response:
                exposition = response.read().decode("utf-8")
            samples = [line for line in exposition.splitlines()
                       if line and not line.startswith("#")]
            print(f"GET /metrics: {len(samples)} samples, e.g. "
                  + "; ".join(samples[:2]))
        return 0
    finally:
        front.stop()


if __name__ == "__main__":
    sys.exit(serve_main())
