"""Tests for the comparison baselines, training harness and analysis."""

import numpy as np
import pytest

from repro.analysis import (format_table, geomean, measure_layer_similarity,
                            measure_unique_vectors, rpq_unique_vector_experiment)
from repro.baselines import (BloomFilter, BloomFilterSimilarity, CaptureEngine,
                             UCNNBound, UnlimitedSimilarityBound,
                             ZeroPruningBound)
from repro.data import ClusteredImageDataset, ImageDatasetConfig
from repro.models import build_model
from repro.nn import CrossEntropyLoss, Linear, ReLU, Sequential
from repro.training import Trainer, TrainingConfig, bleu_score, top1_accuracy

RNG = np.random.default_rng(17)


# ----------------------------------------------------------------------
# Capture engine
# ----------------------------------------------------------------------
def test_capture_engine_records_operands():
    engine = CaptureEngine()
    a = RNG.normal(size=(4, 3))
    b = RNG.normal(size=(3, 2))
    out = engine.matmul(a, b, layer="fc", phase="forward")
    np.testing.assert_allclose(out, a @ b)
    assert engine.layers() == ["fc"]
    assert engine.total_macs() == 4 * 3 * 2
    engine.clear()
    assert engine.total_macs() == 0


def test_capture_engine_backward_toggle():
    engine = CaptureEngine(capture_backward=False)
    engine.matmul(RNG.normal(size=(2, 2)), RNG.normal(size=(2, 2)),
                  layer="fc", phase="backward")
    assert engine.total_macs(phase="backward") == 0


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
def test_bloom_filter_membership():
    bloom = BloomFilter(num_bits=256, num_hashes=3)
    assert not bloom.contains(b"hello")
    bloom.add(b"hello")
    assert bloom.contains(b"hello")
    assert 0 < bloom.fill_ratio() < 1


def test_bloom_filter_saturation_causes_false_positives():
    bloom = BloomFilter(num_bits=8, num_hashes=2)
    for index in range(100):
        bloom.add(str(index).encode())
    assert bloom.contains(b"never-added")


def test_bloom_similarity_counts_exact_duplicates():
    detector = BloomFilterSimilarity(num_bits=1024)
    vectors = np.vstack([np.ones(8)] * 5 + [np.zeros(8)])
    assert detector.unique_vector_count(vectors) == 2
    assert detector.similarity_fraction(vectors) == pytest.approx(4 / 6)


def test_bloom_vs_rpq_figure3_shape():
    """RPQ converges to the true unique count; Bloom over-counts copies."""
    true_unique = 10
    rng = np.random.default_rng(0)
    originals = rng.normal(size=(true_unique, 10))
    population = [originals] + [originals + rng.normal(0, 0.05, originals.shape)
                                for _ in range(10)]
    vectors = np.concatenate(population)

    rpq_estimate = measure_unique_vectors(vectors, signature_bits=40)
    bloom_estimate = BloomFilterSimilarity(num_bits=4096).unique_vector_count(vectors)
    assert abs(rpq_estimate - true_unique) < abs(bloom_estimate - true_unique)


def test_bloom_validation():
    with pytest.raises(ValueError):
        BloomFilter(num_bits=0)
    with pytest.raises(ValueError):
        BloomFilterSimilarity(num_bits=16, quantization_step=0)


# ----------------------------------------------------------------------
# UCNN / zero pruning / unlimited similarity
# ----------------------------------------------------------------------
def _captured_toy_model():
    engine = CaptureEngine()
    model = Sequential(Linear(16, 8, seed=0), ReLU(), Linear(8, 4, seed=1))
    model.set_engine(engine)
    x = RNG.normal(size=(10, 16))
    x[x < 0] = 0.0  # introduce sparsity, as post-ReLU activations have
    logits = model(x)
    loss = CrossEntropyLoss()
    loss(logits, RNG.integers(0, 4, size=10))
    model.zero_grad()
    model.backward(loss.backward())
    return engine


def test_ucnn_bound_increases_with_coarser_quantization():
    engine = _captured_toy_model()
    speedups = [UCNNBound(bits).model_speedup(engine) for bits in (6, 7, 8)]
    assert all(s >= 1.0 for s in speedups)
    assert speedups[0] >= speedups[1] >= speedups[2]


def test_ucnn_layer_report_ops_accounting():
    report = UCNNBound(6).layer_report("l", RNG.normal(size=(5, 9)),
                                       RNG.normal(size=(9, 4)))
    assert report.baseline_ops == 5 * 4 * 17
    assert 0 < report.reduced_ops <= report.baseline_ops
    assert report.speedup >= 1.0


def test_ucnn_validation():
    with pytest.raises(ValueError):
        UCNNBound(0)


def test_zero_pruning_bound_reflects_sparsity():
    bound = ZeroPruningBound()
    dense = bound.layer_report("l", np.ones((4, 8)), np.ones((8, 2)))
    assert dense.speedup == pytest.approx(1.0)
    sparse_inputs = np.ones((4, 8))
    sparse_inputs[:, ::2] = 0.0
    sparse = bound.layer_report("l", sparse_inputs, np.ones((8, 2)))
    assert sparse.speedup == pytest.approx(2.0)


def test_zero_pruning_model_speedup_above_one_for_relu_nets():
    engine = _captured_toy_model()
    assert ZeroPruningBound().model_speedup(engine) > 1.0


def test_unlimited_similarity_bound():
    bound = UnlimitedSimilarityBound(value_resolution=0.5)
    repeated = np.tile(np.array([[1.0, 1.0, 2.0, 2.0]]), (3, 1))
    report = bound.layer_report("l", repeated, np.ones((4, 5)))
    # Only two distinct values per vector -> half the multiplies needed.
    assert report.speedup == pytest.approx(2.0)
    assert UnlimitedSimilarityBound().model_speedup(_captured_toy_model()) >= 1.0


def test_bounds_validation():
    with pytest.raises(ValueError):
        ZeroPruningBound(zero_threshold=-1)
    with pytest.raises(ValueError):
        UnlimitedSimilarityBound(value_resolution=0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_top1_accuracy():
    logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.3, 0.7]])
    labels = np.array([1, 0, 0])
    assert top1_accuracy(logits, labels) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        top1_accuracy(logits, np.array([1, 0]))


def test_bleu_perfect_and_degraded():
    references = [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]]
    assert bleu_score(references, references) == pytest.approx(100.0)
    noisy = [[1, 2, 3, 4, 0], [6, 7, 8, 9, 10]]
    score = bleu_score(references, noisy)
    assert 0 < score < 100
    assert bleu_score(references, [[11, 12, 13, 14, 15]] * 2) < 10


def test_bleu_validation():
    with pytest.raises(ValueError):
        bleu_score([[1, 2]], [[1, 2], [3, 4]])
    with pytest.raises(ValueError):
        bleu_score([], [])


# ----------------------------------------------------------------------
# Trainer
# ----------------------------------------------------------------------
def _tiny_classification_problem():
    dataset = ClusteredImageDataset(ImageDatasetConfig(num_classes=3,
                                                       samples_per_class=8,
                                                       image_size=12))
    return dataset.images, dataset.labels


def test_trainer_reduces_loss():
    from repro.nn import Conv2D, Flatten, GlobalAvgPool2D
    inputs, labels = _tiny_classification_problem()
    model = Sequential(Conv2D(3, 6, 3, padding=1, seed=0), ReLU(),
                       GlobalAvgPool2D(), Linear(6, 3, seed=1))
    trainer = Trainer(model, TrainingConfig(epochs=4, batch_size=6,
                                            learning_rate=0.02,
                                            optimizer="adam"))
    result = trainer.fit(inputs, labels)
    assert result.epoch_losses[-1] < result.epoch_losses[0]
    assert result.iterations == 4 * 4
    accuracy = trainer.evaluate(inputs, labels)
    assert accuracy > 0.4


def test_trainer_with_reuse_engine_records_stats():
    from repro import MercuryConfig, ReuseEngine
    from repro.nn import Conv2D, GlobalAvgPool2D
    inputs, labels = _tiny_classification_problem()
    model = Sequential(Conv2D(3, 6, 3, padding=1, seed=0), ReLU(),
                       GlobalAvgPool2D(), Linear(6, 3, seed=1))
    engine = ReuseEngine(MercuryConfig(signature_bits=16))
    trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=6,
                                            learning_rate=0.02,
                                            optimizer="adam"), engine=engine)
    trainer.fit(inputs, labels)
    assert engine.stats.total_vectors > 0
    assert engine.iterations == 4


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(optimizer="rmsprop")


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def test_measure_layer_similarity_reports_conv_layers():
    dataset = ClusteredImageDataset(ImageDatasetConfig(num_classes=3,
                                                       samples_per_class=4,
                                                       image_size=16))
    model = build_model("squeezenet", num_classes=3, seed=0)
    results = measure_layer_similarity(model, dataset.images[:4],
                                       dataset.labels[:4], signature_bits=16)
    assert results
    for item in results:
        assert 0.0 <= item.input_similarity <= 1.0
        assert 0.0 <= item.gradient_similarity <= 1.0
        assert item.unique_input_vectors <= item.total_input_vectors
    # The engine attachment is restored afterwards.
    assert all(m.engine is None for m in model.modules())


def test_rpq_unique_vector_experiment_converges():
    short = rpq_unique_vector_experiment(signature_bits=2)
    long = rpq_unique_vector_experiment(signature_bits=40)
    assert short <= long
    assert 8 <= long <= 35


def test_geomean_and_format_table():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])
    table = format_table(["model", "speedup"], [["vgg13", 1.92]])
    assert "vgg13" in table and "1.920" in table
