"""Configuration for the MERCURY scheme."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MercuryConfig:
    """All tunables of the MERCURY design.

    Defaults follow the paper's chosen configuration: an initial 20-bit
    signature that grows as training converges, a 1024-entry 16-way
    MCACHE with no replacement, and adaptation thresholds ``K`` (loss
    plateau length before growing the signature) and ``T`` (consecutive
    costly batches before a layer's similarity detection is switched
    off).
    """

    # --- Signature / RPQ ------------------------------------------------
    signature_bits: int = 20
    max_signature_bits: int = 64
    rpq_seed: int = 1234

    # --- MCACHE ---------------------------------------------------------
    mcache_entries: int = 1024
    mcache_ways: int = 16
    # Number of data versions per line (asynchronous design keeps one
    # version per in-flight filter); the synchronous design uses 1.
    mcache_versions: int = 1
    # Which MCACHE model builds the Hitmap: "vectorized" (the batch
    # array-of-sets engine), "groupby" (the stateless numpy group-by
    # simulation) or "scalar" (the line-level oracle; exact but slow).
    # All three are bit-identical — the differential suite enforces it.
    mcache_backend: str = "vectorized"

    # --- Adaptation (§III-D) ---------------------------------------------
    # Increase signature length by one bit when the running loss changes
    # by less than ``loss_plateau_tolerance`` for ``plateau_iterations``
    # (the paper's K) consecutive iterations.
    plateau_iterations: int = 5
    loss_plateau_tolerance: float = 1e-3
    # Turn a layer's similarity detection off when signature cost
    # exceeds the saved cycles for ``stoppage_batches`` (the paper's T)
    # consecutive batches.
    stoppage_batches: int = 3
    adaptive_signature_length: bool = True
    adaptive_stoppage: bool = True

    # --- Reuse scope ------------------------------------------------------
    reuse_forward: bool = True
    reuse_backward: bool = True
    # Reload forward signatures in backward when the vector length
    # matches (§III-C2); otherwise recompute.
    reload_signatures_in_backward: bool = True
    # Convolution signature granularity: signatures are computed over
    # k x k patches of this many input channels at a time (1 = one
    # channel, as in §III-B, where signatures are recalculated whenever
    # a new channel is processed).  ``None`` hashes the whole
    # cross-channel patch in one signature.
    conv_channel_group: int | None = 1
    # Service all channel groups of one convolution call through a
    # single multi-group signature/group-by phase (one engine call)
    # instead of one engine call per group.  Bit-identical to the
    # per-call path — each group still probes a fresh MCACHE — and
    # regression-tested so; ``False`` restores the per-call loop (the
    # oracle for that test).
    batch_channel_groups: bool = True
    # Run the cache ride of a batched multi-group call as one fused
    # gather → block GEMM → scatter (``ReuseSession.ride_groups``)
    # instead of one masked GEMM per group.  Bit-identical by
    # construction (per-group GEMMs keep their per-call shapes) and
    # regression-tested so; ``False`` restores the per-group masked
    # ride, the oracle for that test.
    fused_ride: bool = True

    # --- Accelerator ------------------------------------------------------
    dataflow: str = "row_stationary"
    num_pes: int = 168
    pipelined_signatures: bool = True
    asynchronous_pe_sets: bool = True

    def __post_init__(self):
        if self.signature_bits <= 0:
            raise ValueError("signature_bits must be positive")
        if self.signature_bits > self.max_signature_bits:
            raise ValueError("signature_bits cannot exceed max_signature_bits")
        if self.mcache_entries <= 0 or self.mcache_ways <= 0:
            raise ValueError("MCACHE entries and ways must be positive")
        if self.mcache_entries % self.mcache_ways != 0:
            raise ValueError("mcache_entries must be divisible by mcache_ways")
        if self.dataflow not in ("row_stationary", "weight_stationary",
                                 "input_stationary"):
            raise ValueError(f"unknown dataflow {self.dataflow!r}")
        if self.mcache_backend not in ("vectorized", "groupby", "scalar"):
            raise ValueError(f"unknown mcache_backend {self.mcache_backend!r}")

    @property
    def mcache_sets(self) -> int:
        """Number of sets in the MCACHE."""
        return self.mcache_entries // self.mcache_ways

    def replace(self, **changes) -> "MercuryConfig":
        """Return a copy with the given fields changed."""
        from dataclasses import replace as dc_replace
        return dc_replace(self, **changes)
