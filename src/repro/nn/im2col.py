"""im2col / col2im utilities.

The paper's accelerator operates on *input vectors* extracted from the
input matrix — exactly the columns that im2col produces.  MERCURY's
signatures are computed per extracted vector, so these helpers are the
bridge between the functional convolution and the reuse engine.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int,
           stride: int = 1, pad: int = 0) -> np.ndarray:
    """Convert a batch of images into a matrix of extracted input vectors.

    Parameters
    ----------
    x:
        Input of shape ``(batch, channels, height, width)``.
    kernel_h, kernel_w:
        Filter dimensions.
    stride, pad:
        Convolution stride and zero padding.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(batch * out_h * out_w, channels * kernel_h *
        kernel_w)``; each row is one input vector in the paper's sense.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    if pad > 0:
        x = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)],
                   mode="constant")

    cols = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w),
                    dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]

    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w)
    return cols


def col2im(cols: np.ndarray, input_shape: tuple, kernel_h: int, kernel_w: int,
           stride: int = 1, pad: int = 0) -> np.ndarray:
    """Inverse of :func:`im2col` accumulating overlapping contributions.

    Parameters
    ----------
    cols:
        Matrix of shape ``(batch * out_h * out_w, channels * kernel_h *
        kernel_w)``.
    input_shape:
        The original ``(batch, channels, height, width)``.

    Returns
    -------
    numpy.ndarray
        Array with the original input shape where overlapping patch
        positions have been summed (as required by convolution
        backward).
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((batch, channels, height + 2 * pad + stride - 1,
                       width + 2 * pad + stride - 1), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]

    return padded[:, :, pad:pad + height, pad:pad + width]
