"""Adaptation policies (§III-D).

Two mechanisms keep MERCURY from hurting accuracy or performance as
training converges:

* **Signature length growth** — once the running training loss stops
  improving for ``K`` consecutive iterations, the signature is extended
  by one bit.  Longer signatures only merge vectors that are *more*
  similar, so accuracy impact shrinks while some reuse is given up.

* **Per-layer stoppage** — MERCURY analytically compares the cycles it
  spends generating signatures (``C_S``) against the cycles it saves by
  skipping dot products.  If signature generation costs more than it
  saves for ``T`` consecutive batches in a layer, similarity detection
  is turned off for that layer (the adaptivity plotted in Figure 14a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import LayerReuseStats


class SignatureLengthScheduler:
    """Grow the signature length when the loss plateaus."""

    def __init__(self, initial_bits: int = 20, max_bits: int = 64,
                 plateau_iterations: int = 5, tolerance: float = 1e-3):
        if initial_bits <= 0:
            raise ValueError("initial_bits must be positive")
        if max_bits < initial_bits:
            raise ValueError("max_bits must be >= initial_bits")
        if plateau_iterations <= 0:
            raise ValueError("plateau_iterations must be positive")
        self.bits = initial_bits
        self.max_bits = max_bits
        self.plateau_iterations = plateau_iterations
        self.tolerance = tolerance
        self._last_loss: float | None = None
        self._flat_count = 0
        self.growth_events: list[int] = []
        self._iteration = 0

    def observe_loss(self, loss: float) -> int:
        """Record one iteration's loss; returns the signature length to use."""
        self._iteration += 1
        if self._last_loss is not None:
            if abs(self._last_loss - loss) <= self.tolerance:
                self._flat_count += 1
            else:
                self._flat_count = 0
        self._last_loss = loss

        if self._flat_count >= self.plateau_iterations and self.bits < self.max_bits:
            self.bits += 1
            self.growth_events.append(self._iteration)
            self._flat_count = 0
        return self.bits


@dataclass
class _LayerStoppageState:
    costly_batches: int = 0
    disabled: bool = False


class SimilarityStoppage:
    """Per-layer switch that disables similarity detection when unprofitable.

    Cost accounting follows the paper (C_S vs C_B in §III-D): the
    signature-generation cost is the multiply-accumulate work spent
    producing signatures (each signature bit is a dot product of the
    input vector with one random filter), while the saving is the MAC
    work skipped by HIT vectors.  Both are expressed in MAC operations
    of the same PE array — the array maps either kind of dot product the
    same way — so they are directly comparable.  Pipelining reduces the
    effective signature cost by roughly half (Figure 8).
    """

    def __init__(self, stoppage_batches: int = 3,
                 pipelined_signatures: bool = True):
        if stoppage_batches <= 0:
            raise ValueError("stoppage_batches must be positive")
        self.stoppage_batches = stoppage_batches
        self.pipelined_signatures = pipelined_signatures
        self._layers: dict[str, _LayerStoppageState] = {}

    def _state(self, layer: str) -> _LayerStoppageState:
        if layer not in self._layers:
            self._layers[layer] = _LayerStoppageState()
        return self._layers[layer]

    # ------------------------------------------------------------------
    def signature_cost_cycles(self, *, num_vectors: int, vector_length: int,
                              signature_bits: int) -> float:
        """MAC-equivalent cost of generating signatures for one batch.

        Every signature bit is a length-``vector_length`` dot product
        with a random filter.  Without pipelining the PE set is busy for
        twice the multiply time of each bit (idle adder cycles,
        Figure 8a); the ORg pipelining recovers that factor of ~2.
        """
        macs_per_vector = signature_bits * vector_length
        total = num_vectors * macs_per_vector
        if self.pipelined_signatures:
            return float(total)
        return float(2 * total)

    def saved_cycles(self, *, hits: int, vector_length: int,
                     num_filters: int) -> float:
        """MAC work avoided by HIT vectors."""
        return float(hits * vector_length * num_filters)

    # ------------------------------------------------------------------
    def is_enabled(self, layer: str) -> bool:
        return not self._state(layer).disabled

    @staticmethod
    def key_for(layer: str, phase: str) -> str:
        """Stoppage bookkeeping key; forward and backward are independent."""
        return f"{layer}::{phase}"

    def observe_batch(self, stats: LayerReuseStats) -> bool:
        """Update the stoppage state after a batch; returns enabled flag."""
        state = self._state(self.key_for(stats.layer, stats.phase))
        if state.disabled:
            return False

        cost = self.signature_cost_cycles(
            num_vectors=stats.total_vectors,
            vector_length=stats.vector_length,
            signature_bits=stats.signature_bits)
        saved = self.saved_cycles(hits=stats.hits,
                                  vector_length=stats.vector_length,
                                  num_filters=stats.num_filters)

        if cost > saved:
            state.costly_batches += 1
        else:
            state.costly_batches = 0

        if state.costly_batches >= self.stoppage_batches:
            state.disabled = True
        return not state.disabled

    def is_enabled_for(self, layer: str, phase: str) -> bool:
        return self.is_enabled(self.key_for(layer, phase))

    def disabled_layers(self) -> list[str]:
        return [name for name, state in self._layers.items() if state.disabled]

    def enabled_layers(self) -> list[str]:
        return [name for name, state in self._layers.items() if not state.disabled]

    def force_disable(self, layer: str, phase: str = "forward") -> None:
        self._state(self.key_for(layer, phase)).disabled = True

    def reset(self) -> None:
        self._layers.clear()
