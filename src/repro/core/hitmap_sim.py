"""Vectorised simulation of the signature phase.

The object-level :class:`~repro.core.mcache.MCache` models the hardware
structure line by line; probing it once per vector from Python is exact
but slow for the tens of thousands of vectors a convolution layer
produces.  ``simulate_hitmap`` reproduces the *same* HIT / MAU / MNU
decisions (the test suite checks equivalence against the line-level
model) using numpy group-by operations:

* the first occurrence of a signature whose set still has a free way is
  MAU and owns the cache line;
* later occurrences of an inserted signature are HIT and point at the
  owner;
* occurrences of a signature whose set was already full at its first
  occurrence are MNU (no replacement — Figure 9).

Signatures arrive either as a 1-D ``int64`` array or — beyond 62 bits —
as the multi-word ``(n_vectors, n_words)`` ``uint64`` representation
(:mod:`repro.core.rpq`); the multi-word path groups by lexicographic
row sort and stays fully vectorised.  Object arrays of exact Python
ints are still accepted and run through the sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hitmap import Hitmap, HitState
from repro.core.rpq import coerce_packed, unique_signatures, words_mod


@dataclass
class HitmapSimulation:
    """Outcome of the signature phase for one set of vectors."""

    states: np.ndarray          # object array of HitState
    representative: np.ndarray  # int array; HIT rows point at their source
    hits: int
    mau: int
    mnu: int
    unique_signatures: int

    def to_hitmap(self) -> Hitmap:
        """Materialise a :class:`Hitmap` without per-entry validation cost."""
        hitmap = Hitmap(len(self.states))
        hitmap._states = list(self.states)
        hitmap._source = [int(src) if state is HitState.HIT else None
                          for state, src in zip(self.states, self.representative)]
        return hitmap


def rank_within_groups(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal, pre-sorted keys.

    ``sorted_keys`` must be grouped (equal values adjacent); the result
    counts 0, 1, 2, ... within each run.  Shared by the stateless
    group-by simulation below and the batch MCACHE's insert competition
    (:mod:`repro.core.mcache_vec`) so the two stay structurally, not
    just observably, identical.
    """
    num_keys = len(sorted_keys)
    if num_keys == 0:
        return np.empty(0, dtype=np.int64)
    new_group = np.ones(num_keys, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_starts = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    return np.arange(num_keys) - group_starts[group_ids]


def signature_sets(unique_values: np.ndarray, num_sets: int) -> np.ndarray:
    """Cache-set index per unique signature, for either representation."""
    if unique_values.ndim == 2:
        return words_mod(unique_values, num_sets)
    return (unique_values % num_sets).astype(np.int64)


def simulate_hitmap(signatures: np.ndarray, num_sets: int,
                    ways: int) -> HitmapSimulation:
    """Classify every signature as HIT, MAU or MNU.

    Parameters
    ----------
    signatures:
        Packed signatures in arrival order: 1-D integers or the
        multi-word 2-D form.
    num_sets, ways:
        MCACHE geometry; insertion into a set stops once ``ways``
        distinct signatures have claimed its lines.
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("num_sets and ways must be positive")
    signatures = np.asarray(signatures)
    num_vectors = len(signatures)

    if num_vectors == 0:
        return HitmapSimulation(states=np.empty(0, dtype=object),
                                representative=np.empty(0, dtype=np.int64),
                                hits=0, mau=0, mnu=0, unique_signatures=0)

    signatures, wide = coerce_packed(signatures)
    if signatures.ndim == 2:
        return _simulate_vectorised(signatures.astype(np.uint64, copy=False),
                                    num_sets, ways)
    if wide:
        # 1-D object array of exact ints: the sequential reference.
        return _simulate_sequential(signatures, num_sets, ways)
    return _simulate_vectorised(signatures, num_sets, ways)


def _simulate_vectorised(signatures: np.ndarray, num_sets: int,
                         ways: int) -> HitmapSimulation:
    """numpy group-by implementation for either packed representation."""
    num_vectors = len(signatures)
    unique_values, first_index, inverse = unique_signatures(signatures)

    # Decide which unique signatures win a cache line: order them by
    # first occurrence and admit the first `ways` per set.
    unique_sets = signature_sets(unique_values, num_sets)
    arrival_order = np.argsort(first_index, kind="stable")
    sets_in_arrival = unique_sets[arrival_order]

    by_set = np.argsort(sets_in_arrival, kind="stable")
    sorted_sets = sets_in_arrival[by_set]
    rank_within_set = rank_within_groups(sorted_sets)

    inserted_in_arrival = np.empty(len(sorted_sets), dtype=bool)
    inserted_in_arrival[by_set] = rank_within_set < ways
    inserted_unique = np.empty(len(unique_values), dtype=bool)
    inserted_unique[arrival_order] = inserted_in_arrival

    is_first = np.zeros(num_vectors, dtype=bool)
    is_first[first_index] = True
    vector_inserted = inserted_unique[inverse]

    hit_mask = vector_inserted & ~is_first
    mau_mask = vector_inserted & is_first
    mnu_mask = ~vector_inserted

    states = np.empty(num_vectors, dtype=object)
    states[hit_mask] = HitState.HIT
    states[mau_mask] = HitState.MAU
    states[mnu_mask] = HitState.MNU

    representative = np.arange(num_vectors, dtype=np.int64)
    representative[hit_mask] = first_index[inverse[hit_mask]]

    return HitmapSimulation(states=states, representative=representative,
                            hits=int(hit_mask.sum()), mau=int(mau_mask.sum()),
                            mnu=int(mnu_mask.sum()),
                            unique_signatures=len(unique_values))


def _simulate_sequential(signatures: np.ndarray, num_sets: int,
                         ways: int) -> HitmapSimulation:
    """Reference implementation used for object arrays of exact ints."""
    num_vectors = len(signatures)
    states = np.empty(num_vectors, dtype=object)
    representative = np.arange(num_vectors, dtype=np.int64)

    set_occupancy: dict[int, int] = {}
    owner_of_signature: dict[int, int] = {}
    rejected: set[int] = set()
    hits = mau = mnu = 0

    for index in range(num_vectors):
        signature = int(signatures[index])
        if signature in owner_of_signature:
            states[index] = HitState.HIT
            representative[index] = owner_of_signature[signature]
            hits += 1
            continue
        if signature in rejected:
            states[index] = HitState.MNU
            mnu += 1
            continue
        set_index = signature % num_sets
        occupancy = set_occupancy.get(set_index, 0)
        if occupancy < ways:
            set_occupancy[set_index] = occupancy + 1
            owner_of_signature[signature] = index
            states[index] = HitState.MAU
            mau += 1
        else:
            rejected.add(signature)
            states[index] = HitState.MNU
            mnu += 1

    unique = len(owner_of_signature) + len(rejected)
    return HitmapSimulation(states=states, representative=representative,
                            hits=hits, mau=mau, mnu=mnu,
                            unique_signatures=unique)
