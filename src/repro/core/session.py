"""The shared reuse-session core of the training and serving engines.

Before this module existed the probe/insert + cache-ride logic lived
twice: once in the training :class:`~repro.core.reuse.ReuseEngine`
(signatures → Hitmap over a freshly-cleared MCACHE → copy HIT rows) and
once in the serving ``SignatureResultCache`` (signatures → persistent
probe/insert → serve cached rows, admit fresh ones).  The two copies
had started to drift; :class:`ReuseSession` is now the single
implementation, instantiated in one of two modes:

* **flash** (``persistent=False``) — the training semantics: every
  :meth:`classify` call sees a freshly-cleared MCACHE, so similarity is
  exploited only *within* one batch (the paper's per-layer flush).  The
  engine drives the two phases separately — :meth:`classify` builds the
  Hitmap through the configured backend, :meth:`ride` performs the
  compute-misses/copy-hits assembly;
* **persistent** (``persistent=True``) — the serving semantics: cache
  state survives across :meth:`serve` calls, entries age by micro-batch
  (:attr:`SessionPolicy.ttl_batches`), hits may be payload-verified
  (``exact_check``) and insertion is governed by an admission policy.

Persistent sessions also support :meth:`state_dict` /
:meth:`load_state_dict` so a serving cache can be snapshotted to disk
and warm-started after a restart; the restore rebuilds the MCACHE by
re-inserting the resident signatures in entry-id order, which
reproduces the exact (set, way, entry-id) placement because insertion
is deterministic first-come.

Admission policies (the ``admission`` axis of :class:`SessionPolicy`):

* ``always`` — every computed signature that finds a free way claims a
  line (the original behaviour; bit-identical to the pre-policy code);
* ``frequency`` — a signature is only admitted once it has been seen
  at least ``admission_min_frequency`` times (rows, cumulative across
  batches); one-shot traffic never pollutes the cache.  The gate's
  memory is itself bounded (stalest keys are evicted beyond
  ``4 x entries``), so it cannot grow without limit either;
* ``size`` — a signature is only admitted while its stored payload
  (``vector length x 8`` bytes) stays within ``admission_max_bytes``;
  oversized streams are computed every time.

Non-admitted signatures are counted as *rejected*, exactly like a
signature whose set was full (the paper's MNU): computed, not stored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.differential import scalar_reference_simulation
from repro.core.eviction import EVICTION_POLICIES, build_eviction_state
from repro.core.hitmap import HIT_CODE, MAU_CODE, MNU_CODE
from repro.core.hitmap_sim import (HitmapSimulation, signature_sets,
                                   simulate_hitmap, simulate_hitmap_grouped)
from repro.core.mcache_vec import VectorizedMCache
from repro.core.rpq import RPQHasher, unique_signatures

ADMISSION_POLICIES = ("always", "frequency", "size")

#: Version of the :meth:`ReuseSession.state_dict` layout.  Bump when the
#: array/meta contract changes; ``load_state_dict`` rejects mismatches.
#: Version 2 added the ``layout`` key and the eviction metadata arrays.
STATE_VERSION = 2


@dataclass(frozen=True)
class SessionPolicy:
    """Knobs of one reuse session — the shared core of ``ServingPolicy``.

    ``entries``/``ways`` give the MCACHE geometry: capacity is enforced
    the paper's way — no replacement; a signature whose set is full is
    computed every time (MNU).  ``ttl_batches`` bounds entry age: a hit
    on an entry inserted more than that many micro-batches ago is
    *refreshed* — recomputed and rewritten in place with its age reset —
    so stale traffic cannot pin results forever.  ``0`` means "expire
    immediately": an entry is only ever served within the micro-batch
    index that wrote it, so cross-batch reuse is disabled while
    intra-batch dedup keeps working.  ``None`` means entries never
    expire.  ``admission`` selects how computed signatures earn a cache
    line (see the module docstring).

    ``eviction`` selects the replacement policy for persistent
    sessions: ``none`` keeps the paper's no-replacement semantics
    (full set = MNU, computed every time), while ``lru``/``lfu``/
    ``slru`` recycle a victim line instead of rejecting — see
    :mod:`repro.core.eviction`.
    """

    # Signature / capacity knobs.
    signature_bits: int = 32
    entries: int = 4096
    ways: int = 16
    ttl_batches: int | None = None
    # Collision safety: verify the stored payload equals the incoming
    # one before serving a hit; mismatches are demoted to computes.
    exact_check: bool = True
    # Insertion gate: "always", "frequency" or "size".
    admission: str = "always"
    admission_min_frequency: int = 2
    admission_max_bytes: int | None = None
    # Replacement policy: "none" (paper semantics), "lru", "lfu", "slru".
    eviction: str = "none"
    rpq_seed: int = 1234

    def __post_init__(self):
        if self.signature_bits <= 0:
            raise ValueError("signature_bits must be positive")
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ValueError("entries must be divisible by ways")
        if self.ttl_batches is not None and self.ttl_batches < 0:
            raise ValueError("ttl_batches must be >= 0 (0 = expire "
                             "immediately) or None (never expire)")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission {self.admission!r}; "
                             f"choose from {ADMISSION_POLICIES}")
        if self.admission_min_frequency <= 0:
            raise ValueError("admission_min_frequency must be positive")
        if self.admission_max_bytes is not None \
                and self.admission_max_bytes <= 0:
            raise ValueError("admission_max_bytes must be positive "
                             "(or None)")
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction {self.eviction!r}; "
                             f"choose from {EVICTION_POLICIES}")

    def replace(self, **changes) -> "SessionPolicy":
        from dataclasses import replace as dc_replace
        return dc_replace(self, **changes)

    def fingerprint(self) -> dict:
        """The JSON-safe identity a snapshot must match to be restored."""
        return {"signature_bits": self.signature_bits,
                "entries": self.entries, "ways": self.ways,
                "ttl_batches": self.ttl_batches,
                "exact_check": self.exact_check,
                "admission": self.admission,
                "admission_min_frequency": self.admission_min_frequency,
                "admission_max_bytes": self.admission_max_bytes,
                "eviction": self.eviction,
                "rpq_seed": self.rpq_seed}


@dataclass
class CacheCounters:
    """Row-level outcome counters of one persistent :class:`ReuseSession`."""

    requests: int = 0          # rows probed
    cross_hits: int = 0        # rows served from an earlier batch's entry
    intra_hits: int = 0        # duplicate rows within one batch
    computed: int = 0          # rows actually multiplied/forwarded
    inserted: int = 0          # computed rows admitted into the cache
    rejected: int = 0          # computed rows denied a line (set full
    #                            MNU, or vetoed by the admission policy)
    expired: int = 0           # hits demoted by TTL (entry refreshed)
    collisions: int = 0        # exact-check demotions (signature aliasing)
    evicted: int = 0           # lines recycled by the replacement policy
    replicated: int = 0        # rows pushed in by hot-key replication

    @property
    def hits(self) -> int:
        return self.cross_hits + self.intra_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {"requests": self.requests, "cross_hits": self.cross_hits,
                "intra_hits": self.intra_hits, "computed": self.computed,
                "inserted": self.inserted, "rejected": self.rejected,
                "expired": self.expired, "collisions": self.collisions,
                "evicted": self.evicted, "replicated": self.replicated,
                "hit_rate": self.hit_rate}

    def merge(self, other: "CacheCounters") -> "CacheCounters":
        for name, value in vars(other).items():
            setattr(self, name, getattr(self, name) + value)
        return self

    @classmethod
    def aggregate(cls, counters) -> "CacheCounters":
        total = cls()
        for item in counters:
            total.merge(item)
        return total


@dataclass
class ServeOutcome:
    """Reuse decisions of one :meth:`ReuseSession.serve` call."""

    rows: int = 0
    unique: int = 0
    cross_hit_rows: int = 0
    intra_hit_rows: int = 0
    aliased_rows: int = 0
    reused_unique: int = 0
    computed_unique: int = 0
    inserted_unique: int = 0
    rejected_unique: int = 0

    @property
    def hit_rows(self) -> int:
        return self.cross_hit_rows + self.intra_hit_rows


class ReuseSession:
    """One signature→result reuse step, flash-clear or persistent.

    One instance serves one stream of equal-length vectors (a request
    payload shape, or one layer's input vectors).  Probing, admission
    and the result store ride on the persistent batch machinery of
    :class:`~repro.core.mcache_vec.VectorizedMCache`
    (``lookup_or_insert_batch`` + the data phase), so capacity behaves
    exactly like the hardware structure: set-associative, no
    replacement.
    """

    def __init__(self, policy: SessionPolicy, hasher: RPQHasher | None = None,
                 *, persistent: bool = True, backend: str = "vectorized",
                 versions: int = 1):
        self.policy = policy
        self.hasher = hasher or RPQHasher(seed=policy.rpq_seed)
        self.persistent = persistent
        self.backend = backend
        self.mcache = VectorizedMCache(entries=policy.entries,
                                       ways=policy.ways, versions=versions)
        self.num_sets = self.mcache.num_sets
        if policy.eviction != "none" and not persistent:
            raise ValueError("eviction policies require a persistent "
                             "session (flash sessions clear per batch)")
        self._evictor = build_eviction_state(policy.eviction,
                                             self.num_sets, policy.ways)
        self.counters = CacheCounters()
        # Lifetime count of cache resets: flash-mode per-call clears in
        # training, controller-triggered flushes in serving.  Kept off
        # CacheCounters on purpose — the counter payloads (and the
        # golden files pinning them) stay unchanged.
        self.clears = 0
        # entry id -> micro-batch index of (re)insertion, densely grown
        # alongside the MCACHE's entry ids.
        self._entry_batch = np.empty(0, dtype=np.int64)
        # signature key -> (cumulative row count, last-seen batch): the
        # frequency admission gate's memory for not-yet-admitted
        # signatures.  Bounded — one-shot traffic must not grow it
        # forever in a long-running server — by evicting the stalest
        # keys once it exceeds ``_seen_capacity`` (deterministic, so
        # sweep rows stay reproducible).
        self._seen: dict = {}
        self._seen_capacity = max(4 * policy.entries, 1024)
        # Dense result store, indexed by MCACHE entry id: the serving
        # hot path's replacement for the object grid inside the batch
        # MCACHE (which stays as the differential suite's data-phase
        # model).  ``_store_rows`` holds the cached result rows,
        # ``_store_payloads`` the exact-check input payloads; both are
        # allocated on first write because the row width is only known
        # then (one session serves one stream of equal-length vectors).
        self._store_valid = np.empty(0, dtype=bool)
        self._store_rows: np.ndarray | None = None
        self._store_payloads: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Flash phase — the training engine's per-layer Hitmap
    # ------------------------------------------------------------------
    def classify(self, signatures) -> HitmapSimulation:
        """Simulate the MCACHE signature phase for one batch (Figure 9).

        The three backends are bit-identical (the differential suite
        asserts it); they differ only in speed and in what they model:
        ``vectorized`` probes the persistent batch MCACHE, ``groupby``
        runs the stateless numpy simulation and ``scalar`` replays the
        line-level oracle one probe at a time.
        """
        if self.backend == "vectorized":
            return self.mcache.simulate(signatures)
        if self.backend == "scalar":
            return scalar_reference_simulation(signatures,
                                               num_sets=self.num_sets,
                                               ways=self.policy.ways)
        return simulate_hitmap(signatures, num_sets=self.num_sets,
                               ways=self.policy.ways)

    def classify_groups(self, signature_groups,
                        signature_bits: int) -> list[HitmapSimulation]:
        """One Hitmap per group, through the configured backend.

        The vectorized and groupby backends share the multi-group
        group-by; the scalar oracle replays its line-level model per
        group.  All backends stay bit-identical to per-call simulation.
        Each group sees a fresh MCACHE: signatures never match, and
        never steal ways, across groups.
        """
        if self.backend == "scalar":
            return [scalar_reference_simulation(signatures,
                                                num_sets=self.num_sets,
                                                ways=self.policy.ways)
                    for signatures in signature_groups]
        # One signature length is in force for the whole call, so the
        # groups share a packed representation: all 1-D int64 or all
        # multi-word 2-D with the same word count.
        if signature_groups[0].ndim == 2:
            stacked = np.vstack(signature_groups)
        else:
            stacked = np.concatenate(signature_groups)
        simulations = simulate_hitmap_grouped(
            stacked, [len(sigs) for sigs in signature_groups],
            num_sets=self.num_sets, ways=self.policy.ways,
            signature_bits=signature_bits)
        if self.backend == "vectorized":
            # The persistent batch MCACHE's simulate() path is "clear,
            # replay, accumulate counters"; mirror it so its stats
            # characterise the run identically.
            self.clears += 1
            self.mcache.clear()
            for simulation in simulations:
                self.mcache.stats.hits += simulation.hits
                self.mcache.stats.mau += simulation.mau
                self.mcache.stats.mnu += simulation.mnu
        return simulations

    @staticmethod
    def ride(vectors: np.ndarray, weights: np.ndarray,
             simulation: HitmapSimulation) -> np.ndarray:
        """The cache-ride assembly: compute misses, copy HIT rows."""
        num_vectors = vectors.shape[0]
        num_filters = weights.shape[1]
        if simulation.hits:
            hit_mask = simulation.states == HIT_CODE
            compute_mask = ~hit_mask
            result = np.empty((num_vectors, num_filters), dtype=np.float64)
            result[compute_mask] = vectors[compute_mask] @ weights
            result[hit_mask] = result[simulation.representative[hit_mask]]
        else:
            # Nothing to copy: skip the mask build and the masked
            # gather/scatter round trip.
            result = vectors @ weights
        return result

    @staticmethod
    def ride_groups(vectors_groups, weights_groups,
                    simulations) -> list[np.ndarray]:
        """Fused cache ride over many channel groups at once.

        Bit-identical to calling :meth:`ride` once per group, but the
        assembly runs as one gather → block GEMM → scatter over the
        whole ``matmul_groups`` call: one miss-row gather across all
        groups into a contiguous buffer, one GEMM per group on a
        contiguous slice of it (the per-group ``(misses, length) @
        (length, filters)`` shapes — and therefore the BLAS reduction
        order and every output bit — match the per-call path exactly),
        and one row-map gather to assemble the output.  The scatter and
        the HIT-row copy collapse into that last gather: an int64 map
        sends every row to its row in the computed block — misses to
        their own GEMM row, HITs to their representative's (a MAU row,
        so always computed) — and ``computed[map]`` materialises the
        whole result in one pass.  Fixing up the map moves 8 bytes per
        HIT row where the per-call path copies a full result row, which
        is where the fused speedup comes from at conv-like group
        counts.

        Caller contract (the engine's ``matmul_groups`` enforces it):
        every group shares one vector length and one filter count, and
        vectors are float64.  Returns per-group result views into one
        contiguous ``(total_rows, filters)`` buffer.
        """
        num_groups = len(vectors_groups)
        counts = np.array([len(vectors) for vectors in vectors_groups],
                          dtype=np.int64)
        starts = np.zeros(num_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        total = int(starts[-1])
        length = weights_groups[0].shape[0]
        num_filters = weights_groups[0].shape[1]

        if not any(simulation.hits for simulation in simulations):
            # Per-call fast path taken for every group: plain products.
            return [vectors @ weights for vectors, weights
                    in zip(vectors_groups, weights_groups)]

        codes = np.concatenate([simulation.states
                                for simulation in simulations])
        miss_mask = codes != HIT_CODE
        # Row map: each miss row points at its own slot in the computed
        # block (its rank among the misses).
        row_map = np.cumsum(miss_mask, dtype=np.int64)
        row_map -= 1
        miss_idx = np.flatnonzero(miss_mask)
        # miss_idx ascends, so each group's misses form one contiguous
        # segment [seg[g], seg[g+1]) of the gathered buffer.
        seg = np.searchsorted(miss_idx, starts)
        gathered = np.empty((len(miss_idx), length), dtype=np.float64)
        computed = np.empty((len(miss_idx), num_filters), dtype=np.float64)
        for group in range(num_groups):
            lo, hi = int(seg[group]), int(seg[group + 1])
            if lo == hi:
                continue
            np.take(vectors_groups[group], miss_idx[lo:hi] - starts[group],
                    axis=0, out=gathered[lo:hi])
            np.matmul(gathered[lo:hi], weights_groups[group],
                      out=computed[lo:hi])

        # Representatives are group-local; offset them to the
        # concatenated frame.  A HIT's representative is always a MAU
        # row — a miss — so its map entry is already final, and HIT
        # rows simply inherit it.
        hit_mask = ~miss_mask
        offsets = np.repeat(starts[:-1], counts)
        representative = np.concatenate(
            [simulation.representative for simulation in simulations])
        sources = representative + offsets
        row_map[hit_mask] = row_map[sources[hit_mask]]
        results = computed[row_map]
        return [results[starts[group]:starts[group + 1]]
                for group in range(num_groups)]

    # ------------------------------------------------------------------
    # Persistent phase — the serving caches
    # ------------------------------------------------------------------
    def _grow_entry_batches(self, batch_index: int) -> None:
        missing = self.mcache._next_entry_id - len(self._entry_batch)
        if missing > 0:
            self._entry_batch = np.concatenate(
                [self._entry_batch,
                 np.full(missing, batch_index, dtype=np.int64)])
            self._store_valid = np.concatenate(
                [self._store_valid, np.zeros(missing, dtype=bool)])
            capacity = len(self._entry_batch)
            for name in ("_store_rows", "_store_payloads"):
                store = getattr(self, name)
                if store is not None and len(store) < capacity:
                    grown = np.empty((max(capacity, 2 * len(store)),
                                      store.shape[1]), dtype=np.float64)
                    grown[:len(store)] = store
                    setattr(self, name, grown)

    def _ensure_store(self, row_width: int,
                      payload_width: int | None) -> None:
        """Allocate (or width-check) the dense result store."""
        if self._store_rows is None:
            capacity = max(len(self._entry_batch), 1)
            self._store_rows = np.empty((capacity, row_width),
                                        dtype=np.float64)
            if payload_width is not None:
                self._store_payloads = np.empty((capacity, payload_width),
                                                dtype=np.float64)
            return
        if self._store_rows.shape[1] != row_width or (
                payload_width is not None
                and self._store_payloads.shape[1] != payload_width):
            raise ValueError("result width changed mid-stream; one "
                             "session serves one stream of equal-length "
                             "vectors")

    def _store_write(self, entry_ids: np.ndarray, rows: np.ndarray,
                     payloads: np.ndarray | None) -> None:
        """Admit computed rows (and exact-check payloads) by entry id."""
        self._ensure_store(rows.shape[1],
                           None if payloads is None else payloads.shape[1])
        self._store_rows[entry_ids] = rows
        if payloads is not None:
            self._store_payloads[entry_ids] = payloads
        self._store_valid[entry_ids] = True

    @staticmethod
    def _signature_key(value):
        """A hashable identity for one signature (int64 or words row)."""
        if isinstance(value, np.ndarray):
            return value.tobytes()
        return int(value)

    def _prune_seen(self) -> None:
        """Evict the stalest frequency-gate entries beyond capacity.

        Selection order matches a stable sort by last-seen batch (ties
        fall back to insertion order) — deterministic for deterministic
        traffic — but runs as an O(n) ``argpartition`` for the stalest
        k instead of sorting the whole gate on every prune.
        """
        excess = len(self._seen) - self._seen_capacity
        if excess <= 0:
            return
        keys = list(self._seen)
        batches = np.fromiter((self._seen[key][1] for key in keys),
                              dtype=np.int64, count=len(keys))
        threshold = int(
            batches[np.argpartition(batches, excess - 1)[:excess]].max())
        below = np.flatnonzero(batches < threshold)
        for index in below:
            del self._seen[keys[index]]
        # Ties at the threshold batch evict in insertion order (the
        # ascending key index), exactly the stable sort's tie-break.
        for index in np.flatnonzero(batches == threshold)[
                :excess - len(below)]:
            del self._seen[keys[index]]

    def _admitted_absents(self, uniques, absent, counts,
                          payload_bytes: int,
                          batch_index: int) -> np.ndarray:
        """Which absent unique positions may claim a line this batch."""
        if self.policy.admission == "always":
            return absent
        if self.policy.admission == "size":
            return absent if (
                self.policy.admission_max_bytes is None
                or payload_bytes <= self.policy.admission_max_bytes) \
                else absent[:0]
        # frequency
        wants = []
        for position in absent:
            key = self._signature_key(uniques[position])
            seen = self._seen.get(key, (0, 0))[0] + int(counts[position])
            if seen >= self.policy.admission_min_frequency:
                self._seen.pop(key, None)
                wants.append(position)
            else:
                self._seen[key] = (seen, batch_index)
        self._prune_seen()
        return np.asarray(wants, dtype=np.int64)

    def _probe_and_admit(self, uniques, first_index, inverse,
                         payload_bytes: int, batch_index: int
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Probe residents and insert admitted absents.

        Returns ``(states, entry_ids)`` per unique signature, exactly
        like ``lookup_or_insert_batch`` but with the admission policy
        deciding which absent signatures may claim a line.  The
        ``always`` policy takes the original single-call path, so the
        default behaviour stays bit-identical to the pre-admission
        code.
        """
        if self._evictor is not None:
            return self._probe_and_admit_evicting(
                uniques, first_index, inverse, payload_bytes, batch_index)
        if self.policy.admission == "always":
            return self.mcache.lookup_or_insert_batch(uniques)

        present, entry_ids = self.mcache.probe_batch(uniques)
        entry_ids = entry_ids.copy()
        # Default for absents: no line (the MNU outcome) until admitted.
        states = np.full(len(uniques), MNU_CODE, dtype=np.int8)
        states[present] = HIT_CODE

        absent = np.flatnonzero(~present)
        counts = np.bincount(inverse, minlength=len(uniques))
        admitted = self._admitted_absents(uniques, absent, counts,
                                          payload_bytes, batch_index)
        if len(admitted):
            # Insert in first-occurrence (arrival) order so the way
            # claims match a sequential replay of the batch.
            arrival = admitted[np.argsort(first_index[admitted],
                                          kind="stable")]
            sub_states, sub_ids = self.mcache.lookup_or_insert_batch(
                uniques[arrival])
            states[arrival] = sub_states
            entry_ids[arrival] = sub_ids
        return states, entry_ids

    def _probe_and_admit_evicting(self, uniques, first_index, inverse,
                                  payload_bytes: int, batch_index: int
                                  ) -> tuple[np.ndarray, np.ndarray]:
        """The replacement-policy probe path.

        Residents *touch* their line's recency/frequency state in
        first-occurrence order (recency equals a sequential replay of
        the batch); admitted absents claim a free way when the set has
        one and otherwise recycle the policy's victim line via
        :meth:`VectorizedMCache.replace_line` — the outcome the paper's
        no-replacement model would have called MNU becomes MAU on the
        victim's line.  Frequencies count rows, not batches, so a batch
        with five rows of one signature weighs five.
        """
        m = self.mcache
        present, entry_ids = m.probe_batch(uniques)
        entry_ids = entry_ids.copy()
        states = np.full(len(uniques), MNU_CODE, dtype=np.int8)
        states[present] = HIT_CODE
        counts = np.bincount(inverse, minlength=len(uniques))

        residents = np.flatnonzero(present)
        for position in residents[np.argsort(first_index[residents],
                                             kind="stable")]:
            entry = int(entry_ids[position])
            self._evictor.touch(int(m._entry_set[entry]),
                                int(m._entry_way[entry]),
                                count=int(counts[position]))

        absent = np.flatnonzero(~present)
        admitted = self._admitted_absents(uniques, absent, counts,
                                          payload_bytes, batch_index)
        if len(admitted):
            arrival = admitted[np.argsort(first_index[admitted],
                                          kind="stable")]
            unique_sets = signature_sets(uniques, m.num_sets)
            for position in arrival:
                set_index = int(unique_sets[position])
                if m._occupancy[set_index] < m.ways:
                    sub_states, sub_ids = m.lookup_or_insert_batch(
                        uniques[position:position + 1])
                    entry = int(sub_ids[0])
                    states[position] = sub_states[0]
                    self._evictor.insert(set_index,
                                         int(m._entry_way[entry]),
                                         count=int(counts[position]))
                else:
                    way = self._evictor.victim(set_index)
                    entry = m.replace_line(set_index, way,
                                           uniques[position])
                    states[position] = MAU_CODE
                    self._evictor.replace(set_index, way,
                                          count=int(counts[position]))
                    self.counters.evicted += 1
                entry_ids[position] = entry
        return states, entry_ids

    def serve(self, vectors: np.ndarray, compute, batch_index: int
              ) -> tuple[np.ndarray, ServeOutcome]:
        """Return one result row per input row, reusing where possible.

        ``compute(first_indices)`` receives the row indices (into
        ``vectors``) of the unique inputs that need computing and must
        return one result row per index, in order.  Cached rows are
        served without calling it; duplicates within the batch share
        one computation.  Returns ``(rows, outcome)`` where ``outcome``
        details this call's reuse decisions.  In flash mode the session
        is cleared first, so only intra-batch reuse survives.
        """
        if not self.persistent:
            self.clear()
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("serve expects 2D (rows, features) vectors")
        num_rows = len(vectors)
        counters = self.counters
        counters.requests += num_rows
        if num_rows == 0:
            return np.empty((0, 0)), ServeOutcome()

        signatures = self.hasher.signatures(vectors,
                                            self.policy.signature_bits)
        uniques, first_index, inverse = unique_signatures(signatures)
        num_unique = len(uniques)
        states, entry_ids = self._probe_and_admit(
            uniques, first_index, inverse, vectors.shape[1] * 8,
            batch_index)
        self._grow_entry_batches(batch_index)

        # Intra-batch aliasing: with ``exact_check`` a row may only
        # share its signature group's result if it *equals* the group's
        # first occurrence — a colliding (similar-but-different) row is
        # computed on its own instead.  Without the check, signature
        # trust applies within the batch exactly as it does across
        # batches: that is MERCURY's approximate-reuse semantics.
        if self.policy.exact_check:
            aliased = ~(vectors == vectors[first_index[inverse]]).all(axis=1)
            counters.collisions += int(aliased.sum())
        else:
            aliased = np.zeros(num_rows, dtype=bool)

        resident = states == HIT_CODE              # existed before batch
        inserted = states == MAU_CODE              # claimed a line now
        rejected = states == MNU_CODE              # set full, no entry

        # Which resident entries may serve their stored result?
        reusable = resident.copy()
        refresh = np.zeros(num_unique, dtype=bool)
        if resident.any():
            res_idx = np.flatnonzero(resident)
            res_entries = entry_ids[res_idx]
            valid = self._store_valid[res_entries].copy()
            if self.policy.ttl_batches is not None:
                age = batch_index - self._entry_batch[res_entries]
                expired = age > self.policy.ttl_batches
                counters.expired += int(expired.sum())
                valid &= ~expired
            stale = res_idx[~valid]
            reusable[stale] = False
            refresh[stale] = True
            if self.policy.exact_check and valid.any():
                live = res_idx[valid]
                match = (self._store_payloads[entry_ids[live]]
                         == vectors[first_index[live]]).all(axis=1)
                collided = live[~match]
                counters.collisions += len(collided)
                reusable[collided] = False

        needs_compute = ~reusable
        aliased_rows = np.flatnonzero(aliased)
        group_rows = first_index[needs_compute]
        compute_rows = np.concatenate([group_rows, aliased_rows]) \
            if len(aliased_rows) else group_rows
        computed = None
        if len(compute_rows):
            computed = np.asarray(compute(compute_rows), dtype=np.float64)
            if computed.ndim != 2 or len(computed) != len(compute_rows):
                raise ValueError("compute must return one row per index")

        # Assemble per-unique results: reused rows from the store,
        # computed rows from the caller.
        width = computed.shape[1] if computed is not None else \
            self._stored_width()
        unique_rows = np.empty((num_unique, width), dtype=np.float64)
        if reusable.any():
            reuse_idx = np.flatnonzero(reusable)
            unique_rows[reuse_idx] = self._store_rows[entry_ids[reuse_idx]]
        if computed is not None:
            unique_rows[needs_compute] = computed[:len(group_rows)]

        # Admit fresh computations: newly claimed lines and refreshed
        # (expired / data-invalidated) residents.  Collisions keep the
        # original owner's payload (first-writer-wins); rejected
        # signatures have no line to write.
        admit = np.flatnonzero(inserted | refresh)
        if len(admit):
            admit_ids = entry_ids[admit]
            self._store_write(
                admit_ids, unique_rows[admit],
                vectors[first_index[admit]] if self.policy.exact_check
                else None)
            self._entry_batch[admit_ids] = batch_index

        results = unique_rows[inverse]
        if len(aliased_rows):
            results[aliased_rows] = computed[len(group_rows):]

        # Row-level accounting (aliased rows are computes, not hits).
        is_first = np.zeros(num_rows, dtype=bool)
        is_first[first_index] = True
        row_cross = reusable[inverse] & ~aliased
        row_intra = needs_compute[inverse] & ~is_first & ~aliased
        outcome = ServeOutcome(
            rows=num_rows,
            unique=num_unique,
            cross_hit_rows=int(row_cross.sum()),
            intra_hit_rows=int(row_intra.sum()),
            aliased_rows=int(aliased.sum()),
            reused_unique=int(reusable.sum()),
            computed_unique=int(needs_compute.sum()),
            inserted_unique=int(inserted.sum()),
            rejected_unique=int(rejected.sum()))
        counters.cross_hits += outcome.cross_hit_rows
        counters.intra_hits += outcome.intra_hit_rows
        counters.computed += outcome.computed_unique + outcome.aliased_rows
        counters.inserted += outcome.inserted_unique
        counters.rejected += outcome.rejected_unique

        return results, outcome

    def _stored_width(self) -> int:
        return 0 if self._store_rows is None else self._store_rows.shape[1]

    def admit_external(self, vector, row, batch_index: int) -> bool:
        """Insert-or-refresh one externally computed ``(vector, row)``.

        The hot-key replication push: another shard already computed
        ``row`` for ``vector`` and replicates the pair here so a future
        probe hits locally.  A resident signature is refreshed in place
        (data overwritten, age stamp reset to ``batch_index`` — so the
        TTL invalidation rule applies to replicas exactly as to locally
        computed entries); an absent one claims a line through the
        session's own capacity rules, evicting a victim if a
        replacement policy is configured.  Pushes bypass the admission
        gate (the pusher already knows the key is hot) but never bypass
        capacity: returns ``False`` when a no-replacement session has
        no free way.  Not counted as a request — only the
        ``replicated`` counter moves.
        """
        if not self.persistent:
            raise RuntimeError("admit_external requires a persistent "
                               "session")
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        row = np.asarray(row, dtype=np.float64)
        signatures = self.hasher.signatures(vector,
                                            self.policy.signature_bits)
        m = self.mcache
        present, probe_ids = m.probe_batch(signatures)
        if present[0]:
            entry = int(probe_ids[0])
            if self._evictor is not None:
                self._evictor.touch(int(m._entry_set[entry]),
                                    int(m._entry_way[entry]))
        elif self._evictor is not None:
            set_index = int(signature_sets(signatures, m.num_sets)[0])
            if m._occupancy[set_index] < m.ways:
                _, sub_ids = m.lookup_or_insert_batch(signatures)
                entry = int(sub_ids[0])
                self._evictor.insert(set_index, int(m._entry_way[entry]))
            else:
                way = self._evictor.victim(set_index)
                entry = m.replace_line(set_index, way, signatures[0])
                self._evictor.replace(set_index, way)
                self.counters.evicted += 1
        else:
            sub_states, sub_ids = m.lookup_or_insert_batch(signatures)
            if sub_states[0] == MNU_CODE:
                return False
            entry = int(sub_ids[0])
        self._grow_entry_batches(batch_index)
        self._store_write(np.array([entry]), row.reshape(1, -1),
                          vector if self.policy.exact_check else None)
        self._entry_batch[entry] = batch_index
        self.counters.replicated += 1
        return True

    # ------------------------------------------------------------------
    # Snapshot / restore (persistent sessions)
    # ------------------------------------------------------------------
    def state_dict(self) -> tuple[dict, dict]:
        """Serialize the session as ``(meta, arrays)``.

        ``meta`` is JSON-safe (mode, layout, counters, policy
        fingerprint); ``arrays`` holds plain numpy arrays fit for
        ``np.savez`` without pickling: the resident signatures, their
        insertion batches, the valid-data mask and the stored
        payload/result matrices (dense — one stream has one vector
        length, so widths are uniform).

        Two layouts.  ``entry-order`` (no replacement) lists every
        entry id ever issued — dense ids re-insert to identical
        placement.  ``line-order`` (eviction active) lists only *live*
        lines in canonical ``(set, way)`` order — evicted ids are
        orphans that must not be resurrected — plus the replacement
        policy's recency/frequency/segment arrays, so the restored
        session evicts exactly as the donor would have.  Ids renumber
        densely on restore, which is behaviourally invisible (probes
        resolve ids through the line map) and makes a re-snapshot of
        the restored session byte-identical.
        """
        m = self.mcache
        if self._evictor is not None:
            sets, ways = np.nonzero(m._valid_tag)  # (set, way) lexicographic
            sets = sets.astype(np.int64)
            ways = ways.astype(np.int64)
            entry_batch = self._entry_batch[m._line_entry[sets, ways]]
            layout = "line-order"
        else:
            count = m._next_entry_id
            sets, ways = m._entry_set[:count], m._entry_way[:count]
            entry_batch = self._entry_batch[:count]
            layout = "entry-order"
        if m._tag_words is not None:
            signatures = m._tag_words[sets, ways].copy()
            mode = "words"
        else:
            signatures = m._tags[sets, ways] * m.num_sets + sets
            mode = "int64"
        entry_ids = m._line_entry[sets, ways]
        has_data = self._store_valid[entry_ids] \
            if len(self._store_valid) else np.zeros(len(sets), dtype=bool)
        data_ids = entry_ids[has_data]
        rows = self._store_rows[data_ids] if len(data_ids) \
            else np.empty((0, 0))
        if self.policy.exact_check and len(data_ids):
            payloads = self._store_payloads[data_ids]
        else:
            payloads = np.empty((0, 0))

        seen_keys = sorted(self._seen)
        arrays = {
            "signatures": signatures,
            "entry_batch": np.asarray(entry_batch, dtype=np.int64).copy(),
            "has_data": has_data,
            "payloads": payloads,
            "rows": rows,
            "seen_counts": np.array([self._seen[key][0]
                                     for key in seen_keys],
                                    dtype=np.int64),
            "seen_batches": np.array([self._seen[key][1]
                                      for key in seen_keys],
                                     dtype=np.int64),
        }
        if self.policy.admission == "frequency" and seen_keys:
            if mode == "words":
                arrays["seen_keys"] = np.stack(
                    [np.frombuffer(key, dtype=np.uint64)
                     for key in seen_keys])
            else:
                arrays["seen_keys"] = np.array(seen_keys, dtype=np.int64)
        else:
            arrays["seen_keys"] = np.empty(0, dtype=np.int64)
        if self._evictor is not None:
            arrays.update(self._evictor.state_arrays())
        meta = {
            "state_version": STATE_VERSION,
            "mode": mode,
            "layout": layout,
            "entries": int(len(signatures)),
            "counters": {name: int(value)
                         for name, value in vars(self.counters).items()},
            "mcache_stats": {name: int(value)
                             for name, value in vars(m.stats).items()},
            "policy": self.policy.fingerprint(),
        }
        return meta, arrays

    def load_state_dict(self, meta: dict, arrays: dict) -> None:
        """Rebuild the session from a :meth:`state_dict` payload.

        The restored session is state-identical to the donor: same
        (set, way, entry-id) placement, same stored data, same ages,
        same counters — so it reproduces the donor's hit behaviour on
        any subsequent traffic.
        """
        if meta.get("state_version") != STATE_VERSION:
            raise ValueError(
                f"snapshot state_version {meta.get('state_version')!r} "
                f"does not match supported {STATE_VERSION}")
        if meta["policy"] != self.policy.fingerprint():
            raise ValueError("snapshot was taken under a different policy; "
                             "refusing to restore")
        expected_layout = "line-order" if self._evictor is not None \
            else "entry-order"
        if meta.get("layout") != expected_layout:
            # The policy fingerprint (which includes ``eviction``)
            # should make this unreachable; catch hand-edited or
            # corrupt payloads loudly rather than misinterpret ids.
            raise ValueError(
                f"snapshot layout {meta.get('layout')!r} does not match "
                f"the {expected_layout!r} layout of this policy")
        self.clear()
        signatures = np.asarray(arrays["signatures"])
        self._entry_batch = np.asarray(arrays["entry_batch"],
                                       dtype=np.int64).copy()
        self._store_valid = np.zeros(len(self._entry_batch), dtype=bool)
        if len(signatures):
            states, entry_ids = self.mcache.lookup_or_insert_batch(signatures)
            if not (states == MAU_CODE).all() or \
                    not np.array_equal(entry_ids,
                                       np.arange(len(signatures))):
                raise ValueError("snapshot signatures did not rebuild "
                                 "cleanly (corrupt or wrong geometry)")
            has_data = np.asarray(arrays["has_data"], dtype=bool)
            data_ids = entry_ids[has_data]
            if len(data_ids):
                rows = np.asarray(arrays["rows"], dtype=np.float64)
                self._store_write(
                    data_ids, rows,
                    np.asarray(arrays["payloads"], dtype=np.float64)
                    if self.policy.exact_check else None)
        seen_keys = np.asarray(arrays.get("seen_keys",
                                          np.empty(0, dtype=np.int64)))
        seen_counts = np.asarray(arrays.get("seen_counts",
                                            np.empty(0, dtype=np.int64)))
        seen_batches = np.asarray(arrays.get("seen_batches",
                                             np.empty(0, dtype=np.int64)))
        self._seen = {}
        for position in range(len(seen_counts)):
            key = seen_keys[position]
            key = key.tobytes() if key.ndim else int(key)
            self._seen[key] = (int(seen_counts[position]),
                               int(seen_batches[position]))
        for name, value in meta["counters"].items():
            setattr(self.counters, name, int(value))
        for name, value in meta["mcache_stats"].items():
            setattr(self.mcache.stats, name, int(value))
        if self._evictor is not None:
            if "ev_rank" not in arrays:
                raise ValueError("snapshot is missing the eviction "
                                 "metadata arrays")
            ranks = np.asarray(arrays["ev_rank"], dtype=np.int64)
            if not np.array_equal(ranks >= 0, self.mcache._valid_tag):
                raise ValueError("snapshot eviction metadata does not "
                                 "cover the resident lines")
            self._evictor.load_state_arrays(arrays)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return self.mcache.occupancy()

    def clear(self) -> None:
        self.clears += 1
        self.mcache.clear()
        self._entry_batch = np.empty(0, dtype=np.int64)
        self._seen = {}
        self._store_valid = np.empty(0, dtype=bool)
        self._store_rows = None
        self._store_payloads = None
        if self._evictor is not None:
            self._evictor.clear()
