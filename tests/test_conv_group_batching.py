"""Bit-identity of the batched multi-group channel path.

The reuse engine services `conv_channel_group` calls either one engine
call per group (the seed behaviour, kept as the oracle via
``MercuryConfig(batch_channel_groups=False)``) or as one multi-group
signature/group-by phase (`ReuseEngine.matmul_groups`).  These tests
assert the two are bit-identical: outputs, per-layer statistics,
signature-table state and MCACHE counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MercuryConfig
from repro.core.hitmap import HIT_CODE, MAU_CODE
from repro.core.hitmap_sim import simulate_hitmap, simulate_hitmap_grouped
from repro.core.reuse import ReuseEngine
from repro.core.rpq import ints_to_words
from repro.models.registry import build_model
from repro.nn.layers.conv import Conv2D


def _assert_simulations_equal(left, right):
    assert list(left.states) == list(right.states)
    np.testing.assert_array_equal(left.representative, right.representative)
    assert (left.hits, left.mau, left.mnu, left.unique_signatures) == \
        (right.hits, right.mau, right.mnu, right.unique_signatures)


class TestSimulateHitmapGrouped:
    def test_matches_per_group_simulation(self, make_trace):
        groups = [make_trace(300, 40, seed=s) for s in range(5)]
        grouped = simulate_hitmap_grouped(np.concatenate(groups),
                                          [len(g) for g in groups],
                                          num_sets=8, ways=4)
        for trace, simulation in zip(groups, grouped):
            _assert_simulations_equal(simulation,
                                      simulate_hitmap(trace, num_sets=8,
                                                      ways=4))

    def test_groups_do_not_share_cache_state(self):
        # The same signature in two groups must MAU twice (fresh cache
        # per group), and a full set in one group must not reject the
        # other group's inserts.
        sigs = np.array([5, 5, 5, 5], dtype=np.int64)
        grouped = simulate_hitmap_grouped(sigs, [2, 2], num_sets=2, ways=1)
        for simulation in grouped:
            assert list(simulation.states) == [MAU_CODE, HIT_CODE]
            assert simulation.representative[1] == 0

    def test_uneven_group_sizes(self, make_trace):
        groups = [make_trace(17, 6, seed=1), make_trace(120, 200, seed=2),
                  make_trace(1, 1, seed=3)]
        grouped = simulate_hitmap_grouped(np.concatenate(groups),
                                          [len(g) for g in groups],
                                          num_sets=4, ways=2)
        for trace, simulation in zip(groups, grouped):
            _assert_simulations_equal(simulation,
                                      simulate_hitmap(trace, num_sets=4,
                                                      ways=2))

    def test_multiword_groups(self):
        rng = np.random.default_rng(0)
        pool = [(1 << 70) + int(v) for v in rng.integers(0, 30, size=30)]
        groups = [np.array([pool[i] for i in
                            rng.integers(0, len(pool), size=80)],
                           dtype=object) for _ in range(3)]
        words = [ints_to_words(g, num_words=2) for g in groups]
        grouped = simulate_hitmap_grouped(np.vstack(words),
                                          [len(w) for w in words],
                                          num_sets=4, ways=2)
        for trace, simulation in zip(words, grouped):
            _assert_simulations_equal(simulation,
                                      simulate_hitmap(trace, num_sets=4,
                                                      ways=2))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_hitmap_grouped(np.arange(4), [1, 1], num_sets=2, ways=1)

    def test_empty(self):
        assert simulate_hitmap_grouped(np.empty(0, dtype=np.int64), [],
                                       num_sets=2, ways=1) == []


def _stats_snapshot(engine):
    rows = []
    for record in engine.stats.all_records():
        rows.append((record.layer, record.phase, record.calls,
                     record.total_vectors, record.hits, record.mau,
                     record.mnu, record.unique_signatures,
                     record.vector_length, record.num_filters,
                     record.signature_computed_vectors,
                     record.signature_reloaded_vectors))
    return rows


def _paired_engines(**config_overrides):
    base = dict(adaptive_signature_length=False, adaptive_stoppage=False,
                conv_channel_group=1, mcache_entries=64, mcache_ways=4)
    base.update(config_overrides)
    oracle = ReuseEngine(MercuryConfig(batch_channel_groups=False, **base))
    batched = ReuseEngine(MercuryConfig(batch_channel_groups=True, **base))
    return oracle, batched


@pytest.mark.parametrize("channel_group,in_channels", [(1, 6), (2, 6),
                                                       (4, 6), (3, 7)])
def test_conv_forward_bit_identity(rng, channel_group, in_channels):
    oracle, batched = _paired_engines(conv_channel_group=channel_group)
    x = rng.normal(size=(3, in_channels, 10, 10))
    outputs = {}
    for engine in (oracle, batched):
        conv = Conv2D(in_channels, 5, 3, padding=1, seed=11)
        conv.engine = engine
        outputs[engine] = conv.forward(x)
    np.testing.assert_array_equal(outputs[oracle], outputs[batched])
    assert _stats_snapshot(oracle) == _stats_snapshot(batched)
    assert (oracle.mcache.stats.hits, oracle.mcache.stats.mau,
            oracle.mcache.stats.mnu) == (batched.mcache.stats.hits,
                                         batched.mcache.stats.mau,
                                         batched.mcache.stats.mnu)
    # The signature table holds the last group's record either way.
    for engine in (oracle, batched):
        record = engine.signature_table.get(conv.layer_name)
        assert record is not None
    left = oracle.signature_table.get(conv.layer_name)
    right = batched.signature_table.get(conv.layer_name)
    np.testing.assert_array_equal(left.signatures, right.signatures)
    assert left.vector_length == right.vector_length


@pytest.mark.parametrize("backend", ["vectorized", "groupby", "scalar"])
def test_backends_bit_identical_under_batching(rng, backend):
    oracle, batched = _paired_engines(mcache_backend=backend,
                                      conv_channel_group=2)
    x = rng.normal(size=(2, 6, 8, 8))
    outputs = {}
    for engine in (oracle, batched):
        conv = Conv2D(6, 4, 3, seed=5)
        conv.engine = engine
        outputs[engine] = conv.forward(x)
    np.testing.assert_array_equal(outputs[oracle], outputs[batched])
    assert _stats_snapshot(oracle) == _stats_snapshot(batched)


def test_multiword_signature_bits_bit_identity(rng):
    oracle, batched = _paired_engines(signature_bits=70,
                                      max_signature_bits=80,
                                      conv_channel_group=2)
    x = rng.normal(size=(2, 4, 8, 8))
    outputs = {}
    for engine in (oracle, batched):
        conv = Conv2D(4, 3, 3, seed=7)
        conv.engine = engine
        outputs[engine] = conv.forward(x)
    np.testing.assert_array_equal(outputs[oracle], outputs[batched])
    assert _stats_snapshot(oracle) == _stats_snapshot(batched)


def test_detection_disabled_bit_identity(rng):
    oracle, batched = _paired_engines(reuse_forward=False,
                                      conv_channel_group=2)
    x = rng.normal(size=(2, 6, 8, 8))
    outputs = {}
    for engine in (oracle, batched):
        conv = Conv2D(6, 4, 3, seed=5)
        conv.engine = engine
        outputs[engine] = conv.forward(x)
    np.testing.assert_array_equal(outputs[oracle], outputs[batched])
    assert _stats_snapshot(oracle) == _stats_snapshot(batched)


def test_full_model_training_step_bit_identity(rng):
    """A whole squeezenet forward/backward is unchanged by batching."""
    from repro.nn.losses import CrossEntropyLoss

    x = rng.normal(size=(4, 3, 12, 12))
    y = rng.integers(0, 3, size=4)
    results = {}
    for flag in (False, True):
        engine = ReuseEngine(MercuryConfig(
            batch_channel_groups=flag, conv_channel_group=1,
            adaptive_signature_length=False, adaptive_stoppage=False,
            mcache_entries=256, mcache_ways=8))
        model = build_model("squeezenet", num_classes=3, seed=2)
        model.set_engine(engine)
        loss_fn = CrossEntropyLoss()
        logits = model(x)
        loss = loss_fn(logits, y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        grads = np.concatenate([p.grad.ravel() for p in model.parameters()])
        results[flag] = (logits, float(loss), grads,
                         _stats_snapshot(engine))
    np.testing.assert_array_equal(results[False][0], results[True][0])
    assert results[False][1] == results[True][1]
    np.testing.assert_array_equal(results[False][2], results[True][2])
    assert results[False][3] == results[True][3]


def test_matmul_groups_backward_falls_back(rng):
    """Backward-phase group calls delegate to the per-call path."""
    engine = ReuseEngine(MercuryConfig(adaptive_signature_length=False,
                                       adaptive_stoppage=False))
    vectors = [rng.normal(size=(6, 5)), rng.normal(size=(6, 5))]
    weights = [rng.normal(size=(5, 3)), rng.normal(size=(5, 3))]
    grouped = engine.matmul_groups(vectors, weights, layer="L",
                                   phase="backward")
    reference = ReuseEngine(MercuryConfig(adaptive_signature_length=False,
                                          adaptive_stoppage=False))
    singles = [reference.matmul(v, w, layer="L", phase="backward")
               for v, w in zip(vectors, weights)]
    for left, right in zip(grouped, singles):
        np.testing.assert_array_equal(left, right)
