"""Processing element model.

A MERCURY PE is the standard Eyeriss-style PE (input/weight registers,
multiplier, adder, input buffer) extended with the ORg register used to
pipeline signature calculation and, for the asynchronous design, a
second input buffer with valid / InUse / FlUse flags (Figure 11).

The class below is a small cycle-accurate model of one PE's MAC
pipeline.  It is used by the signature-pipeline tests to validate the
analytical formulas in :mod:`repro.accelerator.signature_pipeline` and
by the unit tests that exercise the asynchronous buffer handshake.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PEConfig:
    """Latency parameters of one PE (in cycles)."""

    multiply_latency: int = 1
    add_latency: int = 1
    mcache_read_latency: int = 1
    # Asynchronous design: number of input buffers per PE.
    input_buffers: int = 2

    def __post_init__(self):
        if self.multiply_latency <= 0 or self.add_latency <= 0:
            raise ValueError("latencies must be positive")
        if self.input_buffers not in (1, 2):
            raise ValueError("PEs have one (sync) or two (async) input buffers")


@dataclass
class InputBuffer:
    """One PE input buffer with its valid bit."""

    valid: bool = False
    contents: object = None

    def load(self, contents) -> None:
        self.contents = contents
        self.valid = True

    def release(self) -> None:
        self.contents = None
        self.valid = False


class ProcessingElement:
    """Cycle-level model of one PE's multiply/accumulate datapath.

    The model tracks the busy time of the multiplier and the adder
    separately so the ORg-register pipelining trick — which frees the
    adder one cycle earlier so it can forward the row partial sum — can
    be represented faithfully.
    """

    def __init__(self, config: PEConfig | None = None):
        self.config = config or PEConfig()
        self.cycle = 0
        self.mac_count = 0
        self.org_register = None
        self.input_buffers = [InputBuffer() for _ in range(self.config.input_buffers)]
        self.in_use = 0   # which input buffer feeds the datapath (InUse)
        self.fl_use = 0   # which shared filter this PE works on (FlUse)
        self.busy = False

    # ------------------------------------------------------------------
    def multiply_accumulate(self, count: int = 1) -> int:
        """Advance time for ``count`` back-to-back MAC operations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        latency = self.config.multiply_latency + self.config.add_latency - 1
        if count == 0:
            return self.cycle
        # Fully pipelined MAC: first result after `latency`, then 1/cycle.
        self.cycle += latency + (count - 1)
        self.mac_count += count
        return self.cycle

    def row_dot_product(self, row_length: int, use_org: bool = False) -> int:
        """Cycles to multiply-accumulate one row of an input vector.

        Without the ORg register the adder is busy accumulating the row
        until one cycle after the final multiply; with ORg the first
        product of the *next* row is parked in ORg, freeing the adder to
        forward the partial sum immediately (§III-B2).
        """
        if row_length <= 0:
            raise ValueError("row_length must be positive")
        cycles = row_length + 1  # multiplies plus final accumulate
        if use_org:
            cycles -= 1
        self.cycle += cycles
        self.mac_count += row_length
        return self.cycle

    # ------------------------------------------------------------------
    def load_input(self, contents, buffer_index: int | None = None) -> int:
        """Load new input rows into a free buffer; returns the buffer used."""
        if buffer_index is None:
            free = [i for i, b in enumerate(self.input_buffers) if not b.valid]
            if not free:
                raise RuntimeError("no free input buffer (PE would stall)")
            buffer_index = free[0]
        self.input_buffers[buffer_index].load(contents)
        return buffer_index

    def switch_input(self) -> None:
        """Flip InUse to the other buffer (asynchronous design)."""
        if self.config.input_buffers != 2:
            raise RuntimeError("switch_input requires the two-buffer PE")
        self.input_buffers[self.in_use].release()
        self.in_use = 1 - self.in_use
        if not self.input_buffers[self.in_use].valid:
            raise RuntimeError("switched to an empty input buffer")

    def reset(self) -> None:
        self.cycle = 0
        self.mac_count = 0
        self.org_register = None
        for buffer in self.input_buffers:
            buffer.release()
        self.in_use = 0
        self.fl_use = 0
        self.busy = False
