"""Figure 17: MERCURY vs UCNN, unlimited zero pruning and unlimited
similarity detection.

Paper: MERCURY outperforms UCNN at 7/8-bit quantisation and is
comparable at 6 bits; it beats the unlimited-zero-pruning bound by ~4%
on average and the unlimited-similarity bound by ~2%.
"""

from benchmarks.harness import (all_model_speedups, capture_model,
                                paper_scale_report, print_header)
from repro.analysis import format_table, geomean
from repro.baselines import (UCNNBound, UnlimitedSimilarityBound,
                             ZeroPruningBound)
from repro.models import MODEL_NAMES


def _mercury_speedups():
    return all_model_speedups()


def run_ucnn():
    mercury = _mercury_speedups()
    rows = {}
    for name in MODEL_NAMES:
        capture = capture_model(name)
        rows[name] = {
            "ucnn6": UCNNBound(6).model_speedup(capture),
            "ucnn7": UCNNBound(7).model_speedup(capture),
            "ucnn8": UCNNBound(8).model_speedup(capture),
            "mercury": mercury[name],
        }
    return rows


def run_bounds():
    mercury = _mercury_speedups()
    rows = {}
    for name in MODEL_NAMES:
        capture = capture_model(name)
        rows[name] = {
            "zero_pruning": ZeroPruningBound().model_speedup(capture),
            "unlimited_similarity":
                UnlimitedSimilarityBound(value_resolution=0.001).model_speedup(capture),
            "mercury": mercury[name],
        }
    return rows


def test_fig17a_ucnn_comparison(benchmark):
    rows = benchmark.pedantic(run_ucnn, rounds=1, iterations=1)

    print_header("Figure 17a — MERCURY vs UCNN (max achievable, 6/7/8-bit)")
    table = [[name, v["ucnn6"], v["ucnn7"], v["ucnn8"], v["mercury"]]
             for name, v in rows.items()]
    print(format_table(["model", "UCNN-6b", "UCNN-7b", "UCNN-8b", "MERCURY"],
                       table, "{:.2f}"))

    mercury_mean = geomean([v["mercury"] for v in rows.values()])
    ucnn7_mean = geomean([v["ucnn7"] for v in rows.values()])
    ucnn8_mean = geomean([v["ucnn8"] for v in rows.values()])
    # MERCURY beats the 7- and 8-bit UCNN bounds on average.
    assert mercury_mean > ucnn8_mean
    assert mercury_mean > ucnn7_mean * 0.95
    # Coarser quantisation gives UCNN more repetition to exploit.
    for values in rows.values():
        assert values["ucnn6"] >= values["ucnn8"]


def test_fig17b_zero_pruning(benchmark):
    rows = benchmark.pedantic(run_bounds, rounds=1, iterations=1)

    print_header("Figure 17b — MERCURY vs unlimited zero pruning "
                 "(paper: MERCURY ahead by ~4% on average)")
    table = [[name, v["zero_pruning"], v["mercury"]] for name, v in rows.items()]
    print(format_table(["model", "zero-prune bound", "MERCURY"], table, "{:.2f}"))

    mercury_mean = geomean([v["mercury"] for v in rows.values()])
    zero_mean = geomean([v["zero_pruning"] for v in rows.values()])
    # The two schemes land in the same band, with MERCURY competitive.
    assert mercury_mean > zero_mean * 0.8
    assert zero_mean > 1.0


def test_fig17c_unlimited_similarity(benchmark):
    rows = benchmark.pedantic(run_bounds, rounds=1, iterations=1)

    print_header("Figure 17c — MERCURY vs unlimited similarity detection "
                 "(paper: MERCURY ahead by ~2%; our element-level bound is "
                 "looser than the paper's, see EXPERIMENTS.md)")
    table = [[name, v["unlimited_similarity"], v["mercury"]]
             for name, v in rows.items()]
    print(format_table(["model", "unlimited-similarity bound", "MERCURY"],
                       table, "{:.2f}"))

    mercury_mean = geomean([v["mercury"] for v in rows.values()])
    unlimited_mean = geomean([v["unlimited_similarity"] for v in rows.values()])
    # MERCURY captures the bulk of the ideal element-level reuse while
    # paying the realistic RPQ/MCACHE costs.
    assert mercury_mean > unlimited_mean * 0.55
    assert unlimited_mean > 1.0
