"""Run the full scenario sweep: models x dataflows x MCACHE organisations.

Fans the grid out over a multiprocessing pool, prints the aggregate
tables and writes every row to a JSON file for downstream analysis.

    python examples/sweep_all.py
    python examples/sweep_all.py --models vgg13 resnet50 \
        --dataflows row_stationary weight_stationary \
        --organizations 512x8 1024x16 2048x16 \
        --processes 4 --output sweep_results.json
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.analysis.sweep import DEFAULT_ORGANIZATIONS, build_grid, run_sweep
from repro.models import MODEL_NAMES

ALL_DATAFLOWS = ("row_stationary", "weight_stationary", "input_stationary")


def parse_organization(text: str) -> tuple[int, int]:
    """Parse an ``ENTRIESxWAYS`` spec such as ``1024x16``."""
    try:
        entries, ways = (int(part) for part in text.lower().split("x"))
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"expected ENTRIESxWAYS (e.g. 1024x16), got {text!r}") from error
    if entries <= 0 or ways <= 0 or entries % ways != 0:
        raise argparse.ArgumentTypeError(
            f"entries must be a positive multiple of ways, got {text!r}")
    return entries, ways


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(MODEL_NAMES),
                        choices=list(MODEL_NAMES), metavar="MODEL")
    parser.add_argument("--dataflows", nargs="+", default=list(ALL_DATAFLOWS),
                        choices=list(ALL_DATAFLOWS), metavar="DATAFLOW")
    parser.add_argument("--organizations", nargs="+",
                        type=parse_organization,
                        default=list(DEFAULT_ORGANIZATIONS),
                        metavar="ENTRIESxWAYS")
    parser.add_argument("--signature-bits", nargs="+", type=int, default=[20])
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (0 = run in-process)")
    parser.add_argument("--output", default="sweep_results.json")
    args = parser.parse_args(argv)

    points = build_grid(args.models, dataflows=args.dataflows,
                        organizations=args.organizations,
                        signature_bits=args.signature_bits)
    print(f"Sweeping {len(points)} scenarios "
          f"({len(args.models)} models x {len(args.dataflows)} dataflows x "
          f"{len(args.organizations)} MCACHE organisations x "
          f"{len(args.signature_bits)} signature lengths)...")
    results = run_sweep(points, processes=args.processes)

    rows = [[row["model"], row["dataflow"],
             f"{row['mcache_entries']}x{row['mcache_ways']}",
             row["signature_bits"], row["speedup"], row["signature_fraction"]]
            for row in results.rows]
    print(format_table(["model", "dataflow", "mcache", "bits", "speedup",
                        "sig fraction"], rows, "{:.3f}"))

    summary = results.summary()
    print(f"\n{summary['points']} points in {summary['elapsed_s']:.2f}s")
    print("Geomean speedup per dataflow:")
    for dataflow, value in summary["geomean_by_dataflow"].items():
        print(f"  {dataflow:>18}: {value:.2f}x")
    print("Best configuration per model:")
    for model, best in summary["best_per_model"].items():
        print(f"  {model:>14}: {best['speedup']:.2f}x on {best['dataflow']} "
              f"with {best['mcache_entries']}x{best['mcache_ways']} MCACHE")

    results.save(args.output)
    print(f"\nWrote {len(results)} rows to {args.output}")


if __name__ == "__main__":
    main()
