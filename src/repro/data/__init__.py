"""Synthetic datasets standing in for the paper's ImageNet-80 and Multi30k.

The paper's speedups come from similarity among vectors extracted from
natural images (and token embeddings).  The generators here reproduce
that property deliberately: images are built from smooth class
prototypes plus small perturbations, so neighbouring patches — and
patches across samples of the same class — frequently map to the same
RPQ signature, just as the paper measures for VGG-13 (40-75% per-layer
similarity, Figure 1).
"""

from repro.data.synthetic_images import ClusteredImageDataset, ImageDatasetConfig
from repro.data.synthetic_text import TranslationDataset, TranslationConfig
from repro.data.loaders import BatchLoader, train_test_split

__all__ = [
    "ClusteredImageDataset",
    "ImageDatasetConfig",
    "TranslationDataset",
    "TranslationConfig",
    "BatchLoader",
    "train_test_split",
]
