"""Tests for losses, optimizers and the Sequential/Module plumbing."""

import numpy as np
import pytest

from repro.nn import (Adam, Conv2D, CrossEntropyLoss, Flatten, Linear, MSELoss,
                      ReLU, SGD, Sequential)
from repro.nn.module import Module, Parameter, assign_unique_layer_names
from tests.helpers import numerical_gradient, relative_error

RNG = np.random.default_rng(3)


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def test_cross_entropy_uniform_logits():
    loss = CrossEntropyLoss()
    value = loss(np.zeros((4, 10)), np.arange(4))
    assert np.isclose(value, np.log(10))


def test_cross_entropy_gradient_matches_numeric():
    loss = CrossEntropyLoss()
    logits = RNG.normal(size=(3, 5))
    targets = np.array([0, 2, 4])
    loss(logits, targets)
    analytic = loss.backward()

    def value():
        return loss.forward(logits, targets)

    numeric = numerical_gradient(value, logits)
    assert relative_error(analytic, numeric) < 1e-4


def test_cross_entropy_ignore_index():
    loss = CrossEntropyLoss(ignore_index=0)
    logits = RNG.normal(size=(2, 2, 4))
    targets = np.array([[1, 0], [2, 0]])
    loss(logits, targets)
    grad = loss.backward()
    # Ignored positions receive zero gradient.
    np.testing.assert_array_equal(grad[0, 1], np.zeros(4))
    assert np.any(grad[0, 0] != 0)


def test_cross_entropy_all_ignored_raises():
    loss = CrossEntropyLoss(ignore_index=0)
    with pytest.raises(ValueError):
        loss(np.zeros((1, 2, 3)), np.zeros((1, 2), dtype=int))


def test_mse_loss_and_gradient():
    loss = MSELoss()
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([1.0, 1.0, 1.0])
    assert np.isclose(loss(pred, target), (0 + 1 + 4) / 3)
    np.testing.assert_allclose(loss.backward(), 2 * (pred - target) / 3)


# ----------------------------------------------------------------------
# Optimizers
# ----------------------------------------------------------------------
def _quadratic_parameter():
    return Parameter(np.array([5.0, -3.0]))


def test_sgd_descends_quadratic():
    param = _quadratic_parameter()
    optimizer = SGD([param], lr=0.1)
    for _ in range(100):
        param.zero_grad()
        param.grad += 2 * param.value
        optimizer.step()
    assert np.all(np.abs(param.value) < 1e-3)


def test_sgd_momentum_faster_than_plain():
    def run(momentum):
        param = _quadratic_parameter()
        optimizer = SGD([param], lr=0.02, momentum=momentum)
        for _ in range(50):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        return np.abs(param.value).max()

    assert run(0.9) < run(0.0)


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.ones(3))
    optimizer = SGD([param], lr=0.1, weight_decay=1.0)
    optimizer.step()  # gradient is zero; only decay applies
    assert np.all(param.value < 1.0)


def test_adam_descends_quadratic():
    param = _quadratic_parameter()
    optimizer = Adam([param], lr=0.2)
    for _ in range(200):
        param.zero_grad()
        param.grad += 2 * param.value
        optimizer.step()
    assert np.all(np.abs(param.value) < 1e-2)


def test_optimizer_requires_parameters():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_zero_grad_clears_gradients():
    param = Parameter(np.ones(4))
    param.grad += 3.0
    optimizer = SGD([param], lr=0.1)
    optimizer.zero_grad()
    np.testing.assert_array_equal(param.grad, np.zeros(4))


# ----------------------------------------------------------------------
# Module / Sequential
# ----------------------------------------------------------------------
def test_sequential_forward_backward_consistency():
    model = Sequential(Linear(6, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
    x = RNG.normal(size=(3, 6))
    out = model(x)
    assert out.shape == (3, 2)
    grad = model.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_sequential_parameter_discovery():
    model = Sequential(Conv2D(1, 2, 3, seed=0), Flatten(), Linear(2 * 4, 3, seed=1))
    names = [name for name, _ in model.named_parameters()]
    assert any("conv" in n or "weight" in n for n in names)
    # conv weight+bias, linear weight+bias
    assert len(model.parameters()) == 4


def test_sequential_layer_names_unique():
    model = Sequential(ReLU(), ReLU(), ReLU())
    names = [layer.layer_name for layer in model.layers]
    assert len(set(names)) == 3


def test_assign_unique_layer_names():
    model = Sequential(ReLU(), Sequential(ReLU(), ReLU()))
    assign_unique_layer_names(model, prefix="m")
    names = [m.layer_name for m in model.modules()]
    assert len(names) == len(set(names))


def test_train_eval_propagates():
    model = Sequential(ReLU(), Sequential(ReLU()))
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_set_engine_propagates():
    model = Sequential(Linear(2, 2), Sequential(Linear(2, 2)))
    sentinel = object()
    model.set_engine(sentinel)
    assert all(m.engine is sentinel for m in model.modules())


def test_num_parameters_counts_all():
    model = Sequential(Linear(3, 4, bias=False), Linear(4, 2, bias=True))
    assert model.num_parameters() == 3 * 4 + 4 * 2 + 2


def test_module_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module().forward(np.zeros(1))
