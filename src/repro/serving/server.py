"""The inference-serving facade.

:class:`InferenceServer` ties the pieces together: a trained
:class:`~repro.nn.module.Module`, the optional request-granularity
output cache, the optional per-layer
:class:`~repro.serving.engine.ServingReuseEngine`, and the
:class:`~repro.serving.batcher.MicroBatcher` front door.  Three ways to
drive it:

* :meth:`serve_trace` — push a load-generator trace through the real
  asyncio queue (optionally in real time), measuring wall-clock
  latency;
* :meth:`replay` — a deterministic single-server replay of the same
  batching discipline on a simulated clock: batch compositions (and
  therefore every cache decision) depend only on the trace, which is
  what the sweep grid and the golden suite need;
* :meth:`serve_http` — a stdlib HTTP front end (JSON in/out) for
  driving the server from outside the process.

:meth:`oracle_outputs` provides the exactness reference: the same
weights, engines detached, every request forwarded alone.  With the
request cache in ``exact_check`` mode and ``compute="per_request"``,
served outputs are byte-identical to that oracle — reuse only ever
copies an output the oracle computation produced for an identical
payload.  (Batched compute trades that guarantee for throughput: BLAS
reduction orders vary with batch shape, so outputs match the oracle
only to ~1e-13; the sweep records the measured deviation.)
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving.batcher import BatcherConfig, MicroBatcher
from repro.serving.engine import (ServingPolicy, ServingReuseEngine,
                                  SignatureResultCache)
from repro.serving.loadgen import Request


@dataclass
class ServingReport:
    """Aggregate telemetry of one served trace."""

    requests: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    request_cache: dict = field(default_factory=dict)
    vector_cache: dict = field(default_factory=dict)
    layer_stats: list = field(default_factory=list)
    hit_rate: float = 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests, "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "request_cache": self.request_cache,
            "vector_cache": self.vector_cache,
            "layer_stats": self.layer_stats,
            "hit_rate": self.hit_rate,
        }


def _percentiles_ms(latencies_s) -> dict:
    if not len(latencies_s):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e3
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean())}


class InferenceServer:
    """Serve a trained model with cross-request computation reuse."""

    def __init__(self, model, policy: ServingPolicy | None = None,
                 batcher: BatcherConfig | None = None):
        self.model = model
        self.policy = policy or ServingPolicy()
        self.batcher_config = batcher or BatcherConfig()
        model.eval()

        self.vector_engine = None
        if self.policy.vector_cache:
            self.vector_engine = ServingReuseEngine(self.policy)
        model.set_engine(self.vector_engine)

        self.request_cache = None
        if self.policy.request_cache:
            self.request_cache = SignatureResultCache(self.policy)

        self._batcher = MicroBatcher(self._process_batch,
                                     self.batcher_config)
        self._batch_index = 0
        self._batch_count = 0
        self._output_tail: tuple | None = None
        self._compute_time_s = 0.0
        self._started_at = time.perf_counter()

    # ------------------------------------------------------------------
    # Synchronous batch path
    # ------------------------------------------------------------------
    def _forward_rows(self, payloads: np.ndarray) -> np.ndarray:
        """Model outputs for a stack of payloads, flattened per request."""
        start = time.perf_counter()
        if self.policy.compute == "per_request":
            outputs = np.stack([self.model(payload[None])[0]
                                for payload in payloads]) \
                if len(payloads) else np.empty((0,))
        else:
            outputs = self.model(payloads)
        self._compute_time_s += time.perf_counter() - start
        outputs = np.asarray(outputs, dtype=np.float64)
        self._output_tail = outputs.shape[1:]
        return outputs.reshape(len(payloads), -1)

    def _process_batch(self, payloads: list) -> list:
        """One micro-batch through the caches and the model."""
        stacked = np.stack([np.asarray(p) for p in payloads])
        if self.request_cache is not None:
            flat = np.asarray(stacked, dtype=np.float64).reshape(
                len(stacked), -1)
            rows, _ = self.request_cache.serve(
                flat, lambda indices: self._forward_rows(stacked[indices]),
                self._batch_index)
        else:
            rows = self._forward_rows(stacked)
        if self.vector_engine is not None:
            self.vector_engine.end_batch()
        self._batch_index += 1
        self._batch_count += 1
        tail = self._output_tail or (rows.shape[1],)
        return [row.reshape(tail) for row in rows]

    # ------------------------------------------------------------------
    # Async front door
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self._batcher.start()

    async def stop(self) -> None:
        await self._batcher.stop()

    async def infer(self, payload):
        """Serve one request through the micro-batching queue."""
        return await self._batcher.submit(payload)

    def serve_trace(self, trace: list[Request], pool: np.ndarray,
                    realtime: bool = False, time_scale: float = 1.0
                    ) -> tuple[list, ServingReport]:
        """Drive a load-generator trace through the asyncio queue.

        With ``realtime`` each request is submitted at its (scaled)
        arrival offset, exercising the max-wait path of the batcher;
        otherwise everything is enqueued as fast as the bounded queue
        admits it (the saturation regime).  Returns the per-request
        outputs in trace order plus a wall-clock report.
        """
        start = time.perf_counter()

        async def _drive():
            await self.start()
            try:
                origin = asyncio.get_running_loop().time()

                async def one(request: Request):
                    if realtime:
                        offset = request.arrival_s * time_scale
                        delay = offset - (asyncio.get_running_loop().time()
                                          - origin)
                        if delay > 0:
                            await asyncio.sleep(delay)
                    return await self.infer(pool[request.pool_index])

                return await asyncio.gather(*(one(r) for r in trace))
            finally:
                await self.stop()

        outputs = asyncio.run(_drive())
        duration = time.perf_counter() - start
        telemetry = self._batcher.telemetry
        return outputs, self._report(len(trace), duration,
                                     telemetry.latencies_s[-len(trace):])

    # ------------------------------------------------------------------
    # Deterministic replay (simulated clock, same batching discipline)
    # ------------------------------------------------------------------
    def replay(self, trace: list[Request], pool: np.ndarray
               ) -> tuple[list, ServingReport]:
        """Replay a trace with deterministic batch composition.

        Emulates the collector loop on the trace's own clock: a batch
        opens at its oldest request and closes when full or when
        ``max_wait_s`` elapses.  Batch membership — and therefore every
        cache decision downstream — depends *only* on the trace and the
        batcher config (the collector is modelled as always available,
        unlike the wall-clock :meth:`serve_trace` path where service
        time feeds back into composition).  Latency combines the
        simulated queue wait with measured compute time, serialised on
        one backend.
        """
        config = self.batcher_config
        arrivals = np.array([request.arrival_s for request in trace])
        order = np.argsort(arrivals, kind="stable")
        outputs: list = [None] * len(trace)
        latencies = np.zeros(len(trace))
        wall_start = time.perf_counter()

        backend_free_at = 0.0
        i = 0
        while i < len(order):
            first_arrival = arrivals[order[i]]
            deadline = first_arrival + config.max_wait_s
            j = i + 1
            while (j < len(order) and j - i < config.max_batch_size
                   and arrivals[order[j]] <= deadline):
                j += 1
            close_time = arrivals[order[j - 1]] \
                if j - i == config.max_batch_size else deadline

            members = order[i:j]
            compute_start = time.perf_counter()
            batch_outputs = self._process_batch(
                [pool[trace[k].pool_index] for k in members])
            compute_s = time.perf_counter() - compute_start
            service_start = max(close_time, backend_free_at)
            service_end = service_start + compute_s
            backend_free_at = service_end
            for position, k in enumerate(members):
                outputs[k] = batch_outputs[position]
                latencies[k] = service_end - arrivals[k]
            self._batcher.telemetry.record_batch(len(members))
            i = j

        duration = time.perf_counter() - wall_start
        return outputs, self._report(len(trace), duration, latencies)

    # ------------------------------------------------------------------
    # Exactness oracle
    # ------------------------------------------------------------------
    def oracle_outputs(self, payloads: np.ndarray) -> np.ndarray:
        """Engine-less per-request forwards of the same weights.

        Every payload is forwarded alone, so each oracle output depends
        only on its own payload — the canonical reference the exact
        serving configuration reproduces byte for byte.
        """
        self.model.set_engine(None)
        try:
            self.model.eval()
            outputs = [np.asarray(self.model(payload[None])[0],
                                  dtype=np.float64)
                       for payload in payloads]
        finally:
            self.model.set_engine(self.vector_engine)
        return np.stack(outputs) if outputs else np.empty((0,))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _report(self, requests: int, duration_s: float,
                latencies_s) -> ServingReport:
        quantiles = _percentiles_ms(latencies_s)
        telemetry = self._batcher.telemetry
        request_counters = self.request_cache.counters.to_dict() \
            if self.request_cache is not None else {}
        vector_counters = self.vector_engine.counters().to_dict() \
            if self.vector_engine is not None else {}
        if request_counters:
            hit_rate = request_counters["hit_rate"]
        elif vector_counters:
            hit_rate = vector_counters["hit_rate"]
        else:
            hit_rate = 0.0
        return ServingReport(
            requests=requests,
            batches=self._batch_count,
            mean_batch_size=telemetry.mean_batch_size,
            duration_s=duration_s,
            throughput_rps=requests / duration_s if duration_s else 0.0,
            latency_p50_ms=quantiles["p50"],
            latency_p95_ms=quantiles["p95"],
            latency_p99_ms=quantiles["p99"],
            latency_mean_ms=quantiles["mean"],
            request_cache=request_counters,
            vector_cache=vector_counters,
            layer_stats=self.vector_engine.layer_summary()
            if self.vector_engine is not None else [],
            hit_rate=hit_rate)

    def stats(self) -> dict:
        """Live snapshot (the HTTP ``/stats`` payload).

        ``duration_s``/``throughput_rps`` are wall clock since the
        server was built; ``compute_time_s`` is the model time inside
        that.
        """
        report = self._report(self._batcher.telemetry.completed,
                              time.perf_counter() - self._started_at,
                              self._batcher.telemetry.latencies_s)
        payload = report.to_dict()
        payload["queue_depth"] = self._batcher.depth
        payload["compute_time_s"] = self._compute_time_s
        return payload

    # ------------------------------------------------------------------
    # HTTP front end (stdlib only)
    # ------------------------------------------------------------------
    def serve_http(self, host: str = "127.0.0.1", port: int = 0
                   ) -> "HttpFrontEnd":
        """Start the HTTP front end; returns a handle with ``.port``."""
        front = HttpFrontEnd(self, host, port)
        front.start()
        return front


class HttpFrontEnd:
    """JSON-over-HTTP adapter around an :class:`InferenceServer`.

    ``POST /infer`` with ``{"inputs": <nested list>}`` returns
    ``{"outputs": <nested list>}``; ``GET /stats`` and ``GET /healthz``
    report telemetry and liveness.  The asyncio loop (and the
    micro-batcher) runs on a dedicated thread; HTTP handler threads
    submit into it and block on the result — so concurrent HTTP clients
    still share micro-batches.
    """

    def __init__(self, server: InferenceServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = server
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._http = None
        self._http_thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        ready = threading.Event()

        def run_loop():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.server.start())
            ready.set()
            loop.run_forever()

        self._loop_thread = threading.Thread(target=run_loop, daemon=True)
        self._loop_thread.start()
        ready.wait(timeout=10)

        front = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # pragma: no cover — quiet
                pass

            def _send(self, status: int, payload: dict) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path == "/healthz":
                    self._send(200, {"ok": True})
                elif self.path == "/stats":
                    self._send(200, front.server.stats())
                else:
                    self._send(404, {"error": f"unknown path {self.path}"})

            def do_POST(self):
                if self.path != "/infer":
                    self._send(404, {"error": f"unknown path {self.path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length))
                    inputs = np.asarray(payload["inputs"])
                    started = time.perf_counter()
                    outputs = front.submit(inputs)
                    latency_ms = (time.perf_counter() - started) * 1e3
                except Exception as error:  # noqa: BLE001 — report to client
                    self._send(400, {"error": str(error)})
                    return
                self._send(200, {"outputs": np.asarray(outputs).tolist(),
                                 "latency_ms": latency_ms})

        self._http = ThreadingHTTPServer((self.host, self._requested_port),
                                         Handler)
        self.port = self._http.server_address[1]
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, daemon=True)
        self._http_thread.start()

    def submit(self, inputs: np.ndarray, timeout_s: float = 30.0):
        """Thread-safe inference: submit into the serving loop."""
        if self._loop is None:
            raise RuntimeError("front end is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.server.infer(inputs), self._loop)
        return future.result(timeout=timeout_s)

    def stop(self) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http_thread.join(timeout=5)
            self._http = None
        if self._loop is not None:
            stop_future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop)
            stop_future.result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5)
            self._loop = None

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "HttpFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
