"""Tests for the MERCURY reuse engine and its configuration."""

import numpy as np
import pytest

from repro.core.config import MercuryConfig
from repro.core.reuse import ExactCountingEngine, ReuseEngine
from repro.core.signature import SignatureTable

RNG = np.random.default_rng(11)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_config_defaults_match_paper():
    config = MercuryConfig()
    assert config.signature_bits == 20
    assert config.mcache_entries == 1024
    assert config.mcache_ways == 16
    assert config.mcache_sets == 64
    assert config.dataflow == "row_stationary"
    assert config.num_pes == 168


def test_config_validation():
    with pytest.raises(ValueError):
        MercuryConfig(signature_bits=0)
    with pytest.raises(ValueError):
        MercuryConfig(signature_bits=100, max_signature_bits=64)
    with pytest.raises(ValueError):
        MercuryConfig(mcache_entries=100, mcache_ways=16)
    with pytest.raises(ValueError):
        MercuryConfig(dataflow="systolic")


def test_config_replace():
    config = MercuryConfig().replace(signature_bits=24)
    assert config.signature_bits == 24
    assert config.mcache_entries == 1024


# ----------------------------------------------------------------------
# Exact engines
# ----------------------------------------------------------------------
def test_exact_counting_engine_matches_numpy():
    engine = ExactCountingEngine()
    a = RNG.normal(size=(6, 4))
    b = RNG.normal(size=(4, 3))
    np.testing.assert_allclose(engine.matmul(a, b, layer="l"), a @ b)
    record = engine.stats.get("l", "forward")
    assert record.total_vectors == 6
    assert record.baseline_macs == 6 * 4 * 3


# ----------------------------------------------------------------------
# Reuse engine core behaviour
# ----------------------------------------------------------------------
def test_identical_rows_are_merged_exactly():
    engine = ReuseEngine(MercuryConfig(signature_bits=16,
                                       adaptive_stoppage=False))
    row = RNG.normal(size=9)
    vectors = np.vstack([row, row, row + 1.0])
    weights = RNG.normal(size=(9, 4))
    out = engine.matmul(vectors, weights, layer="conv", phase="forward")
    np.testing.assert_allclose(out[0], out[1])
    record = engine.stats.get("conv", "forward")
    assert record.hits == 1
    assert record.mau >= 1


def test_result_is_close_to_exact_for_similar_rows():
    engine = ReuseEngine(MercuryConfig(signature_bits=24,
                                       adaptive_stoppage=False))
    base = RNG.normal(size=(40, 9))
    vectors = np.vstack([base, base + RNG.normal(0, 1e-6, size=base.shape)])
    weights = RNG.normal(size=(9, 8))
    approx = engine.matmul(vectors, weights, layer="conv")
    exact = vectors @ weights
    assert np.max(np.abs(approx - exact)) < 1e-3


def test_shape_validation():
    engine = ReuseEngine()
    with pytest.raises(ValueError):
        engine.matmul(np.ones((2, 3)), np.ones((4, 2)), layer="x")
    with pytest.raises(ValueError):
        engine.matmul(np.ones(3), np.ones((3, 2)), layer="x")


def test_disabled_forward_reuse_is_exact():
    engine = ReuseEngine(MercuryConfig(reuse_forward=False))
    vectors = RNG.normal(size=(10, 5))
    weights = RNG.normal(size=(5, 3))
    out = engine.matmul(vectors, weights, layer="fc", phase="forward")
    np.testing.assert_allclose(out, vectors @ weights)
    record = engine.stats.get("fc", "forward")
    assert record.hits == 0
    assert not record.similarity_detection_on


def test_backward_reuses_forward_signatures_when_shapes_match():
    engine = ReuseEngine(MercuryConfig(signature_bits=16,
                                       adaptive_stoppage=False))
    vectors = RNG.normal(size=(20, 9))
    weights = RNG.normal(size=(9, 9))
    engine.matmul(vectors, weights, layer="conv", phase="forward")
    engine.matmul(vectors, weights, layer="conv", phase="backward")
    backward = engine.stats.get("conv", "backward")
    assert backward.signature_reloaded_vectors == 20
    assert backward.signature_computed_vectors == 0


def test_backward_recomputes_when_shapes_differ():
    engine = ReuseEngine(MercuryConfig(signature_bits=16,
                                       adaptive_stoppage=False))
    engine.matmul(RNG.normal(size=(20, 9)), RNG.normal(size=(9, 4)),
                  layer="conv", phase="forward")
    engine.matmul(RNG.normal(size=(20, 4)), RNG.normal(size=(4, 9)),
                  layer="conv", phase="backward")
    backward = engine.stats.get("conv", "backward")
    assert backward.signature_computed_vectors == 20
    assert backward.signature_reloaded_vectors == 0


def test_signature_table_records_forward_layers():
    engine = ReuseEngine(MercuryConfig(adaptive_stoppage=False))
    engine.matmul(RNG.normal(size=(5, 9)), RNG.normal(size=(9, 2)),
                  layer="conv1")
    assert "conv1" in engine.signature_table
    assert isinstance(engine.signature_table, SignatureTable)


def test_mcache_capacity_limits_hits():
    tiny = MercuryConfig(signature_bits=8, mcache_entries=2, mcache_ways=1,
                         adaptive_stoppage=False)
    engine = ReuseEngine(tiny)
    vectors = RNG.normal(size=(200, 6))
    engine.matmul(vectors, RNG.normal(size=(6, 3)), layer="conv")
    record = engine.stats.get("conv", "forward")
    assert record.mnu > 0
    assert record.mau <= 2


def test_stoppage_disables_unprofitable_layer():
    config = MercuryConfig(signature_bits=20, stoppage_batches=2,
                           adaptive_signature_length=False)
    engine = ReuseEngine(config)
    # Few filters (2) so signature cost dwarfs any saving.
    vectors = RNG.normal(size=(50, 9))
    weights = RNG.normal(size=(9, 2))
    for _ in range(3):
        engine.matmul(vectors, weights, layer="small", phase="forward")
        engine.end_iteration(loss=1.0)
    assert not engine.stoppage.is_enabled_for("small", "forward")
    # Once disabled the engine computes exactly and records detection off.
    engine.matmul(vectors, weights, layer="small", phase="forward")
    assert not engine.batch_stats.get("small", "forward").similarity_detection_on


def test_signature_length_grows_on_plateau():
    config = MercuryConfig(signature_bits=10, plateau_iterations=3,
                           loss_plateau_tolerance=1e-2,
                           adaptive_stoppage=False)
    engine = ReuseEngine(config)
    for _ in range(10):
        engine.end_iteration(loss=1.0)
    assert engine.signature_bits > 10


def test_end_iteration_clears_batch_stats():
    engine = ReuseEngine(MercuryConfig(adaptive_stoppage=False))
    engine.matmul(RNG.normal(size=(5, 4)), RNG.normal(size=(4, 2)), layer="l")
    assert engine.batch_stats.total_vectors == 5
    engine.end_iteration(loss=1.0)
    assert engine.batch_stats.total_vectors == 0
    assert engine.stats.total_vectors == 5


def test_reset_statistics():
    engine = ReuseEngine(MercuryConfig(adaptive_stoppage=False))
    engine.matmul(RNG.normal(size=(5, 4)), RNG.normal(size=(4, 2)), layer="l")
    engine.reset_statistics()
    assert engine.stats.total_vectors == 0
    assert not engine.last_simulations
