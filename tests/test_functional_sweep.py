"""Smoke and reproducibility tests for the functional sweep subsystem.

The smoke test drives ``examples/functional_sweep.py`` exactly as the
acceptance scenario describes: a 4-point grid (2 models x 2 configs)
through the multiprocessing pool, JSON written to disk, and
accuracy-delta/speedup fields populated for every point.

The reproducibility tests pin the seed-plumbing contract: a
:class:`FunctionalPoint` fully determines its run — repeated in-process
evaluations are identical, the baseline/reuse pair shares the data
order, and distinct seed streams decorrelate data, weights and
shuffling.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.functional_sweep import (
    DATA_STREAM,
    FUNCTIONAL_RESULT_KEYS,
    MODEL_STREAM,
    SHUFFLE_STREAM,
    SPLIT_STREAM,
    FunctionalPoint,
    baseline_key,
    build_functional_grid,
    derive_seed,
    evaluate_functional_point,
    load_point_data,
    run_functional_sweep,
    train_point,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))
import functional_sweep as functional_sweep_example  # noqa: E402


# ----------------------------------------------------------------------
# Acceptance smoke: the example CLI end to end.
# ----------------------------------------------------------------------
def test_example_runs_four_point_grid_in_parallel(tmp_path, capsys):
    output = tmp_path / "functional.json"
    functional_sweep_example.main([
        "--models", "squeezenet", "transformer",
        "--signature-bits", "12", "20",
        "--epochs", "1", "--processes", "2",
        "--output", str(output)])
    printed = capsys.readouterr().out
    assert "4 functional scenarios" in printed

    payload = json.loads(output.read_text())
    assert payload["schema"] == "functional-sweep"
    assert len(payload["rows"]) == 4
    for row in payload["rows"]:
        assert FUNCTIONAL_RESULT_KEYS <= set(row)
        # Accuracy-delta and speedup are populated and consistent.
        assert row["accuracy_delta"] == pytest.approx(
            row["reuse_accuracy"] - row["baseline_accuracy"])
        assert 0.0 <= row["baseline_accuracy"] <= 1.0
        assert 0.0 <= row["reuse_accuracy"] <= 1.0
        assert row["speedup"] > 0.0
        assert row["baseline_cycles"] > 0.0
        assert row["mercury_cycles"] > 0.0
        assert 0.0 <= row["hit_fraction"] <= 1.0
        assert row["elapsed_s"] >= 0.0
        assert row["layer_stats"], "per-layer reuse stats missing"


def test_build_functional_grid_order_and_passthrough():
    points = build_functional_grid(["squeezenet", "transformer"],
                                   signature_bits=(12, 20), epochs=5)
    assert len(points) == 4
    assert [p.model for p in points] == ["squeezenet", "squeezenet",
                                        "transformer", "transformer"]
    assert [p.signature_bits for p in points] == [12, 20, 12, 20]
    assert all(p.epochs == 5 for p in points)


def test_pool_matches_in_process_rows():
    points = build_functional_grid(["squeezenet"], signature_bits=(12, 20),
                                   epochs=1)
    serial = run_functional_sweep(points, processes=0)
    pooled = run_functional_sweep(points, processes=2)
    for serial_row, pooled_row in zip(serial.rows, pooled.rows):
        for key in FUNCTIONAL_RESULT_KEYS - {"elapsed_s"}:
            assert serial_row[key] == pooled_row[key]


# ----------------------------------------------------------------------
# Baseline memoization: one exact run per (model, scale, training, seed)
# group, shared across every MercuryConfig/adaptation variant.
# ----------------------------------------------------------------------
def _count_train_calls(monkeypatch):
    from repro.analysis import functional_sweep as fs
    from repro.core.reuse import ExactCountingEngine

    counts = {"baseline": 0, "reuse": 0}
    real_train_point = fs.train_point

    def counting_train_point(point, engine, data=None):
        if isinstance(engine, ExactCountingEngine):
            counts["baseline"] += 1
        elif engine is not None:
            counts["reuse"] += 1
        return real_train_point(point, engine, data)

    monkeypatch.setattr(fs, "train_point", counting_train_point)
    return counts


def test_baseline_trained_exactly_once_per_group(monkeypatch):
    """Four MercuryConfig/adaptation variants of one (model, scale,
    training config, seed) group trigger exactly one baseline run."""
    counts = _count_train_calls(monkeypatch)
    points = build_functional_grid(["squeezenet"],
                                   adaptations=("full", "off"),
                                   signature_bits=(12, 20), epochs=1)
    assert len(points) == 4
    assert len({baseline_key(p) for p in points}) == 1
    results = run_functional_sweep(points, processes=0)
    assert counts == {"baseline": 1, "reuse": 4}
    assert len(results.rows) == 4


def test_baseline_runs_scale_with_groups_not_points(monkeypatch):
    """Distinct seeds (and training configs) are distinct groups."""
    counts = _count_train_calls(monkeypatch)
    points = build_functional_grid(["squeezenet"], signature_bits=(12, 20),
                                   seeds=(0, 1), epochs=1)
    assert len(points) == 4
    assert len({baseline_key(p) for p in points}) == 2
    run_functional_sweep(points, processes=0)
    assert counts == {"baseline": 2, "reuse": 4}


def test_shared_baseline_rows_match_paired_runs():
    """Memoized rows are bit-identical to per-point paired training."""
    points = build_functional_grid(["squeezenet"], signature_bits=(12, 20),
                                   epochs=1)
    shared = run_functional_sweep(points, processes=0)
    paired = run_functional_sweep(points, processes=0,
                                  share_baselines=False)
    for shared_row, paired_row in zip(shared.rows, paired.rows):
        for key in FUNCTIONAL_RESULT_KEYS - {"elapsed_s"}:
            assert shared_row[key] == paired_row[key], key


# ----------------------------------------------------------------------
# Seed plumbing: a FunctionalPoint fully determines the run.
# ----------------------------------------------------------------------
def test_repeated_evaluation_is_identical():
    point = FunctionalPoint(model="squeezenet", epochs=2, seed=5)
    first = evaluate_functional_point(point)
    second = evaluate_functional_point(point)
    for key in FUNCTIONAL_RESULT_KEYS - {"elapsed_s"}:
        assert first[key] == second[key], key


def test_repeated_training_is_bit_identical():
    point = FunctionalPoint(model="transformer", epochs=2, seed=4)
    first_result, first_model = train_point(point, None)
    second_result, second_model = train_point(point, None)
    assert first_result.iteration_losses == second_result.iteration_losses
    assert first_result.final_validation_accuracy == \
        second_result.final_validation_accuracy
    for a, b in zip(first_model.parameters(), second_model.parameters()):
        assert np.array_equal(a.value, b.value)


def test_seed_changes_the_run():
    base = evaluate_functional_point(
        FunctionalPoint(model="squeezenet", epochs=1, seed=0))
    other = evaluate_functional_point(
        FunctionalPoint(model="squeezenet", epochs=1, seed=1))
    assert base["baseline_losses"] != other["baseline_losses"]


def test_derived_streams_are_distinct_and_stable():
    all_streams = (DATA_STREAM, MODEL_STREAM, SHUFFLE_STREAM, SPLIT_STREAM)
    streams = [derive_seed(0, s) for s in all_streams]
    assert len(set(streams)) == len(all_streams)
    assert streams == [derive_seed(0, s) for s in all_streams]
    # Neighbouring base seeds do not collide either.
    assert derive_seed(0, DATA_STREAM) != derive_seed(1, DATA_STREAM)


def test_incompatible_model_scale_fails_at_build_time():
    with pytest.raises(ValueError, match="at least 32px"):
        FunctionalPoint(model="alexnet", dataset_scale="tiny")
    with pytest.raises(ValueError, match="at least 16px"):
        FunctionalPoint(model="vgg19", dataset_scale="tiny")
    with pytest.raises(ValueError, match="unknown model"):
        FunctionalPoint(model="not-a-model")
    # Compatible pairings and the transformer construct fine.
    FunctionalPoint(model="vgg19", dataset_scale="small")
    FunctionalPoint(model="alexnet", dataset_scale="paper")
    FunctionalPoint(model="transformer", dataset_scale="tiny")


def test_evaluation_is_exact_and_leaves_no_trace():
    """Validation runs engine-detached: accuracy is exact, the engine's
    statistics cover only training batches, and the engine is
    reattached afterwards."""
    from repro.core.reuse import ReuseEngine
    from repro.analysis.functional_sweep import (load_point_data,
                                                 mercury_config_for)
    from repro.models import build_model
    from repro.training import Trainer

    point = FunctionalPoint(model="squeezenet", epochs=1, seed=0)
    xtr, ytr, xte, yte, num_outputs = load_point_data(point)
    engine = ReuseEngine(mercury_config_for(point))
    model = build_model(point.model, num_classes=num_outputs, seed=0)
    trainer = Trainer(model, engine=engine)

    trainer.train_step(xtr[:4], ytr[:4])
    vectors_after_training = engine.stats.total_vectors
    accuracy = trainer.evaluate(xte, yte)
    assert engine.stats.total_vectors == vectors_after_training
    assert all(module.engine is engine for module in model.modules())
    assert 0.0 <= accuracy <= 1.0

    # Engine-attached measurement stays available on request.
    trainer.evaluate(xte, yte, use_engine=True)
    assert engine.stats.total_vectors > vectors_after_training


def test_point_data_is_deterministic_and_split():
    point = FunctionalPoint(model="squeezenet", seed=2)
    xtr1, ytr1, xte1, yte1, classes1 = load_point_data(point)
    xtr2, ytr2, xte2, yte2, classes2 = load_point_data(point)
    assert classes1 == classes2
    assert np.array_equal(xtr1, xtr2) and np.array_equal(ytr1, ytr2)
    assert np.array_equal(xte1, xte2) and np.array_equal(yte1, yte2)
    assert len(xte1) > 0 and len(xtr1) > len(xte1)
