"""Gradient and behaviour tests for the basic layers."""

import numpy as np
import pytest

from repro.nn import (AvgPool2D, BatchNorm2D, Conv2D, Dropout, Flatten,
                      GlobalAvgPool2D, LayerNorm, Linear, MaxPool2D, ReLU,
                      Sigmoid, Softmax, Tanh, GELU, Embedding)
from tests.helpers import numerical_gradient, relative_error

RNG = np.random.default_rng(42)


def _check_input_gradient(layer, x, tolerance=1e-4):
    """Compare analytic input gradients against central differences."""
    out = layer.forward(x)
    upstream = RNG.normal(size=out.shape)
    grad = layer.backward(upstream)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, x)
    assert relative_error(grad, numeric) < tolerance


def _check_param_gradient(layer, x, param, tolerance=1e-4):
    out = layer.forward(x)
    upstream = RNG.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(upstream)
    analytic = param.grad.copy()

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, param.value)
    assert relative_error(analytic, numeric) < tolerance


# ----------------------------------------------------------------------
# Conv2D
# ----------------------------------------------------------------------
def test_conv_forward_shape():
    layer = Conv2D(3, 5, 3, padding=1, seed=0)
    out = layer.forward(RNG.normal(size=(2, 3, 8, 8)))
    assert out.shape == (2, 5, 8, 8)


def test_conv_forward_stride_shape():
    layer = Conv2D(2, 4, 3, stride=2, padding=1, seed=0)
    out = layer.forward(RNG.normal(size=(1, 2, 8, 8)))
    assert out.shape == (1, 4, 4, 4)


def test_conv_matches_manual_computation():
    layer = Conv2D(1, 1, 2, bias=False, seed=0)
    layer.weight.value = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
    out = layer.forward(x)
    expected_00 = 0 * 1 + 1 * 2 + 3 * 3 + 4 * 4
    assert out[0, 0, 0, 0] == expected_00


def test_conv_input_gradient():
    layer = Conv2D(2, 3, 3, padding=1, seed=1)
    _check_input_gradient(layer, RNG.normal(size=(1, 2, 5, 5)))


def test_conv_weight_gradient():
    layer = Conv2D(2, 2, 3, seed=2)
    _check_param_gradient(layer, RNG.normal(size=(1, 2, 5, 5)), layer.weight)


def test_conv_bias_gradient():
    layer = Conv2D(1, 2, 3, seed=3)
    _check_param_gradient(layer, RNG.normal(size=(1, 1, 5, 5)), layer.bias)


def test_conv_output_shape_helper():
    layer = Conv2D(3, 8, 3, stride=2, padding=1)
    assert layer.output_shape(32, 32) == (16, 16)


# ----------------------------------------------------------------------
# Linear
# ----------------------------------------------------------------------
def test_linear_forward():
    layer = Linear(4, 3, seed=0)
    layer.weight.value = np.eye(4, 3)
    layer.bias.value = np.array([1.0, 2.0, 3.0])
    out = layer.forward(np.array([[1.0, 2.0, 3.0, 4.0]]))
    np.testing.assert_allclose(out, [[2.0, 4.0, 6.0]])


def test_linear_gradients():
    layer = Linear(5, 4, seed=1)
    x = RNG.normal(size=(3, 5))
    _check_input_gradient(layer, x)
    _check_param_gradient(layer, x, layer.weight)
    _check_param_gradient(layer, x, layer.bias)


def test_linear_higher_rank_input():
    layer = Linear(6, 2, seed=2)
    out = layer.forward(RNG.normal(size=(2, 3, 6)))
    assert out.shape == (2, 3, 2)
    grad = layer.backward(np.ones((2, 3, 2)))
    assert grad.shape == (2, 3, 6)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh, GELU, Softmax])
def test_activation_gradients(layer_cls):
    layer = layer_cls()
    _check_input_gradient(layer, RNG.normal(size=(3, 4)), tolerance=1e-3)


def test_relu_zeroes_negatives():
    out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
    np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])


def test_softmax_rows_sum_to_one():
    out = Softmax().forward(RNG.normal(size=(5, 7)))
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))


def test_sigmoid_range():
    out = Sigmoid().forward(np.array([-1000.0, 0.0, 1000.0]))
    assert out[0] >= 0.0 and out[2] <= 1.0 and np.isclose(out[1], 0.5)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def test_maxpool_forward():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = MaxPool2D(2).forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradient_routes_to_argmax():
    layer = MaxPool2D(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    layer.forward(x)
    grad = layer.backward(np.ones((1, 1, 2, 2)))
    assert grad[0, 0, 1, 1] == 1.0  # value 5 was the max of its window
    assert grad[0, 0, 0, 0] == 0.0
    assert grad.sum() == 4.0


def test_maxpool_input_gradient_numeric():
    layer = MaxPool2D(2)
    # Use distinct values so the argmax is stable under perturbation.
    x = RNG.permutation(36).astype(float).reshape(1, 1, 6, 6)
    _check_input_gradient(layer, x)


def test_avgpool_forward_and_gradient():
    layer = AvgPool2D(2)
    x = RNG.normal(size=(2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 3, 2, 2)
    np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())
    _check_input_gradient(layer, x)


def test_global_avg_pool():
    layer = GlobalAvgPool2D()
    x = RNG.normal(size=(2, 3, 5, 5))
    out = layer.forward(x)
    assert out.shape == (2, 3)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
    _check_input_gradient(layer, x)


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
def test_batchnorm_normalises_in_training():
    layer = BatchNorm2D(3)
    x = RNG.normal(loc=5.0, scale=2.0, size=(4, 3, 6, 6))
    out = layer.forward(x)
    assert abs(out.mean()) < 1e-6
    assert abs(out.var() - 1.0) < 1e-2


def test_batchnorm_eval_uses_running_stats():
    layer = BatchNorm2D(2)
    x = RNG.normal(loc=3.0, size=(8, 2, 4, 4))
    for _ in range(20):
        layer.forward(x)
    layer.training = False
    out = layer.forward(x)
    # Running statistics approach the batch statistics, so the output is
    # roughly normalised even in eval mode.
    assert abs(out.mean()) < 0.5


def test_batchnorm_gradients():
    layer = BatchNorm2D(2)
    x = RNG.normal(size=(3, 2, 4, 4))
    _check_input_gradient(layer, x, tolerance=1e-3)
    _check_param_gradient(layer, x, layer.gamma, tolerance=1e-3)
    _check_param_gradient(layer, x, layer.beta, tolerance=1e-3)


def test_layernorm_gradients():
    layer = LayerNorm(6)
    x = RNG.normal(size=(4, 6))
    _check_input_gradient(layer, x, tolerance=1e-3)
    _check_param_gradient(layer, x, layer.gamma, tolerance=1e-3)


def test_layernorm_normalises_last_axis():
    layer = LayerNorm(8)
    out = layer.forward(RNG.normal(loc=4.0, size=(3, 8)))
    np.testing.assert_allclose(out.mean(axis=-1), np.zeros(3), atol=1e-7)


# ----------------------------------------------------------------------
# Dropout / Flatten / Embedding
# ----------------------------------------------------------------------
def test_dropout_identity_in_eval():
    layer = Dropout(0.5)
    layer.training = False
    x = RNG.normal(size=(4, 4))
    np.testing.assert_array_equal(layer.forward(x), x)


def test_dropout_scales_in_training():
    layer = Dropout(0.5, seed=0)
    x = np.ones((1000,))
    out = layer.forward(x)
    # Inverted dropout keeps the expectation.
    assert abs(out.mean() - 1.0) < 0.1
    assert np.any(out == 0.0)


def test_dropout_rejects_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_flatten_roundtrip():
    layer = Flatten()
    x = RNG.normal(size=(2, 3, 4, 5))
    out = layer.forward(x)
    assert out.shape == (2, 60)
    grad = layer.backward(out)
    np.testing.assert_array_equal(grad, x)


def test_embedding_lookup_and_gradient():
    layer = Embedding(10, 4, seed=0)
    ids = np.array([[1, 2], [2, 3]])
    out = layer.forward(ids)
    assert out.shape == (2, 2, 4)
    np.testing.assert_array_equal(out[0, 1], out[1, 0])
    layer.zero_grad()
    layer.backward(np.ones((2, 2, 4)))
    # Token 2 appears twice so its gradient row is doubled.
    np.testing.assert_allclose(layer.weight.grad[2], 2 * np.ones(4))
    np.testing.assert_allclose(layer.weight.grad[5], np.zeros(4))


def test_embedding_rejects_out_of_range():
    layer = Embedding(4, 2)
    with pytest.raises(ValueError):
        layer.forward(np.array([5]))


def test_conv_weight_matrix_cache_handles_noncontiguous_rebind():
    """Rebinding weights to a non-contiguous array must not freeze the
    layer: the cached weight-matrix view is only kept when reshape
    really returned a view, so in-place optimizer updates always reach
    the forward pass."""
    rng = np.random.default_rng(0)
    conv = Conv2D(2, 3, 3, bias=False, seed=0)
    x = rng.normal(size=(1, 2, 5, 5))
    out_original = conv.forward(x)

    doubled = np.ascontiguousarray(np.moveaxis(conv.weight.value * 2.0,
                                               0, -1))
    conv.weight.value = np.moveaxis(doubled, -1, 0)   # non-contiguous view
    out_doubled = conv.forward(x)
    np.testing.assert_allclose(out_doubled, 2.0 * out_original)

    # An in-place update (what the optimizers do) must be visible too.
    conv.weight.value *= 0.5
    out_restored = conv.forward(x)
    np.testing.assert_allclose(out_restored, out_original)
