"""Random Projection with Quantization (RPQ).

RPQ multiplies an input vector ``X`` (1 x m) with a random matrix ``R``
(m x n) whose entries are drawn from N(0, 1) and quantizes each element
of the projection by its sign, producing an ``n``-bit *signature*
(§II-A of the paper).  Two vectors that map to the same signature are
close in the original space, so their dot products with any weight
vector are approximately equal — the property MERCURY exploits.

The module also provides :func:`signature_via_convolution`, the paper's
§III-B1 formulation where each column of ``R`` is re-organised into a
random *filter* and the signature bits fall out of 2D convolutions.
The two formulations produce identical signatures, which the test suite
verifies.
"""

from __future__ import annotations

import numpy as np


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack rows of 0/1 bits into integer signatures.

    Signatures of up to 62 bits (the common case) come back as an
    ``int64`` array so downstream group-by operations stay vectorised;
    longer signatures — reachable through the adaptive length growth —
    fall back to an object array of exact Python integers.

    Parameters
    ----------
    bits:
        Array of shape ``(n_vectors, n_bits)`` containing 0/1 values.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_vectors,)`` array of signatures (int64 or object).
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("pack_bits expects a 2D (n_vectors, n_bits) array")
    n_vectors, n_bits = bits.shape

    if n_bits <= 62:
        # Fast vectorised path for the common case.
        weights = (1 << np.arange(n_bits - 1, -1, -1, dtype=np.int64))
        return (bits.astype(np.int64) * weights).sum(axis=1)

    packed = np.empty(n_vectors, dtype=object)
    weights = [1 << (n_bits - 1 - i) for i in range(n_bits)]
    for row in range(n_vectors):
        value = 0
        row_bits = bits[row]
        for i in range(n_bits):
            if row_bits[i]:
                value |= weights[i]
        packed[row] = value
    return packed


class RPQHasher:
    """Generates RPQ signatures for batches of vectors.

    One random projection matrix is lazily created per (vector length,
    signature length) pair, seeded deterministically so forward and
    backward passes of the same layer — and repeated runs — see the same
    projections.
    """

    def __init__(self, seed: int = 1234):
        self.seed = seed
        self._matrices: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def projection_matrix(self, vector_length: int, signature_bits: int) -> np.ndarray:
        """Return (and cache) the m x n random projection matrix."""
        key = (vector_length, signature_bits)
        if key not in self._matrices:
            # Derive a per-shape seed so growing the signature keeps the
            # first bits' filters stable: generate the widest matrix
            # incrementally column-block by column-block.
            rng = np.random.default_rng((self.seed, vector_length))
            matrix = rng.normal(0.0, 1.0, size=(vector_length, signature_bits))
            self._matrices[key] = matrix
        return self._matrices[key]

    def project(self, vectors: np.ndarray, signature_bits: int) -> np.ndarray:
        """Random projection without quantization: ``X @ R``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        matrix = self.projection_matrix(vectors.shape[1], signature_bits)
        return vectors @ matrix

    def signature_bits_matrix(self, vectors: np.ndarray,
                              signature_bits: int) -> np.ndarray:
        """Return the 0/1 bit matrix (sign quantization of the projection)."""
        projected = self.project(vectors, signature_bits)
        return (projected >= 0.0).astype(np.uint8)

    def signatures(self, vectors: np.ndarray, signature_bits: int) -> np.ndarray:
        """Return one packed integer signature per row of ``vectors``."""
        return pack_bits(self.signature_bits_matrix(vectors, signature_bits))

    # ------------------------------------------------------------------
    def similarity_fraction(self, vectors: np.ndarray,
                            signature_bits: int) -> float:
        """Fraction of vectors whose signature repeats an earlier one.

        This is the quantity plotted per layer in Figure 1 of the paper
        ("input similarity"): a vector is *similar* if at least one
        earlier vector produced the same signature.
        """
        sigs = self.signatures(vectors, signature_bits)
        seen: set[int] = set()
        similar = 0
        for sig in sigs:
            if sig in seen:
                similar += 1
            else:
                seen.add(sig)
        if len(sigs) == 0:
            return 0.0
        return similar / len(sigs)

    def unique_vector_count(self, vectors: np.ndarray,
                            signature_bits: int) -> int:
        """Number of distinct signatures (Figure 3 / Figure 15c)."""
        sigs = self.signatures(vectors, signature_bits)
        return len(set(sigs.tolist()))


def signature_via_convolution(image: np.ndarray, kernel_size: int,
                              random_filters: np.ndarray,
                              stride: int = 1) -> np.ndarray:
    """Compute signatures using the paper's convolution formulation.

    Each column of the random projection matrix is reshaped into a
    ``kernel_size x kernel_size`` random filter; sliding each filter over
    the image produces one bit of every input vector's signature
    (§III-B1).  The result must equal hashing the im2col rows directly.

    Parameters
    ----------
    image:
        2D input matrix of shape ``(H, W)`` (single channel).
    kernel_size:
        Side length of the extracted input vectors.
    random_filters:
        Projection matrix of shape ``(kernel_size * kernel_size, n_bits)``.

    Returns
    -------
    numpy.ndarray
        Packed integer signature per input vector, ordered row-major
        over the output positions.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("signature_via_convolution expects a 2D image")
    height, width = image.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    n_bits = random_filters.shape[1]

    bits = np.zeros((out_h * out_w, n_bits), dtype=np.uint8)
    for bit in range(n_bits):
        kernel = random_filters[:, bit].reshape(kernel_size, kernel_size)
        index = 0
        for i in range(0, out_h * stride, stride):
            for j in range(0, out_w * stride, stride):
                patch = image[i:i + kernel_size, j:j + kernel_size]
                value = float(np.sum(patch * kernel))
                bits[index, bit] = 1 if value >= 0.0 else 0
                index += 1
    return pack_bits(bits)
