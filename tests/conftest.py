"""Pytest configuration: hypothesis settings profiles and shared fixtures.

Profiles (select with ``HYPOTHESIS_PROFILE=<name>``, default ``fast``):

* ``fast`` — a handful of examples with shrinking disabled, for quick
  local iteration and the tier-1 run;
* ``ci``   — more examples for the CI matrix;
* ``dev``  — minimal examples, for smoke-checking a work in progress.

Per-test ``@settings`` decorators still override the profile.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import Phase, settings

settings.register_profile(
    "fast", max_examples=10, deadline=None,
    phases=[Phase.explicit, Phase.reuse, Phase.generate])
settings.register_profile("ci", max_examples=50, deadline=None)
settings.register_profile("dev", max_examples=2, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)


@pytest.fixture
def make_trace():
    """Factory for random signature traces with controllable reuse.

    ``make_trace(n, pool_size, seed)`` draws ``n`` probes from a pool of
    ``pool_size`` distinct signature values — smaller pools mean more
    HITs, pools larger than the cache force MNUs.
    """
    def make(num_probes: int, pool_size: int, seed: int = 0,
             signature_range: int = 1 << 20) -> np.ndarray:
        trace_rng = np.random.default_rng(seed)
        pool = trace_rng.integers(0, signature_range,
                                  size=max(pool_size, 1))
        return trace_rng.choice(pool, size=num_probes)
    return make


# A spread of MCACHE geometries: direct-mapped, the paper default shape
# scaled down, high associativity, and multi-version (asynchronous
# design) variants.
MCACHE_GEOMETRIES = [
    pytest.param((16, 1, 1), id="direct-mapped"),
    pytest.param((64, 4, 1), id="4-way"),
    pytest.param((32, 16, 1), id="16-way"),
    pytest.param((8, 2, 3), id="2-way-3-versions"),
]


@pytest.fixture(params=MCACHE_GEOMETRIES)
def mcache_geometry(request) -> tuple[int, int, int]:
    """(entries, ways, versions) triples shared by the cache suites."""
    return request.param


@pytest.fixture(params=[
    pytest.param({"signature_bits": 12, "mcache_entries": 64,
                  "mcache_ways": 4}, id="small-cache"),
    pytest.param({"signature_bits": 20, "mcache_entries": 1024,
                  "mcache_ways": 16}, id="paper-default"),
    pytest.param({"signature_bits": 16, "mcache_entries": 32,
                  "mcache_ways": 32}, id="fully-associative"),
])
def mercury_config_grid(request):
    """A grid of MercuryConfig variants (adaptation off for determinism)."""
    from repro.core.config import MercuryConfig
    return MercuryConfig(adaptive_stoppage=False,
                         adaptive_signature_length=False, **request.param)
