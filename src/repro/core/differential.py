"""Differential-test oracle: scalar MCACHE vs the vectorized engine.

The line-level :class:`~repro.core.mcache.MCache` is the reference model
of the hardware; :class:`~repro.core.mcache_vec.VectorizedMCache` is the
fast batch engine that production paths use.  This module replays the
same signature trace through both and reports any divergence, so the
batch engine can be refactored aggressively while staying bit-identical
to the oracle.

Two entry points:

* :func:`scalar_reference_simulation` — build a
  :class:`~repro.core.hitmap_sim.HitmapSimulation` by probing a fresh
  scalar cache once per signature.  This is what the reuse engine's
  ``"scalar"`` backend runs, and what the differential suite compares
  the vectorized backends against.
* :func:`run_differential` — replay a trace in (possibly ragged) chunks
  against persistent scalar and vectorized caches, optionally exercising
  the data phase (VD bits, versions) and flash invalidation, and return
  a :class:`DifferentialReport` listing every mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hitmap import CODE_TO_STATE, HitState, STATE_TO_CODE
from repro.core.hitmap_sim import HitmapSimulation
from repro.core.mcache import MCache
from repro.core.mcache_vec import VectorizedMCache
from repro.core.rpq import signatures_to_ints


def scalar_reference_simulation(signatures, num_sets: int,
                                ways: int) -> HitmapSimulation:
    """Signature-phase oracle: probe a fresh scalar MCACHE per vector.

    Accepts any packed representation — multi-word batches are expanded
    to exact Python integers, since the line-level model probes one
    arbitrary-precision signature at a time.
    """
    cache = MCache(entries=num_sets * ways, ways=ways)
    signatures = signatures_to_ints(signatures)
    num_vectors = len(signatures)
    states = np.empty(num_vectors, dtype=np.int8)
    representative = np.arange(num_vectors, dtype=np.int64)
    owner_row: dict[int, int] = {}
    rejected: set[int] = set()

    for index in range(num_vectors):
        signature = int(signatures[index])
        state, entry_id = cache.lookup_or_insert(signature)
        states[index] = STATE_TO_CODE[state]
        if state is HitState.HIT:
            representative[index] = owner_row[entry_id]
        elif state is HitState.MAU:
            owner_row[entry_id] = index
        else:
            rejected.add(signature)

    return HitmapSimulation(states=states, representative=representative,
                            hits=cache.stats.hits, mau=cache.stats.mau,
                            mnu=cache.stats.mnu,
                            unique_signatures=len(owner_row) + len(rejected))


@dataclass
class DifferentialReport:
    """Outcome of one scalar-vs-vectorized trace replay."""

    probes: int
    chunks: int
    mismatches: list[dict] = field(default_factory=list)
    scalar_stats: dict = field(default_factory=dict)
    vectorized_stats: dict = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.identical:
            return (f"identical over {self.probes} probes "
                    f"in {self.chunks} chunks")
        first = self.mismatches[0]
        return (f"{len(self.mismatches)} mismatches over {self.probes} "
                f"probes; first: {first}")


def _stats_dict(stats) -> dict:
    return {"hits": stats.hits, "mau": stats.mau, "mnu": stats.mnu,
            "data_reads": stats.data_reads, "data_writes": stats.data_writes}


def run_differential(signatures, entries: int, ways: int, versions: int = 1,
                     chunk_sizes=None, data_phase: bool = False,
                     invalidate_every: int | None = None) -> DifferentialReport:
    """Replay a trace through both MCACHE models and diff every probe.

    Parameters
    ----------
    signatures:
        The probe trace, replayed in order *without* clearing between
        chunks (persistent-state path; the reuse engine's fresh-cache
        path is covered by comparing ``simulate`` outputs directly).
    chunk_sizes:
        Batch sizes for the vectorized engine; the scalar oracle always
        steps one probe at a time.  Defaults to one single batch.
    data_phase:
        Also mirror the data phase: write a deterministic value for
        every MAU probe, compare VD bits for every HIT probe and read
        back the stored value when both models have one.
    invalidate_every:
        Flash-invalidate data (cycling through versions, then all) after
        every N-th chunk, modelling the synchronous design's filter
        switch.
    """
    signatures = np.atleast_1d(np.asarray(signatures))
    # The scalar model probes exact integers; the vectorized engine sees
    # the trace in whatever packed representation the caller used
    # (int64, object ints, or multi-word rows).
    scalar_values = signatures_to_ints(signatures)
    scalar = MCache(entries=entries, ways=ways, versions=versions)
    vectorized = VectorizedMCache(entries=entries, ways=ways,
                                  versions=versions)
    report = DifferentialReport(probes=len(scalar_values), chunks=0)

    if chunk_sizes is None:
        chunk_sizes = [len(scalar_values)]

    position = 0
    chunk_index = 0
    while position < len(scalar_values):
        size = max(1, int(chunk_sizes[chunk_index % len(chunk_sizes)]))
        chunk = signatures[position:position + size]
        chunk_values = scalar_values[position:position + size]
        version = chunk_index % versions

        vec_states, vec_entries = vectorized.lookup_or_insert_batch(chunk)
        for offset in range(len(chunk_values)):
            index = position + offset
            state, entry_id = scalar.lookup_or_insert(int(chunk_values[offset]))
            if (STATE_TO_CODE[state] != int(vec_states[offset])
                    or entry_id != vec_entries[offset]):
                report.mismatches.append({
                    "probe": index, "signature": int(chunk_values[offset]),
                    "scalar": (state.value, entry_id),
                    "vectorized": (CODE_TO_STATE[int(vec_states[offset])].value,
                                   int(vec_entries[offset]))})
                continue
            if not data_phase or entry_id < 0:
                continue
            if state is HitState.MAU:
                value = float(index)
                scalar.write_data(entry_id, value, version=version)
                vectorized.write_data(entry_id, value, version=version)
            elif state is HitState.HIT:
                scalar_has = scalar.has_data(entry_id, version=version)
                vector_has = vectorized.has_data(entry_id, version=version)
                if scalar_has != vector_has:
                    report.mismatches.append({
                        "probe": index, "signature": int(chunk_values[offset]),
                        "field": "valid_data",
                        "scalar": scalar_has, "vectorized": vector_has})
                elif scalar_has:
                    scalar_value = scalar.read_data(entry_id, version=version)
                    vector_value = vectorized.read_data(entry_id,
                                                        version=version)
                    if scalar_value != vector_value:
                        report.mismatches.append({
                            "probe": index, "signature": int(chunk_values[offset]),
                            "field": "data",
                            "scalar": scalar_value,
                            "vectorized": vector_value})

        position += len(chunk_values)
        chunk_index += 1
        report.chunks = chunk_index
        if invalidate_every and chunk_index % invalidate_every == 0:
            # Alternate targeted and flash invalidation.
            target = version if chunk_index % (2 * invalidate_every) else None
            scalar.invalidate_data(target)
            vectorized.invalidate_data(target)

    if scalar.occupancy() != vectorized.occupancy():
        report.mismatches.append({"field": "occupancy",
                                  "scalar": scalar.occupancy(),
                                  "vectorized": vectorized.occupancy()})
    scalar_stats = _stats_dict(scalar.stats)
    vectorized_stats = _stats_dict(vectorized.stats)
    report.scalar_stats = scalar_stats
    report.vectorized_stats = vectorized_stats
    if scalar_stats != vectorized_stats:
        report.mismatches.append({"field": "stats", "scalar": scalar_stats,
                                  "vectorized": vectorized_stats})
    return report
