"""Differential tests: scalar MCACHE oracle vs the vectorized engine.

The scalar :class:`~repro.core.mcache.MCache` is the reference model;
every test replays a trace through it and through
:class:`~repro.core.mcache_vec.VectorizedMCache` (or through the three
``ReuseEngine`` backends) and requires bit-identical Hitmap states,
representatives, entry ids, stats counters and data-phase contents.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MercuryConfig
from repro.core.differential import run_differential, \
    scalar_reference_simulation
from repro.core.hitmap_sim import simulate_hitmap
from repro.core.mcache_vec import VectorizedMCache
from repro.core.reuse import ReuseEngine

GEOMETRIES = [(8, 1, 1), (8, 2, 1), (16, 4, 2), (64, 16, 1), (4, 4, 3)]


def assert_simulations_equal(a, b):
    assert list(a.states) == list(b.states)
    assert list(a.representative) == list(b.representative)
    assert (a.hits, a.mau, a.mnu, a.unique_signatures) == \
        (b.hits, b.mau, b.mnu, b.unique_signatures)


# ----------------------------------------------------------------------
# Signature phase: fresh-cache simulation equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("entries,ways,versions", GEOMETRIES)
def test_simulation_matches_oracle_on_random_traces(entries, ways, versions,
                                                    make_trace):
    for seed, pool in ((0, 5), (1, 40), (2, 500)):
        trace = make_trace(300, pool_size=pool, seed=seed)
        vectorized = VectorizedMCache(entries=entries, ways=ways,
                                      versions=versions)
        ours = vectorized.simulate(trace)
        oracle = scalar_reference_simulation(trace,
                                             num_sets=entries // ways,
                                             ways=ways)
        assert_simulations_equal(ours, oracle)


@settings(deadline=None)
@given(signatures=st.lists(st.integers(0, 300), max_size=120),
       geometry=st.sampled_from(GEOMETRIES))
def test_simulation_matches_oracle_property(signatures, geometry):
    entries, ways, _ = geometry
    trace = np.array(signatures, dtype=np.int64)
    vectorized = VectorizedMCache(entries=entries, ways=ways)
    assert_simulations_equal(
        vectorized.simulate(trace),
        scalar_reference_simulation(trace, num_sets=entries // ways,
                                    ways=ways))


@settings(deadline=None)
@given(signatures=st.lists(st.integers(0, 60), min_size=1, max_size=100),
       chunks=st.lists(st.integers(1, 17), min_size=1, max_size=5),
       geometry=st.sampled_from(GEOMETRIES))
def test_persistent_chunked_replay_property(signatures, chunks, geometry):
    """Batched replay against persistent state equals probe-at-a-time."""
    entries, ways, versions = geometry
    report = run_differential(np.array(signatures), entries=entries,
                              ways=ways, versions=versions,
                              chunk_sizes=chunks)
    assert report.identical, report.describe()


# ----------------------------------------------------------------------
# Data phase and invalidation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("entries,ways,versions", GEOMETRIES)
def test_data_phase_differential(entries, ways, versions, make_trace):
    trace = make_trace(400, pool_size=30, seed=5)
    report = run_differential(trace, entries=entries, ways=ways,
                              versions=versions, chunk_sizes=[7, 31, 2],
                              data_phase=True)
    assert report.identical, report.describe()
    assert report.scalar_stats["data_writes"] > 0


@pytest.mark.parametrize("entries,ways,versions", GEOMETRIES)
def test_flash_invalidate_differential(entries, ways, versions, make_trace):
    """VD bits diverge fastest around invalidation; diff that path hard."""
    trace = make_trace(500, pool_size=20, seed=6)
    report = run_differential(trace, entries=entries, ways=ways,
                              versions=versions, chunk_sizes=[13, 5],
                              data_phase=True, invalidate_every=2)
    assert report.identical, report.describe()


def test_set_full_no_replacement_differential(make_trace):
    """A pool far larger than the cache keeps every set saturated."""
    report = run_differential(make_trace(600, pool_size=5000, seed=7),
                              entries=16, ways=2, chunk_sizes=[64],
                              data_phase=True)
    assert report.identical, report.describe()
    assert report.scalar_stats["mnu"] > 0


def test_wide_signature_differential():
    rng = np.random.default_rng(8)
    pool = [(1 << 70) + int(v) for v in rng.integers(0, 40, size=40)]
    trace = np.array([pool[i] for i in rng.integers(0, 40, size=200)],
                     dtype=object)
    report = run_differential(trace, entries=16, ways=2,
                              chunk_sizes=[9, 30], data_phase=True)
    assert report.identical, report.describe()


def test_report_flags_real_divergence():
    """The harness itself must be able to see a difference."""
    report = run_differential([1, 1, 2], entries=4, ways=2)
    report.mismatches.append({"probe": 0})
    assert not report.identical
    assert "mismatches" in report.describe()


# ----------------------------------------------------------------------
# ReuseEngine backends
# ----------------------------------------------------------------------
def _clustered_vectors(rng, num_vectors=60, length=9, clusters=12):
    centers = rng.normal(size=(clusters, length))
    picks = rng.integers(0, clusters, size=num_vectors)
    return centers[picks] + rng.normal(0, 1e-9, size=(num_vectors, length))


def test_reuse_engine_backends_are_bit_identical(rng, mercury_config_grid):
    vectors = _clustered_vectors(rng)
    weights = rng.normal(size=(vectors.shape[1], 6))
    outputs = {}
    records = {}
    for backend in ("vectorized", "groupby", "scalar"):
        engine = ReuseEngine(mercury_config_grid.replace(
            mcache_backend=backend))
        outputs[backend] = engine.matmul(vectors, weights, layer="conv",
                                         phase="forward")
        records[backend] = engine.stats.get("conv", "forward")
    np.testing.assert_array_equal(outputs["vectorized"], outputs["groupby"])
    np.testing.assert_array_equal(outputs["vectorized"], outputs["scalar"])
    reference = records["scalar"]
    for backend in ("vectorized", "groupby"):
        record = records[backend]
        assert (record.hits, record.mau, record.mnu) == \
            (reference.hits, reference.mau, reference.mnu)
        assert record.unique_signatures == reference.unique_signatures


def test_vectorized_backend_accumulates_mcache_stats(rng):
    config = MercuryConfig(signature_bits=12, mcache_entries=64,
                           mcache_ways=4, adaptive_stoppage=False)
    engine = ReuseEngine(config)
    vectors = _clustered_vectors(rng)
    weights = rng.normal(size=(vectors.shape[1], 4))
    engine.matmul(vectors, weights, layer="conv", phase="forward")
    stats = engine.mcache.stats
    assert stats.accesses == len(vectors)
    record = engine.stats.get("conv", "forward")
    assert (stats.hits, stats.mau, stats.mnu) == \
        (record.hits, record.mau, record.mnu)
    engine.reset_statistics()
    assert engine.mcache.stats.accesses == 0


def test_backends_identical_with_wide_signatures(rng):
    config = MercuryConfig(signature_bits=70, max_signature_bits=80,
                           mcache_entries=32, mcache_ways=4,
                           adaptive_stoppage=False,
                           adaptive_signature_length=False)
    vectors = _clustered_vectors(rng, num_vectors=30)
    weights = rng.normal(size=(vectors.shape[1], 3))
    results = []
    for backend in ("vectorized", "groupby", "scalar"):
        engine = ReuseEngine(config.replace(mcache_backend=backend))
        results.append(engine.matmul(vectors, weights, layer="l"))
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


def test_groupby_simulation_still_matches_oracle(make_trace):
    """Guards the pre-existing stateless path against regressions too."""
    trace = make_trace(250, pool_size=35, seed=9)
    assert_simulations_equal(
        simulate_hitmap(trace, num_sets=8, ways=2),
        scalar_reference_simulation(trace, num_sets=8, ways=2))
