"""Smoke test for the scenario sweep runner.

Runs a 2-point grid end to end (both in-process and through the
multiprocessing pool), asserts the result schema, non-negative timings
and JSON round-tripping.
"""

import json

import pytest

from repro.analysis.sweep import (
    RESULT_KEYS,
    SweepPoint,
    SweepResults,
    build_grid,
    evaluate_point,
    measure_hit_scale,
    run_sweep,
)


@pytest.fixture(scope="module")
def two_point_results():
    points = build_grid(["vgg13"], dataflows=["row_stationary"],
                        organizations=[(512, 8), (1024, 16)])
    assert len(points) == 2
    return points, run_sweep(points, processes=0)


def test_sweep_result_schema(two_point_results):
    points, results = two_point_results
    assert len(results) == len(points)
    for row in results.rows:
        assert RESULT_KEYS <= set(row)
        assert row["elapsed_s"] >= 0.0
        assert row["speedup"] > 0.0
        assert row["baseline_cycles"] >= 0.0
        assert row["mercury_cycles"] >= 0.0
        assert 0.0 <= row["signature_fraction"] <= 1.0
        assert row["hit_scale"] >= 0.0
        # The row records what was applied: the raw measurement, clamped.
        assert row["hit_scale"] == min(row["hit_scale_raw"], 1.2)
    assert results.elapsed_s >= 0.0
    # Rows come back in grid order.
    assert [row["mcache_entries"] for row in results.rows] == [512, 1024]


def test_sweep_json_round_trip(two_point_results, tmp_path):
    _, results = two_point_results
    path = tmp_path / "sweep.json"
    results.save(path)
    payload = json.loads(path.read_text())
    assert len(payload["rows"]) == len(results)
    reloaded = SweepResults.load(path)
    assert reloaded.rows == results.rows


def test_sweep_summary(two_point_results):
    _, results = two_point_results
    summary = results.summary()
    assert summary["points"] == 2
    assert "row_stationary" in summary["geomean_by_dataflow"]
    best = summary["best_per_model"]["vgg13"]
    # The larger cache catches more reuse, so it should win the sweep.
    assert best["mcache_entries"] == 1024
    assert results.geomean_speedup(mcache_entries=1024) >= \
        results.geomean_speedup(mcache_entries=512)
    with pytest.raises(ValueError):
        results.geomean_speedup(model="does-not-exist")


def test_sweep_multiprocessing_matches_serial(two_point_results):
    points, serial = two_point_results
    parallel = run_sweep(points, processes=2)
    for serial_row, parallel_row in zip(serial.rows, parallel.rows):
        for key in RESULT_KEYS - {"elapsed_s"}:
            assert serial_row[key] == parallel_row[key]


def test_hit_scale_reference_is_one():
    assert measure_hit_scale(1024, 16) == pytest.approx(1.0)
    assert 0.0 < measure_hit_scale(512, 8) <= 1.0


def test_evaluate_point_rejects_unknown_model():
    with pytest.raises(ValueError):
        evaluate_point(SweepPoint(model="not-a-model"))
