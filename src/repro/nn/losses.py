"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import softmax


class CrossEntropyLoss:
    """Softmax cross entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits.  An optional ``ignore_index`` skips
    padded positions (used by the transformer benchmark).
    """

    def __init__(self, ignore_index: int | None = None):
        self.ignore_index = ignore_index
        self._cache = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits2d = logits.reshape(-1, logits.shape[-1])
        targets1d = np.asarray(targets, dtype=np.int64).reshape(-1)

        probs = softmax(logits2d, axis=-1)
        if self.ignore_index is not None:
            mask = targets1d != self.ignore_index
        else:
            mask = np.ones_like(targets1d, dtype=bool)

        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ValueError("all targets are ignored; cannot compute loss")

        picked = probs[valid, targets1d[valid]]
        loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

        self._cache = (probs, targets1d, mask, logits.shape)
        return loss

    def backward(self) -> np.ndarray:
        probs, targets1d, mask, original_shape = self._cache
        grad = probs.copy()
        valid = np.flatnonzero(mask)
        grad[valid, targets1d[valid]] -= 1.0
        grad[~mask] = 0.0
        grad /= valid.size
        return grad.reshape(original_shape)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error."""

    def __init__(self):
        self._cache = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = predictions - targets
        self._cache = (diff, predictions.size)
        return float(np.mean(diff ** 2))

    def backward(self) -> np.ndarray:
        diff, count = self._cache
        return 2.0 * diff / count

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
