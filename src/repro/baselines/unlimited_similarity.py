"""Unlimited similarity detection (Figure 17c).

This comparison point assumes an ideal accelerator that can find *all*
repeated elements in a layer's inputs and weights and reuse each
distinct (input value, weight value) product — with zero detection cost.
The paper reports MERCURY landing within a couple of percent of this
bound, because whole-vector signature reuse captures most of the
element-level redundancy while paying only the RPQ cost.

Values are bucketised before counting (`value_resolution`), mirroring
the fixed-point arithmetic of the accelerator: two elements equal at
that resolution are considered "similar elements".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.capture import CaptureEngine


@dataclass
class UnlimitedSimilarityLayerReport:
    layer: str
    total_macs: float
    required_macs: float

    @property
    def speedup(self) -> float:
        if self.required_macs == 0:
            return 1.0
        return self.total_macs / self.required_macs


class UnlimitedSimilarityBound:
    """Ideal element-level similarity reuse over inputs and weights."""

    def __init__(self, value_resolution: float = 1e-2):
        if value_resolution <= 0:
            raise ValueError("value_resolution must be positive")
        self.value_resolution = value_resolution

    def _bucketise(self, array: np.ndarray) -> np.ndarray:
        return np.round(np.asarray(array, dtype=np.float64)
                        / self.value_resolution).astype(np.int64)

    def layer_report(self, layer: str, vectors: np.ndarray,
                     weights: np.ndarray) -> UnlimitedSimilarityLayerReport:
        """MAC counts for one stage.

        For every filter column, only one multiplication per *distinct
        bucketised input value* in a vector is required (its products
        with that filter's weights can be shared across repeated
        elements); the per-vector unique-value count therefore bounds
        the required multiplies.
        """
        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]
        total = float(num_vectors * vector_length * num_filters)

        bucketised = self._bucketise(vectors)
        unique_per_vector = np.array(
            [len(np.unique(bucketised[row])) for row in range(num_vectors)],
            dtype=np.float64)
        required = float(unique_per_vector.sum() * num_filters)
        return UnlimitedSimilarityLayerReport(layer=layer, total_macs=total,
                                              required_macs=required)

    def model_speedup(self, capture: CaptureEngine,
                      phase: str | None = None) -> float:
        total = 0.0
        required = 0.0
        for (layer, rec_phase), calls in capture.captured.items():
            if phase is not None and rec_phase != phase:
                continue
            for vectors, weights in calls:
                report = self.layer_report(layer, vectors, weights)
                total += report.total_macs
                required += report.required_macs
        if required == 0:
            return 1.0
        return total / required
