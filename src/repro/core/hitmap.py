"""The Hitmap: per-input-vector HIT / MAU / MNU marks.

The Hitmap is what keeps the accelerator dataflow regular in spite of
skipped computations (§III-B3): before a PE set starts the dot products
for an input vector it consults the Hitmap entry —

* ``HIT``  — an earlier vector produced the same signature and its
  results live in MCACHE; the dot product is skipped.
* ``MAU``  — *miss and update*: the signature was inserted into MCACHE,
  so the PE set must compute and store its result.
* ``MNU``  — *miss no update*: the MCACHE set was full, the signature
  was not inserted; compute but do not store.

Two representations coexist.  The :class:`HitState` enum is the
user-facing view (and the scalar :class:`~repro.core.mcache.MCache`
oracle's vocabulary); every hot path — batch classification, the
session's probe/admit loops, the cache ride — carries the dense ``int8``
*state codes* :data:`HIT_CODE` / :data:`MAU_CODE` / :data:`MNU_CODE`
instead, so no Python enum object is ever materialised per vector.
:func:`codes_to_states` / :func:`states_to_codes` convert at the
boundary.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

#: Dense ``int8`` state codes carried by every batch-classification
#: array (``HitmapSimulation.states``, ``lookup_or_insert_batch``).
HIT_CODE: int = 0
MAU_CODE: int = 1
MNU_CODE: int = 2


class HitState(Enum):
    """State of one Hitmap entry."""

    HIT = "HIT"
    MAU = "MAU"
    MNU = "MNU"

    @property
    def code(self) -> int:
        """The dense ``int8`` code of this state (HIT=0, MAU=1, MNU=2)."""
        return STATE_TO_CODE[self]


#: code -> enum (an object array so ``CODE_TO_STATE[codes]`` vectorises).
CODE_TO_STATE = np.array([HitState.HIT, HitState.MAU, HitState.MNU],
                         dtype=object)
#: enum -> code.
STATE_TO_CODE = {HitState.HIT: HIT_CODE, HitState.MAU: MAU_CODE,
                 HitState.MNU: MNU_CODE}


def codes_to_states(codes: np.ndarray) -> np.ndarray:
    """Object array of :class:`HitState` for an ``int8`` code array."""
    return CODE_TO_STATE[np.asarray(codes, dtype=np.int8)]


def states_to_codes(states) -> np.ndarray:
    """``int8`` code array for a sequence of :class:`HitState` values."""
    return np.fromiter((STATE_TO_CODE[state] for state in states),
                       dtype=np.int8, count=len(states))


class Hitmap:
    """A per-vector array of :class:`HitState` values with counters."""

    def __init__(self, num_vectors: int):
        if num_vectors < 0:
            raise ValueError("num_vectors must be non-negative")
        self.num_vectors = num_vectors
        self._states: list[HitState | None] = [None] * num_vectors
        # For HIT entries, index of the earlier vector whose results are
        # reused (the MAU vector holding the matching signature).
        self._source: list[int | None] = [None] * num_vectors

    def set(self, index: int, state: HitState, source: int | None = None) -> None:
        """Record the state of vector ``index``.

        ``source`` is required for HIT entries and must point at an
        earlier vector.
        """
        if not 0 <= index < self.num_vectors:
            raise IndexError(f"vector index {index} out of range")
        if state is HitState.HIT:
            if source is None:
                raise ValueError("HIT entries need the source vector index")
            if not 0 <= source < index:
                raise ValueError("HIT source must be an earlier vector")
        self._states[index] = state
        self._source[index] = source

    def get(self, index: int) -> HitState:
        state = self._states[index]
        if state is None:
            raise KeyError(f"vector {index} has no Hitmap entry yet")
        return state

    def source(self, index: int) -> int | None:
        """For a HIT entry, the earlier vector whose result is reused."""
        return self._source[index]

    def is_complete(self) -> bool:
        """True when every vector has been marked."""
        return all(state is not None for state in self._states)

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Counts of each state (and of unmarked entries)."""
        result = {HitState.HIT: 0, HitState.MAU: 0, HitState.MNU: 0, None: 0}
        for state in self._states:
            result[state] += 1
        return result

    def hit_fraction(self) -> float:
        """Fraction of vectors marked HIT (reused computations)."""
        if self.num_vectors == 0:
            return 0.0
        return self.counts()[HitState.HIT] / self.num_vectors

    def states_array(self) -> np.ndarray:
        """States as an object array (for vectorised consumers)."""
        return np.array(self._states, dtype=object)

    def sources_array(self) -> np.ndarray:
        """Reuse sources as an int array; -1 where not a HIT."""
        return np.array([-1 if s is None else s for s in self._source],
                        dtype=np.int64)

    def __len__(self) -> int:
        return self.num_vectors
