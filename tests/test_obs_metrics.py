"""Streaming metrics: log-histogram fidelity, exact merge, registry.

Two oracles pin :class:`LogHistogram`:

* the *exact* stream percentile (``np.percentile`` over every value)
  bounds the histogram read to within one bucket width — a relative
  error of ``growth`` — at a 50 k-sample stream;
* the batcher's bounded :class:`Reservoir` sample is the differential
  oracle: its estimate must agree with the exact percentile too, so
  the two independent summaries cross-check each other.

The property suite pins the merge algebra: associative, commutative,
and merging per-shard histograms equals one single-stream histogram
(``state()`` equality, which is merge-order-independent by
construction).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Event, LogHistogram, MetricsCollector, MetricsRegistry
from repro.obs.metrics import DEFAULT_GROWTH
from repro.serving.batcher import BatcherTelemetry

positive_values = st.floats(min_value=1e-6, max_value=1e6,
                            allow_nan=False, allow_infinity=False)


def _relative_error(estimate: float, exact: float) -> float:
    return abs(estimate - exact) / exact


class TestLogHistogram:
    def test_empty_reads_zero(self):
        histogram = LogHistogram()
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0

    def test_single_value_is_returned_exactly(self):
        # Clamping to [min, max] makes single-value reads exact even
        # though the bucket midpoint is not the value.
        histogram = LogHistogram()
        histogram.record(3.7)
        assert histogram.percentile(50) == pytest.approx(3.7)
        assert histogram.percentile(99) == pytest.approx(3.7)

    def test_non_positive_values_land_in_the_zero_bucket(self):
        histogram = LogHistogram()
        histogram.record_many([0.0, -1.0, 2.0, 4.0])
        assert histogram.zeros == 2
        assert histogram.count == 4
        assert histogram.percentile(25) == 0.0  # rank 1 → zero bucket
        assert histogram.percentile(100) == pytest.approx(4.0)

    def test_invalid_growth_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)

    def test_merge_rejects_mismatched_growth_and_types(self):
        histogram = LogHistogram()
        with pytest.raises(ValueError):
            histogram.merge(LogHistogram(growth=2.0))
        with pytest.raises(TypeError):
            histogram.merge([1, 2, 3])

    def test_round_trips_through_dict(self):
        histogram = LogHistogram()
        histogram.record_many([0.0, 0.5, 1.0, 2.0, 1000.0])
        clone = LogHistogram.from_dict(histogram.to_dict())
        assert clone == histogram
        assert clone.total == histogram.total
        assert clone.min == histogram.min
        assert clone.max == histogram.max

    def test_percentiles_within_bucket_width_at_50k(self):
        """The regression bound: p50/p99 within ``growth`` relative
        error of the exact stream percentile on a 50 k lognormal
        latency stream, with the reservoir as differential oracle."""
        rng = np.random.default_rng(7)
        stream = rng.lognormal(mean=-6.0, sigma=1.2, size=50_000)
        telemetry = BatcherTelemetry()
        for value in stream:
            telemetry.record_latency(value)
        histogram = telemetry.latency_hist
        reservoir = telemetry.latencies.values()
        assert histogram.count == 50_000
        bound = histogram.growth - 1.0  # one-bucket relative error
        for quantile in (50, 90, 99):
            exact = float(np.percentile(stream, quantile))
            assert _relative_error(histogram.percentile(quantile),
                                   exact) < bound
            # The bounded sample agrees with the exact stream too —
            # two independent summaries cross-checking each other.
            sampled = float(np.percentile(reservoir, quantile))
            assert _relative_error(sampled, exact) < 0.12

    def test_shard_merge_equals_single_stream_at_50k(self):
        rng = np.random.default_rng(11)
        stream = rng.lognormal(mean=-6.0, sigma=1.0, size=50_000)
        single = LogHistogram()
        single.record_many(stream)
        shards = [LogHistogram() for _ in range(4)]
        for index, value in enumerate(stream):
            shards[index % 4].record(value)
        merged = LogHistogram.merged(shards)
        assert merged == single
        assert merged.percentile(99) == single.percentile(99)


@given(st.lists(positive_values, max_size=60),
       st.lists(positive_values, max_size=60))
def test_merge_is_commutative(left_values, right_values):
    left = LogHistogram()
    left.record_many(left_values)
    right = LogHistogram()
    right.record_many(right_values)
    left_first = LogHistogram.merged([left, right])
    right_first = LogHistogram.merged([right, left])
    assert left_first.state() == right_first.state()


@given(st.lists(positive_values, max_size=40),
       st.lists(positive_values, max_size=40),
       st.lists(positive_values, max_size=40))
def test_merge_is_associative(a_values, b_values, c_values):
    def build(values):
        histogram = LogHistogram()
        histogram.record_many(values)
        return histogram

    a, b, c = build(a_values), build(b_values), build(c_values)
    ab_then_c = build(a_values).merge(build(b_values)).merge(c)
    a_then_bc = build(b_values).merge(build(c_values))
    a_then_bc = build(a_values).merge(a_then_bc)
    assert ab_then_c.state() == a_then_bc.state()
    assert ab_then_c.state() == LogHistogram.merged([a, b, c]).state()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                max_size=100),
       st.integers(min_value=1, max_value=5))
def test_sharded_recording_equals_single_stream(values, num_shards):
    """Splitting a stream across shards and merging reproduces the
    single-stream histogram exactly — bucketing is a pure function of
    the value, so the split cannot matter."""
    single = LogHistogram()
    single.record_many(values)
    shards = [LogHistogram() for _ in range(num_shards)]
    for index, value in enumerate(values):
        shards[index % num_shards].record(value)
    merged = LogHistogram.merged(shards)
    assert merged.state() == single.state()
    assert merged.count == single.count
    assert merged.zeros == single.zeros


class TestMetricsRegistry:
    def test_counters_gauges_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("repro_reuse_hits_total", 3, phase="serving")
        registry.inc("repro_reuse_hits_total", 2, phase="serving")
        registry.inc("repro_reuse_hits_total", 7, phase="training")
        registry.set_gauge("repro_reuse_hit_rate", 0.5, phase="serving")
        assert registry.counter("repro_reuse_hits_total",
                                phase="serving") == 5
        assert registry.counter("repro_reuse_hits_total",
                                phase="training") == 7
        assert registry.counter("repro_reuse_hits_total") == 0
        assert registry.gauge("repro_reuse_hit_rate",
                              phase="serving") == 0.5
        assert registry.counters_dict() == {
            'repro_reuse_hits_total{phase="serving"}': 5,
            'repro_reuse_hits_total{phase="training"}': 7,
        }

    def test_state_captures_everything_and_compares(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("a_total", 2)
            registry.set_gauge("g", 1.5, shard="shard0")
            registry.observe("h", 0.25)
            return registry

        assert build().state() == build().state()
        other = build()
        other.observe("h", 0.5)
        assert other.state() != build().state()

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.inc("repro_serving_requests_total", 60)
        registry.set_gauge("repro_reuse_hit_rate", 0.25, phase="serving")
        registry.observe("repro_serving_latency_seconds", 0.001)
        registry.observe("repro_serving_latency_seconds", 0.002)
        text = registry.render_prometheus()
        assert "# HELP repro_serving_requests_total" in text
        assert "# TYPE repro_serving_requests_total counter" in text
        assert "repro_serving_requests_total 60" in text
        assert 'repro_reuse_hit_rate{phase="serving"} 0.25' in text
        assert "# TYPE repro_serving_latency_seconds histogram" in text
        assert "repro_serving_latency_seconds_count 2" in text
        assert "repro_serving_latency_seconds_sum 0.003" in text
        assert 'le="+Inf"} 2' in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.0)   # zero bucket
        registry.observe("h", 1.0)
        registry.observe("h", 100.0)
        lines = registry.render_prometheus().splitlines()
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines
                  if line.startswith("h_bucket")]
        assert counts == sorted(counts)
        assert counts[0] == 1          # the le="0" zero bucket
        assert counts[-1] == 3         # le="+Inf" equals the count


class TestMetricsCollector:
    def test_serve_batch_folds_counters_l2_and_shard_balance(self):
        collector = MetricsCollector()
        collector.handle(Event("serve.batch", "shard0", {
            "rows": 8, "shard": "shard0", "l2_hits": 2, "l2_misses": 1,
            "counters": {"requests": 8, "cross_hits": 3, "intra_hits": 1,
                         "computed": 4, "inserted": 4},
        }))
        collector.handle(Event("serve.batch", "shard1", {
            "rows": 4, "shard": "shard1",
            "counters": {"requests": 4, "computed": 4},
        }))
        registry = collector.registry
        assert registry.counter("repro_serving_requests_total") == 12
        assert registry.counter("repro_reuse_hits_total", phase="serving",
                                granularity="request") == 4
        assert registry.counter("repro_reuse_requests_total",
                                phase="serving",
                                granularity="request") == 12
        assert registry.counter("repro_l2_hits_total") == 2
        assert registry.counter("repro_l2_misses_total") == 1
        assert registry.gauge("repro_serving_shard_requests",
                              shard="shard0") == 8
        assert registry.gauge("repro_serving_shard_balance") \
            == pytest.approx(8 / 6)

    def test_event_kinds_map_to_canonical_names(self):
        collector = MetricsCollector()
        for event in (
                Event("batcher.batch", payload={"size": 8}),
                Event("batcher.latency", payload={"latency_s": 0.002}),
                Event("session.clear", payload={"clears": 2}),
                Event("router.promote", payload={"signature": 1}),
                Event("l2.flush"), Event("l2.load"),
                Event("snapshot.write"), Event("snapshot.restore"),
                Event("worker.recovered", payload={"worker": 0}),
                Event("controller.decision",
                      payload={"action": "flash_clear"}),
                Event("serve.window",
                      payload={"hit_rate": 0.75, "signature_bits": 16}),
                Event("not.a.known.kind"),
        ):
            collector.handle(event)
        registry = collector.registry
        assert registry.counter("repro_serving_batches_total") == 1
        assert registry.histogram("repro_serving_batch_size").count == 1
        assert registry.histogram(
            "repro_serving_latency_seconds").count == 1
        assert registry.counter("repro_reuse_flash_clears_total",
                                phase="serving") == 2
        assert registry.counter(
            "repro_router_hot_key_promotions_total") == 1
        assert registry.counter("repro_l2_flushes_total") == 1
        assert registry.counter("repro_l2_loads_total") == 1
        assert registry.counter(
            "repro_serving_snapshot_writes_total") == 1
        assert registry.counter(
            "repro_serving_snapshot_restores_total") == 1
        assert registry.counter("repro_serving_recoveries_total") == 1
        assert registry.counter("repro_controller_decisions_total",
                                action="flash_clear") == 1
        assert registry.gauge("repro_reuse_hit_rate",
                              phase="serving") == 0.75
        assert registry.gauge("repro_reuse_signature_bits",
                              phase="serving") == 16
        assert collector.handled == 12  # unknown kinds count as handled

    def test_training_epoch_event(self):
        collector = MetricsCollector()
        collector.handle(Event("training.epoch", "trainer", {
            "epoch": 0, "loss": 1.25, "accuracy": 0.5,
            "vectors": 100, "hits": 40, "flash_clears": 2,
            "hit_rate": 0.4, "signature_bits": 16,
        }))
        registry = collector.registry
        assert registry.counter("repro_training_epochs_total") == 1
        assert registry.counter("repro_reuse_requests_total",
                                phase="training") == 100
        assert registry.counter("repro_reuse_hits_total",
                                phase="training") == 40
        assert registry.counter("repro_reuse_flash_clears_total",
                                phase="training") == 2
        assert registry.gauge("repro_training_loss") == 1.25
        assert registry.gauge("repro_training_accuracy") == 0.5
        assert registry.gauge("repro_reuse_hit_rate",
                              phase="training") == 0.4


def test_default_growth_keeps_relative_error_under_ten_percent():
    assert 1.0 < DEFAULT_GROWTH < 1.10
