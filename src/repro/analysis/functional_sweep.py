"""Functional sweep runner: end-to-end training-accuracy scenarios.

The cycle-model sweep (:mod:`repro.analysis.sweep`) answers "how fast
is MERCURY in scenario X"; this module answers the other half of the
paper's claim — "what does scenario X do to training accuracy".  Each
:class:`FunctionalPoint` names a model, a dataset scale, a
``MercuryConfig`` variant and an adaptation policy; evaluating a point
trains the model twice end-to-end through :class:`repro.training.Trainer`
with the *same* derived seeds and therefore the same weight
initialisation and minibatch order:

* once with :class:`~repro.core.reuse.ExactCountingEngine` (the exact
  baseline — bit-identical to engine-less training, which the golden
  regression suite asserts), and
* once with a :class:`~repro.core.reuse.ReuseEngine` configured for the
  point.

The baseline half is independent of every MercuryConfig axis, so
:func:`run_functional_sweep` memoizes it per
(model, dataset scale, training config, seed) group
(:func:`baseline_key`) and shares the one run across all config and
adaptation variants in the grid — a grid with ``N`` variants per group
trains ``N + 1`` models instead of ``2 N``.

The row records the accuracy delta between the two runs (validation
accuracy is measured exactly — the trainer detaches its engine while
evaluating, so the delta isolates what reuse did to *training*, the
paper's Figure 13 methodology — and the engine statistics cover only
real training batches), both loss trajectories, per-layer reuse
statistics and the modeled speedup of the recorded workload, in the
same JSON schema family as the cycle sweep
(:class:`FunctionalSweepResults` shares :class:`~repro.analysis.grid.GridResults`).

Typical use (see also ``examples/functional_sweep.py``)::

    from repro.analysis.functional_sweep import (
        build_functional_grid, run_functional_sweep)

    points = build_functional_grid(["squeezenet", "transformer"],
                                   signature_bits=(12, 20))
    results = run_functional_sweep(points, processes=4)
    results.save("functional.json")
    print(results.summary())
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.accelerator.mercury_sim import MercurySimulator
from repro.analysis.grid import (GridResults, expand_grid,
                                point_row, run_grid)
from repro.core.config import MercuryConfig
from repro.core.reuse import ExactCountingEngine, ReuseEngine
from repro.data.loaders import train_test_split
from repro.data.synthetic_images import ClusteredImageDataset, \
    ImageDatasetConfig
from repro.data.synthetic_text import TranslationConfig, TranslationDataset
from repro.models.registry import build_model, get_spec
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult

# Result-row schema for functional rows, mirroring ``sweep.RESULT_KEYS``
# (asserted by tests/test_functional_sweep.py).
FUNCTIONAL_RESULT_KEYS = frozenset({
    "model", "dataset_scale", "adaptation", "signature_bits",
    "mcache_entries", "mcache_ways", "mcache_backend",
    "epochs", "batch_size", "learning_rate", "optimizer", "seed",
    "baseline_accuracy", "reuse_accuracy", "accuracy_delta",
    "baseline_losses", "reuse_losses",
    "baseline_final_loss", "reuse_final_loss",
    "hit_fraction", "mac_reduction", "layer_stats",
    "final_signature_bits", "disabled_layers",
    "speedup", "signature_fraction", "baseline_cycles", "mercury_cycles",
    "elapsed_s",
})

# Dataset scales: "tiny" keeps a point under a second (smoke tests and
# CI), "small" matches the benchmark harness, "paper" the integration
# scale.  Image sizes are chosen so every model's pooling pyramid stays
# valid at "small" and above; "tiny" suits the shallow models
# (squeezenet, mobilenet_v2, alexnet) and the transformer.
DATASET_SCALES = {
    "tiny": {"image": {"num_classes": 3, "samples_per_class": 8,
                       "image_size": 12},
             "text": {"num_samples": 48, "vocab_size": 32,
                      "sequence_length": 8}},
    "small": {"image": {"num_classes": 4, "samples_per_class": 12,
                        "image_size": 16},
              "text": {"num_samples": 96, "vocab_size": 64,
                       "sequence_length": 12}},
    "paper": {"image": {"num_classes": 4, "samples_per_class": 12,
                        "image_size": 32},
              "text": {"num_samples": 192, "vocab_size": 64,
                       "sequence_length": 12}},
}

# Adaptation policy variants (§III-D): which of the two mechanisms —
# signature-length growth and per-layer stoppage — are active.
ADAPTATION_POLICIES = {
    "full": {"adaptive_signature_length": True, "adaptive_stoppage": True},
    "no_growth": {"adaptive_signature_length": False,
                  "adaptive_stoppage": True},
    "no_stoppage": {"adaptive_signature_length": True,
                    "adaptive_stoppage": False},
    "off": {"adaptive_signature_length": False, "adaptive_stoppage": False},
}

# Sub-streams derived from a point's seed; every consumer of randomness
# gets its own stream so adding one never perturbs the others.
DATA_STREAM, MODEL_STREAM, SHUFFLE_STREAM, SPLIT_STREAM = 0, 1, 2, 3

# Minimum synthetic image size per CNN — deeper pooling pyramids shrink
# feature maps to nothing on smaller inputs (forward-probed per model;
# everything not listed is fine at the "tiny" scale's 12 pixels).
MIN_IMAGE_SIZE = {"alexnet": 32, "vgg13": 16, "vgg16": 16, "vgg19": 16}


@dataclass(frozen=True)
class FunctionalPoint:
    """One accuracy scenario: model x dataset x config x policy x seed."""

    model: str
    dataset_scale: str = "tiny"
    adaptation: str = "full"
    signature_bits: int = 20
    mcache_entries: int = 1024
    mcache_ways: int = 16
    mcache_backend: str = "vectorized"
    epochs: int = 2
    batch_size: int = 8
    learning_rate: float = 0.01
    optimizer: str = "adam"
    seed: int = 0

    def __post_init__(self):
        if self.dataset_scale not in DATASET_SCALES:
            raise ValueError(f"unknown dataset_scale {self.dataset_scale!r}; "
                             f"choose from {sorted(DATASET_SCALES)}")
        if self.adaptation not in ADAPTATION_POLICIES:
            raise ValueError(f"unknown adaptation {self.adaptation!r}; "
                             f"choose from {sorted(ADAPTATION_POLICIES)}")
        if self.seed < 0:
            # SeedSequence rejects negative entropy; fail at grid-build
            # time instead of deep inside a pool worker.
            raise ValueError("seed must be non-negative")
        spec = get_spec(self.model)  # also rejects unknown models early
        if spec.kind == "cnn":
            image_size = DATASET_SCALES[self.dataset_scale]["image"][
                "image_size"]
            needed = MIN_IMAGE_SIZE.get(self.model, 12)
            if image_size < needed:
                raise ValueError(
                    f"{self.model} needs images of at least {needed}px "
                    f"but dataset_scale {self.dataset_scale!r} provides "
                    f"{image_size}px; pick a larger scale")


def build_functional_grid(models, dataset_scales=("tiny",),
                          adaptations=("full",), signature_bits=(20,),
                          organizations=((1024, 16),), seeds=(0,),
                          **training) -> list[FunctionalPoint]:
    """Cross product of the functional scenario axes.

    Extra keyword arguments (``epochs``, ``batch_size``, ...) are passed
    through to every point unchanged.
    """
    combos = expand_grid({"model": models, "dataset_scale": dataset_scales,
                          "adaptation": adaptations,
                          "organization": organizations,
                          "signature_bits": signature_bits, "seed": seeds})
    return [FunctionalPoint(model=combo["model"],
                            dataset_scale=combo["dataset_scale"],
                            adaptation=combo["adaptation"],
                            mcache_entries=combo["organization"][0],
                            mcache_ways=combo["organization"][1],
                            signature_bits=combo["signature_bits"],
                            seed=combo["seed"], **training)
            for combo in combos]


# ----------------------------------------------------------------------
# Seed plumbing: a FunctionalPoint fully determines its run.
# ----------------------------------------------------------------------
def derive_seed(seed: int, stream: int) -> int:
    """Deterministic, well-mixed sub-seed for one randomness consumer.

    Routed through :class:`numpy.random.SeedSequence` so neighbouring
    base seeds do not produce correlated data/model/shuffle streams.
    """
    return int(np.random.SeedSequence([seed, stream]).generate_state(1)[0])


def mercury_config_for(point: FunctionalPoint) -> MercuryConfig:
    """The MercuryConfig variant a point describes.

    Signature lengths beyond the default 64-bit cap raise the cap too,
    so >62-bit (multi-word) scenarios can be swept directly.
    """
    return MercuryConfig(signature_bits=point.signature_bits,
                         max_signature_bits=max(64, point.signature_bits),
                         mcache_entries=point.mcache_entries,
                         mcache_ways=point.mcache_ways,
                         mcache_backend=point.mcache_backend,
                         **ADAPTATION_POLICIES[point.adaptation])


def training_config_for(point: FunctionalPoint) -> TrainingConfig:
    """The training hyper-parameters, with the shuffle stream seeded."""
    return TrainingConfig(epochs=point.epochs, batch_size=point.batch_size,
                          learning_rate=point.learning_rate,
                          optimizer=point.optimizer,
                          seed=derive_seed(point.seed, SHUFFLE_STREAM))


def load_point_data(point: FunctionalPoint):
    """Generate and split the point's dataset.

    Returns ``(train_x, train_y, test_x, test_y, num_outputs)`` where
    ``num_outputs`` is the class count (CNN) or vocabulary size
    (transformer).  Deterministic in the point alone.
    """
    scale = DATASET_SCALES[point.dataset_scale]
    data_seed = derive_seed(point.seed, DATA_STREAM)
    kind = get_spec(point.model).kind
    if kind == "cnn":
        config = ImageDatasetConfig(seed=data_seed, **scale["image"])
        dataset = ClusteredImageDataset(config)
        inputs, targets = dataset.images, dataset.labels
        num_outputs = config.num_classes
    else:
        config = TranslationConfig(seed=data_seed, **scale["text"])
        dataset = TranslationDataset(config)
        inputs, targets = dataset.sources, dataset.targets
        num_outputs = config.vocab_size
    split = train_test_split(inputs, targets, test_fraction=0.25,
                             seed=derive_seed(point.seed, SPLIT_STREAM))
    return (*split, num_outputs)


def train_point(point: FunctionalPoint, engine, data=None):
    """One end-to-end training run of a point with the given engine.

    Every source of randomness — dataset generation, the train/test
    split, weight initialisation, minibatch shuffling — is re-derived
    from ``point.seed``, so two calls with equivalent engines are
    bit-identical and a baseline/reuse pair sees the same data order.
    ``data`` accepts a preloaded :func:`load_point_data` tuple so the
    pair can share one dataset.  Validation accuracy is computed
    exactly (the trainer detaches the engine while evaluating).
    """
    xtr, ytr, xte, yte, num_outputs = data or load_point_data(point)
    model = build_model(point.model, num_classes=num_outputs,
                        seed=derive_seed(point.seed, MODEL_STREAM))
    trainer = Trainer(model, training_config_for(point), engine=engine)
    result = trainer.fit(xtr, ytr, validation=(xte, yte))
    return result, model


def _layer_stats_rows(stats) -> list[dict]:
    """JSON-safe per-(layer, phase) reuse statistics."""
    return [{"layer": record.layer, "phase": record.phase,
             "vectors": int(record.total_vectors), "hits": int(record.hits),
             "mau": int(record.mau), "mnu": int(record.mnu),
             "hit_fraction": float(record.hit_fraction),
             "detection_on": bool(record.similarity_detection_on)}
            for record in stats.all_records()]


# ----------------------------------------------------------------------
# Baseline memoization: the exact (ExactCountingEngine) run of a point
# never depends on the MercuryConfig axes (signature bits, MCACHE
# organisation, backend, adaptation policy), so one baseline training is
# shared by every config variant in a grid.  The key is derived as
# *every other* FunctionalPoint field, so a future training-affecting
# field fails closed (extra baseline groups) instead of silently
# sharing a wrong baseline.
# ----------------------------------------------------------------------
MERCURY_AXIS_FIELDS = frozenset({"adaptation", "signature_bits",
                                 "mcache_entries", "mcache_ways",
                                 "mcache_backend"})
BASELINE_KEY_FIELDS = tuple(
    field_.name for field_ in dataclasses.fields(FunctionalPoint)
    if field_.name not in MERCURY_AXIS_FIELDS)


def baseline_key(point: FunctionalPoint) -> tuple:
    """The (model, dataset scale, training config, seed) group of a point."""
    return tuple(getattr(point, name) for name in BASELINE_KEY_FIELDS)


def evaluate_baseline_point(point: FunctionalPoint) -> dict:
    """Train only the exact baseline of a point; returns a JSON-safe
    :meth:`~repro.training.TrainingResult.to_dict` payload.

    This is the single place baseline training happens in a shared
    sweep, which the invocation-counting test relies on.
    """
    data = load_point_data(point)
    baseline_result, _ = train_point(point, ExactCountingEngine(), data)
    return baseline_result.to_dict()


def evaluate_functional_point(point: FunctionalPoint,
                              baseline: dict | None = None) -> dict:
    """Train the baseline/reuse pair for one point; returns a result row.

    ``baseline`` accepts a memoized :func:`evaluate_baseline_point`
    payload; training runs are deterministic in the point's baseline
    key, so reusing the payload is bit-identical to retraining and the
    pair degenerates to a single reuse run.
    """
    start = time.perf_counter()
    config = mercury_config_for(point)

    data = load_point_data(point)
    if baseline is None:
        baseline_result, _ = train_point(point, ExactCountingEngine(), data)
    else:
        baseline_result = TrainingResult.from_dict(baseline)
    engine = ReuseEngine(config)
    reuse_result, _ = train_point(point, engine, data)

    # The recorded workload, costed on the accelerator model: the
    # engine's own adaptation already shaped the statistics, so no
    # analytic stoppage is re-applied — the row reports what this run
    # actually did.
    report = MercurySimulator(config).simulate(engine.stats, point.model)

    row = point_row(point, {
        "baseline_accuracy": float(baseline_result.final_validation_accuracy),
        "reuse_accuracy": float(reuse_result.final_validation_accuracy),
        "accuracy_delta": float(reuse_result.final_validation_accuracy
                                - baseline_result.final_validation_accuracy),
        "baseline_losses": [float(v) for v in baseline_result.epoch_losses],
        "reuse_losses": [float(v) for v in reuse_result.epoch_losses],
        "baseline_final_loss": float(baseline_result.final_loss),
        "reuse_final_loss": float(reuse_result.final_loss),
        "hit_fraction": float(engine.stats.overall_hit_fraction),
        "mac_reduction": float(engine.stats.mac_reduction()),
        "layer_stats": _layer_stats_rows(engine.stats),
        "final_signature_bits": int(engine.signature_bits),
        "disabled_layers": sorted(engine.disabled_layers()),
        "speedup": float(report.speedup),
        "signature_fraction": float(report.signature_fraction),
        "baseline_cycles": float(report.baseline_total_cycles),
        "mercury_cycles": float(report.mercury_total_cycles),
    }, started=start)
    return row


@dataclass
class FunctionalSweepResults(GridResults):
    """Aggregated functional rows; same JSON envelope as the cycle sweep."""

    schema: ClassVar[str] = "functional-sweep"
    result_keys: ClassVar[frozenset] = FUNCTIONAL_RESULT_KEYS

    # -- summaries ------------------------------------------------------
    def accuracy_delta_by_model(self) -> dict[str, float]:
        """Mean reuse-minus-baseline accuracy delta per model."""
        deltas: dict[str, list[float]] = {}
        for row in self.rows:
            deltas.setdefault(row["model"], []).append(row["accuracy_delta"])
        return {model: float(np.mean(values))
                for model, values in deltas.items()}

    def worst_accuracy_delta(self) -> float:
        """The most negative accuracy delta in the sweep."""
        if not self.rows:
            raise ValueError("no rows")
        return float(min(row["accuracy_delta"] for row in self.rows))

    def summary(self) -> dict:
        """Accuracy impact and modeled speedup across the grid."""
        return {
            **self.base_summary(),
            "geomean_speedup": self.geomean("speedup"),
            "mean_accuracy_delta": float(np.mean(
                [row["accuracy_delta"] for row in self.rows])),
            "worst_accuracy_delta": self.worst_accuracy_delta(),
            "accuracy_delta_by_model": self.accuracy_delta_by_model(),
            "mean_hit_fraction": float(np.mean(
                [row["hit_fraction"] for row in self.rows])),
        }


def _evaluate_with_shared_baseline(task) -> dict:
    """Pool-friendly wrapper: ``task`` is ``(point, baseline_payload)``."""
    point, baseline = task
    return evaluate_functional_point(point, baseline=baseline)


def run_functional_sweep(points, processes: int | None = None,
                         share_baselines: bool = True
                         ) -> FunctionalSweepResults:
    """Evaluate a functional grid, fanning out like the cycle sweep.

    With ``share_baselines`` (the default) the exact baseline is trained
    once per :func:`baseline_key` group — one run shared by all
    MercuryConfig/adaptation variants of the same (model, dataset scale,
    training config, seed) — instead of once per point; every result
    field is bit-identical either way except ``elapsed_s``, which is a
    wall-clock measurement and therefore excludes the memoized baseline
    training in shared mode.  ``share_baselines=False`` restores the
    paired-run-per-point behaviour (the perf suite times the two
    against each other).
    """
    points = list(points)
    if not share_baselines:
        rows, elapsed = run_grid(points, evaluate_functional_point,
                                 processes=processes)
        return FunctionalSweepResults(rows=rows, elapsed_s=elapsed)

    start = time.perf_counter()
    representatives: dict[tuple, FunctionalPoint] = {}
    for point in points:
        representatives.setdefault(baseline_key(point), point)
    baseline_rows, _ = run_grid(list(representatives.values()),
                                evaluate_baseline_point,
                                processes=processes)
    baselines = dict(zip(representatives.keys(), baseline_rows))
    tasks = [(point, baselines[baseline_key(point)]) for point in points]
    rows, _ = run_grid(tasks, _evaluate_with_shared_baseline,
                       processes=processes)
    return FunctionalSweepResults(rows=rows,
                                  elapsed_s=time.perf_counter() - start)
