"""Run a functional (training-accuracy) sweep over real training runs.

Every grid point trains its model twice with identical seeds and data
order — once exactly, once through the MERCURY reuse engine — and the
rows record the accuracy delta, loss trajectories, reuse statistics and
the modeled speedup.  The grid fans out over a multiprocessing pool and
all rows are written to a JSON file in the same schema family as
``examples/sweep_all.py``.

    python examples/functional_sweep.py
    python examples/functional_sweep.py --models squeezenet transformer \
        --signature-bits 12 20 --adaptations full off \
        --scale tiny --epochs 2 --processes 4 --output functional.json
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.analysis.functional_sweep import (
    ADAPTATION_POLICIES,
    DATASET_SCALES,
    build_functional_grid,
    run_functional_sweep,
)
from repro.models import MODEL_NAMES

# Small models (and the transformer) train in well under a second per
# point at the "tiny" scale, so they are the defaults; any model zoo
# entry can be swept at the "small"/"paper" scales.
DEFAULT_MODELS = ("squeezenet", "transformer")


def parse_organization(text: str) -> tuple[int, int]:
    """Parse an ``ENTRIESxWAYS`` spec such as ``1024x16``."""
    try:
        entries, ways = (int(part) for part in text.lower().split("x"))
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"expected ENTRIESxWAYS (e.g. 1024x16), got {text!r}") from error
    if entries <= 0 or ways <= 0 or entries % ways != 0:
        raise argparse.ArgumentTypeError(
            f"entries must be a positive multiple of ways, got {text!r}")
    return entries, ways


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS),
                        choices=list(MODEL_NAMES), metavar="MODEL")
    parser.add_argument("--scale", dest="scales", nargs="+", default=["tiny"],
                        choices=sorted(DATASET_SCALES), metavar="SCALE")
    parser.add_argument("--adaptations", nargs="+", default=["full"],
                        choices=sorted(ADAPTATION_POLICIES),
                        metavar="POLICY")
    parser.add_argument("--signature-bits", nargs="+", type=int,
                        default=[12, 20])
    parser.add_argument("--organizations", nargs="+",
                        type=parse_organization, default=[(1024, 16)],
                        metavar="ENTRIESxWAYS")
    parser.add_argument("--seeds", nargs="+", type=int, default=[0])
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (0 = run in-process)")
    parser.add_argument("--output", default="functional_results.json")
    args = parser.parse_args(argv)

    points = build_functional_grid(args.models, dataset_scales=args.scales,
                                   adaptations=args.adaptations,
                                   signature_bits=args.signature_bits,
                                   organizations=args.organizations,
                                   seeds=args.seeds, epochs=args.epochs,
                                   batch_size=args.batch_size)
    print(f"Training {len(points)} functional scenarios "
          f"({len(args.models)} models x {len(args.scales)} scales x "
          f"{len(args.adaptations)} policies x "
          f"{len(args.signature_bits)} signature lengths x "
          f"{len(args.organizations)} MCACHE organisations x "
          f"{len(args.seeds)} seeds; two runs each)...")
    results = run_functional_sweep(points, processes=args.processes)

    rows = [[row["model"], row["adaptation"], row["signature_bits"],
             row["baseline_accuracy"], row["reuse_accuracy"],
             row["accuracy_delta"], row["hit_fraction"], row["speedup"]]
            for row in results.rows]
    print(format_table(["model", "policy", "bits", "base acc", "reuse acc",
                        "delta", "hit frac", "speedup"], rows, "{:.3f}"))

    summary = results.summary()
    print(f"\n{summary['points']} points in {summary['elapsed_s']:.2f}s")
    print(f"Geomean modeled speedup: {summary['geomean_speedup']:.2f}x")
    print(f"Mean accuracy delta: {summary['mean_accuracy_delta']:+.4f} "
          f"(worst {summary['worst_accuracy_delta']:+.4f})")
    for model, delta in summary["accuracy_delta_by_model"].items():
        print(f"  {model:>14}: {delta:+.4f}")

    results.save(args.output)
    print(f"\nWrote {len(results)} rows to {args.output}")


if __name__ == "__main__":
    main()
