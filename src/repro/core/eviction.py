"""Replacement policies for persistent reuse sessions.

The paper's MCACHE has **no replacement**: a signature whose set is full
is computed every time (MNU).  That is the right model for training —
batches are single-use and the cache is flash-cleared per layer — but a
long-running serving cache under skewed traffic needs real eviction, or
cold keys squat on their lines forever.  This module provides the three
replacement policies the serving stack exposes through the
``SessionPolicy.eviction`` axis:

* ``lru`` — evict the least-recently-*probed* line of the full set;
* ``lfu`` — evict the lowest-frequency line (frequency counts the rows
  that probed the line since it claimed its way); ties break
  deterministically toward the least recently probed line;
* ``slru`` — segmented LRU: fresh inserts enter a *probation* segment,
  a probation hit promotes the line to a *protected* segment (bounded
  at ``ways // 2`` lines per set; overflow demotes the protected LRU
  line back to probation), and victims come from probation first.
  One-hit wonders therefore cannot displace proven-hot lines.

Two implementations per policy, same API:

* the **fast** structures (:class:`LRUEviction`, :class:`LFUEviction`,
  :class:`SLRUEviction`) keep per-set intrusive doubly-linked recency
  lists as dense ``(set, way)`` arrays — O(1) touch/insert/replace and
  O(ways) victim selection, no per-line Python objects — matching the
  dense-array design of :class:`~repro.core.mcache_vec.VectorizedMCache`;
* the **reference** implementations (:class:`ReferenceLRU`,
  :class:`ReferenceLFU`, :class:`ReferenceSLRU`) model each set as a
  plain Python list ordered LRU→MRU.  They are the differential oracle:
  ``tests/test_eviction_properties.py`` replays randomized traces
  through both and asserts identical victims and identical serialized
  state.

All state serializes to plain integer arrays (recency ranks, segment
membership, frequencies) in canonical ``(set, way)`` layout, so a
snapshot→restore round trip is byte-identical and restored sessions
evict exactly as the donor would have.
"""

from __future__ import annotations

import numpy as np

#: The ``SessionPolicy.eviction`` axis.  ``none`` is the paper's
#: no-replacement semantics (the default, bit-identical to the
#: pre-eviction code path).
EVICTION_POLICIES = ("none", "lru", "lfu", "slru")


# ----------------------------------------------------------------------
# Fast structures: intrusive per-set recency lists over dense arrays
# ----------------------------------------------------------------------
class _IntrusiveList:
    """Per-set doubly-linked recency lists over the ``(set, way)`` grid.

    Head is the most recently used way of a set, tail the least.  Every
    operation is O(1); ranks (position from head) are only materialised
    for snapshots.
    """

    def __init__(self, num_sets: int, ways: int):
        self.num_sets = num_sets
        self.ways = ways
        self._prev = np.full((num_sets, ways), -1, dtype=np.int64)
        self._next = np.full((num_sets, ways), -1, dtype=np.int64)
        self._head = np.full(num_sets, -1, dtype=np.int64)
        self._tail = np.full(num_sets, -1, dtype=np.int64)
        self._linked = np.zeros((num_sets, ways), dtype=bool)
        self.count = np.zeros(num_sets, dtype=np.int64)

    def contains(self, s: int, w: int) -> bool:
        return bool(self._linked[s, w])

    def push_front(self, s: int, w: int) -> None:
        head = self._head[s]
        self._prev[s, w] = -1
        self._next[s, w] = head
        if head >= 0:
            self._prev[s, head] = w
        else:
            self._tail[s] = w
        self._head[s] = w
        self._linked[s, w] = True
        self.count[s] += 1

    def unlink(self, s: int, w: int) -> None:
        before, after = self._prev[s, w], self._next[s, w]
        if before >= 0:
            self._next[s, before] = after
        else:
            self._head[s] = after
        if after >= 0:
            self._prev[s, after] = before
        else:
            self._tail[s] = before
        self._prev[s, w] = -1
        self._next[s, w] = -1
        self._linked[s, w] = False
        self.count[s] -= 1

    def move_front(self, s: int, w: int) -> None:
        if self._head[s] == w:
            return
        self.unlink(s, w)
        self.push_front(s, w)

    def tail_way(self, s: int) -> int:
        return int(self._tail[s])

    def walk_from_tail(self, s: int):
        w = self._tail[s]
        while w >= 0:
            yield int(w)
            w = self._prev[s, w]

    def ranks(self) -> np.ndarray:
        """Position from head (MRU = 0) per linked way; -1 if unlinked."""
        out = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        for s in range(self.num_sets):
            w, rank = self._head[s], 0
            while w >= 0:
                out[s, w] = rank
                rank += 1
                w = self._next[s, w]
        return out

    def load_ranks(self, ranks: np.ndarray) -> None:
        """Rebuild the lists from a :meth:`ranks` array."""
        self.__init__(self.num_sets, self.ways)
        ranks = np.asarray(ranks, dtype=np.int64)
        for s in range(self.num_sets):
            linked = np.flatnonzero(ranks[s] >= 0)
            # Push in descending rank order so rank 0 ends up at head.
            for w in linked[np.argsort(-ranks[s][linked], kind="stable")]:
                self.push_front(s, int(w))


class LRUEviction:
    """O(1) intrusive least-recently-probed replacement."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        self._list = _IntrusiveList(num_sets, ways)

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._list.push_front(s, w)

    def touch(self, s: int, w: int, count: int = 1) -> None:
        self._list.move_front(s, w)

    def replace(self, s: int, w: int, count: int = 1) -> None:
        # The victim's way now holds a fresh line: treat as a new MRU.
        self._list.move_front(s, w)

    def victim(self, s: int) -> int:
        return self._list.tail_way(s)

    def state_arrays(self) -> dict:
        return {"ev_rank": self._list.ranks()}

    def load_state_arrays(self, arrays: dict) -> None:
        self._list.load_ranks(arrays["ev_rank"])

    def clear(self) -> None:
        self._list = _IntrusiveList(self._list.num_sets, self._list.ways)


class LFUEviction:
    """Lowest-frequency replacement with least-recent tiebreak.

    Frequency counts probed *rows* (a batch with five rows of one
    signature adds five), so it tracks demand, not batch count.  Ties
    break toward the least recently probed line — walking the recency
    list tail→head and keeping the first strictly-smaller frequency
    makes the choice deterministic for any trace.
    """

    name = "lfu"

    def __init__(self, num_sets: int, ways: int):
        self._list = _IntrusiveList(num_sets, ways)
        self._freq = np.zeros((num_sets, ways), dtype=np.int64)

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._freq[s, w] = count
        self._list.push_front(s, w)

    def touch(self, s: int, w: int, count: int = 1) -> None:
        self._freq[s, w] += count
        self._list.move_front(s, w)

    def replace(self, s: int, w: int, count: int = 1) -> None:
        self._freq[s, w] = count
        self._list.move_front(s, w)

    def victim(self, s: int) -> int:
        best_way, best = -1, None
        for w in self._list.walk_from_tail(s):
            if best is None or self._freq[s, w] < best:
                best_way, best = w, int(self._freq[s, w])
        return best_way

    def state_arrays(self) -> dict:
        return {"ev_rank": self._list.ranks(), "ev_freq": self._freq.copy()}

    def load_state_arrays(self, arrays: dict) -> None:
        self._list.load_ranks(arrays["ev_rank"])
        self._freq = np.asarray(arrays["ev_freq"], dtype=np.int64).copy()

    def clear(self) -> None:
        num_sets, ways = self._freq.shape
        self.__init__(num_sets, ways)


class SLRUEviction:
    """Segmented LRU: probation + protected segments per set.

    Protected capacity is ``ways // 2`` lines per set (0 for
    direct-mapped sets, which degenerates to plain LRU).  Promotion is
    monotone: a line's own probe never moves it from protected back to
    probation — demotion only happens to the protected LRU line when a
    *different* line's promotion overflows the segment.
    """

    name = "slru"

    def __init__(self, num_sets: int, ways: int):
        self.protected_capacity = ways // 2
        self._probation = _IntrusiveList(num_sets, ways)
        self._protected = _IntrusiveList(num_sets, ways)
        # 0 = probation, 1 = protected; meaningful for linked ways only.
        self._segment = np.zeros((num_sets, ways), dtype=np.int8)

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._segment[s, w] = 0
        self._probation.push_front(s, w)

    def touch(self, s: int, w: int, count: int = 1) -> None:
        if self._segment[s, w] == 1:
            self._protected.move_front(s, w)
            return
        if self.protected_capacity == 0:
            self._probation.move_front(s, w)
            return
        self._probation.unlink(s, w)
        self._protected.push_front(s, w)
        self._segment[s, w] = 1
        if self._protected.count[s] > self.protected_capacity:
            demoted = self._protected.tail_way(s)
            self._protected.unlink(s, demoted)
            self._probation.push_front(s, demoted)
            self._segment[s, demoted] = 0

    def replace(self, s: int, w: int, count: int = 1) -> None:
        if self._segment[s, w] == 1:
            self._protected.unlink(s, w)
        else:
            self._probation.unlink(s, w)
        self.insert(s, w, count)

    def victim(self, s: int) -> int:
        w = self._probation.tail_way(s)
        return w if w >= 0 else self._protected.tail_way(s)

    def state_arrays(self) -> dict:
        # Rank is within the way's own segment list; segment says which.
        rank = self._probation.ranks()
        protected_rank = self._protected.ranks()
        merged = np.where(protected_rank >= 0, protected_rank, rank)
        return {"ev_rank": merged, "ev_segment": self._segment.copy()}

    def load_state_arrays(self, arrays: dict) -> None:
        segment = np.asarray(arrays["ev_segment"], dtype=np.int8)
        rank = np.asarray(arrays["ev_rank"], dtype=np.int64)
        self._probation.load_ranks(np.where(segment == 0, rank, -1))
        self._protected.load_ranks(np.where(segment == 1, rank, -1))
        self._segment = segment.copy()

    def clear(self) -> None:
        self.__init__(self._probation.num_sets, self._probation.ways)


# ----------------------------------------------------------------------
# Reference implementations — the differential oracle
# ----------------------------------------------------------------------
class ReferenceLRU:
    """Each set is a plain list of ways, LRU first / MRU last."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        self.num_sets, self.ways = num_sets, ways
        self._order: list[list[int]] = [[] for _ in range(num_sets)]

    def _to_front(self, s: int, w: int) -> None:
        if w in self._order[s]:
            self._order[s].remove(w)
        self._order[s].append(w)

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._to_front(s, w)

    touch = insert
    replace = insert

    def victim(self, s: int) -> int:
        return self._order[s][0] if self._order[s] else -1

    def state_arrays(self) -> dict:
        rank = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        for s, order in enumerate(self._order):
            for position, w in enumerate(reversed(order)):
                rank[s, w] = position
        return {"ev_rank": rank}

    def load_state_arrays(self, arrays: dict) -> None:
        rank = np.asarray(arrays["ev_rank"], dtype=np.int64)
        self._order = [[] for _ in range(self.num_sets)]
        for s in range(self.num_sets):
            linked = np.flatnonzero(rank[s] >= 0)
            ordered = linked[np.argsort(rank[s][linked], kind="stable")]
            self._order[s] = [int(w) for w in reversed(ordered)]

    def clear(self) -> None:
        self._order = [[] for _ in range(self.num_sets)]


class ReferenceLFU(ReferenceLRU):
    """Frequency counters over the reference recency lists."""

    name = "lfu"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._freq = np.zeros((num_sets, ways), dtype=np.int64)

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._freq[s, w] = count
        self._to_front(s, w)

    def touch(self, s: int, w: int, count: int = 1) -> None:
        self._freq[s, w] += count
        self._to_front(s, w)

    replace = insert

    def victim(self, s: int) -> int:
        best_way, best = -1, None
        for w in self._order[s]:  # LRU first: earliest wins ties
            if best is None or self._freq[s, w] < best:
                best_way, best = w, int(self._freq[s, w])
        return best_way

    def state_arrays(self) -> dict:
        arrays = super().state_arrays()
        arrays["ev_freq"] = self._freq.copy()
        return arrays

    def load_state_arrays(self, arrays: dict) -> None:
        super().load_state_arrays(arrays)
        self._freq = np.asarray(arrays["ev_freq"], dtype=np.int64).copy()

    def clear(self) -> None:
        super().clear()
        self._freq[:] = 0


class ReferenceSLRU:
    """Probation/protected segments as plain lists, LRU first."""

    name = "slru"

    def __init__(self, num_sets: int, ways: int):
        self.num_sets, self.ways = num_sets, ways
        self.protected_capacity = ways // 2
        self._probation: list[list[int]] = [[] for _ in range(num_sets)]
        self._protected: list[list[int]] = [[] for _ in range(num_sets)]

    def insert(self, s: int, w: int, count: int = 1) -> None:
        self._probation[s].append(w)

    def touch(self, s: int, w: int, count: int = 1) -> None:
        if w in self._protected[s]:
            self._protected[s].remove(w)
            self._protected[s].append(w)
            return
        if self.protected_capacity == 0:
            self._probation[s].remove(w)
            self._probation[s].append(w)
            return
        self._probation[s].remove(w)
        self._protected[s].append(w)
        if len(self._protected[s]) > self.protected_capacity:
            self._probation[s].append(self._protected[s].pop(0))

    def replace(self, s: int, w: int, count: int = 1) -> None:
        if w in self._protected[s]:
            self._protected[s].remove(w)
        if w in self._probation[s]:
            self._probation[s].remove(w)
        self._probation[s].append(w)

    def victim(self, s: int) -> int:
        if self._probation[s]:
            return self._probation[s][0]
        return self._protected[s][0] if self._protected[s] else -1

    def segment_of(self, s: int, w: int) -> int:
        return 1 if w in self._protected[s] else 0

    def state_arrays(self) -> dict:
        rank = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        segment = np.zeros((self.num_sets, self.ways), dtype=np.int8)
        for s in range(self.num_sets):
            for position, w in enumerate(reversed(self._probation[s])):
                rank[s, w] = position
            for position, w in enumerate(reversed(self._protected[s])):
                rank[s, w] = position
                segment[s, w] = 1
        return {"ev_rank": rank, "ev_segment": segment}

    def load_state_arrays(self, arrays: dict) -> None:
        rank = np.asarray(arrays["ev_rank"], dtype=np.int64)
        segment = np.asarray(arrays["ev_segment"], dtype=np.int8)
        self._probation = [[] for _ in range(self.num_sets)]
        self._protected = [[] for _ in range(self.num_sets)]
        for s in range(self.num_sets):
            for target, member in ((self._probation, 0),
                                   (self._protected, 1)):
                linked = np.flatnonzero((rank[s] >= 0)
                                        & (segment[s] == member))
                ordered = linked[np.argsort(rank[s][linked], kind="stable")]
                target[s] = [int(w) for w in reversed(ordered)]

    def clear(self) -> None:
        self.__init__(self.num_sets, self.ways)


_FAST = {"lru": LRUEviction, "lfu": LFUEviction, "slru": SLRUEviction}
_REFERENCE = {"lru": ReferenceLRU, "lfu": ReferenceLFU,
              "slru": ReferenceSLRU}


def build_eviction_state(policy: str, num_sets: int, ways: int,
                         reference: bool = False):
    """The replacement-state object for one eviction policy.

    ``None`` for ``"none"`` (the paper's no-replacement semantics);
    ``reference=True`` returns the differential-oracle implementation.
    """
    if policy == "none":
        return None
    if policy not in _FAST:
        raise ValueError(f"unknown eviction policy {policy!r}; "
                         f"choose from {EVICTION_POLICIES}")
    table = _REFERENCE if reference else _FAST
    return table[policy](num_sets, ways)
