"""Vectorised simulation of the signature phase.

The object-level :class:`~repro.core.mcache.MCache` models the hardware
structure line by line; probing it once per vector from Python is exact
but slow for the tens of thousands of vectors a convolution layer
produces.  ``simulate_hitmap`` reproduces the *same* HIT / MAU / MNU
decisions (the test suite checks equivalence against the line-level
model) using numpy group-by operations:

* the first occurrence of a signature whose set still has a free way is
  MAU and owns the cache line;
* later occurrences of an inserted signature are HIT and point at the
  owner;
* occurrences of a signature whose set was already full at its first
  occurrence are MNU (no replacement — Figure 9).

Signatures arrive either as a 1-D ``int64`` array or — beyond 62 bits —
as the multi-word ``(n_vectors, n_words)`` ``uint64`` representation
(:mod:`repro.core.rpq`); the multi-word path groups by lexicographic
row sort and stays fully vectorised.  Object arrays of exact Python
ints are still accepted and run through the sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hitmap import (CODE_TO_STATE, HIT_CODE, Hitmap, MAU_CODE,
                               MNU_CODE)
from repro.core.rpq import coerce_packed, unique_signatures, words_mod


@dataclass
class HitmapSimulation:
    """Outcome of the signature phase for one set of vectors.

    ``states`` carries the dense ``int8`` state codes
    (:data:`~repro.core.hitmap.HIT_CODE` = 0, ``MAU_CODE`` = 1,
    ``MNU_CODE`` = 2) — no Python enum objects on the hot path; the
    enum view is :meth:`state_objects` / :meth:`to_hitmap`.
    """

    states: np.ndarray          # int8 codes: HIT=0, MAU=1, MNU=2
    representative: np.ndarray  # int array; HIT rows point at their source
    hits: int
    mau: int
    mnu: int
    unique_signatures: int

    def state_objects(self) -> np.ndarray:
        """The user-facing enum view: an object array of ``HitState``."""
        return CODE_TO_STATE[self.states]

    def to_hitmap(self) -> Hitmap:
        """Materialise a :class:`Hitmap` without per-entry validation cost."""
        hitmap = Hitmap(len(self.states))
        hitmap._states = list(CODE_TO_STATE[self.states])
        hitmap._source = [int(src) if code == HIT_CODE else None
                          for code, src in zip(self.states.tolist(),
                                               self.representative.tolist())]
        return hitmap


def rank_within_groups(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal, pre-sorted keys.

    ``sorted_keys`` must be grouped (equal values adjacent); the result
    counts 0, 1, 2, ... within each run.  Shared by the stateless
    group-by simulation below and the batch MCACHE's insert competition
    (:mod:`repro.core.mcache_vec`) so the two stay structurally, not
    just observably, identical.
    """
    num_keys = len(sorted_keys)
    if num_keys == 0:
        return np.empty(0, dtype=np.int64)
    new_group = np.ones(num_keys, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_starts = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    return np.arange(num_keys) - group_starts[group_ids]


def signature_sets(unique_values: np.ndarray, num_sets: int) -> np.ndarray:
    """Cache-set index per unique signature, for either representation."""
    if unique_values.ndim == 2:
        return words_mod(unique_values, num_sets)
    return (unique_values % num_sets).astype(np.int64)


def simulate_hitmap(signatures: np.ndarray, num_sets: int,
                    ways: int) -> HitmapSimulation:
    """Classify every signature as HIT, MAU or MNU.

    Parameters
    ----------
    signatures:
        Packed signatures in arrival order: 1-D integers or the
        multi-word 2-D form.
    num_sets, ways:
        MCACHE geometry; insertion into a set stops once ``ways``
        distinct signatures have claimed its lines.
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("num_sets and ways must be positive")
    signatures = np.asarray(signatures)
    num_vectors = len(signatures)

    if num_vectors == 0:
        return HitmapSimulation(states=np.empty(0, dtype=np.int8),
                                representative=np.empty(0, dtype=np.int64),
                                hits=0, mau=0, mnu=0, unique_signatures=0)

    signatures, wide = coerce_packed(signatures)
    if signatures.ndim == 2:
        return _simulate_vectorised(signatures.astype(np.uint64, copy=False),
                                    num_sets, ways)
    if wide:
        # 1-D object array of exact ints: the sequential reference.
        return _simulate_sequential(signatures, num_sets, ways)
    return _simulate_vectorised(signatures, num_sets, ways)


def _classify_uniques(unique_sets: np.ndarray, first_index: np.ndarray,
                      inverse: np.ndarray, num_vectors: int,
                      ways: int) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                          np.ndarray]:
    """Shared classification core given a group-by of the batch.

    ``unique_sets`` names the cache set competed for by each unique
    signature (callers may offset it to model independent caches — the
    multi-group path); returns ``(hit_mask, mau_mask, mnu_mask,
    representative)`` over the ``num_vectors`` probes.
    """
    # Decide which unique signatures win a cache line: order them by
    # first occurrence and admit the first `ways` per set.  The
    # (set, arrival) order usually fuses into one integer key — one
    # unstable argsort (keys are distinct) instead of two stable ones.
    num_uniques = len(unique_sets)
    inserted_unique = np.empty(num_uniques, dtype=bool)
    max_set = int(unique_sets.max()) if num_uniques else 0
    if max_set < (2 ** 62) // max(num_vectors, 1):
        order = np.argsort(unique_sets.astype(np.int64) * num_vectors
                           + first_index)
        rank_within_set = rank_within_groups(unique_sets[order])
        inserted_unique[order] = rank_within_set < ways
    else:  # pragma: no cover — needs ~2^62 composite sets
        arrival_order = np.argsort(first_index, kind="stable")
        sets_in_arrival = unique_sets[arrival_order]
        by_set = np.argsort(sets_in_arrival, kind="stable")
        rank_within_set = rank_within_groups(sets_in_arrival[by_set])
        inserted_in_arrival = np.empty(num_uniques, dtype=bool)
        inserted_in_arrival[by_set] = rank_within_set < ways
        inserted_unique[arrival_order] = inserted_in_arrival

    is_first = np.zeros(num_vectors, dtype=bool)
    is_first[first_index] = True
    vector_inserted = inserted_unique[inverse]

    hit_mask = vector_inserted & ~is_first
    mau_mask = vector_inserted & is_first
    mnu_mask = ~vector_inserted

    representative = np.arange(num_vectors, dtype=np.int64)
    representative[hit_mask] = first_index[inverse[hit_mask]]
    return hit_mask, mau_mask, mnu_mask, representative


def _masks_to_codes(hit_mask: np.ndarray,
                    mau_mask: np.ndarray) -> np.ndarray:
    codes = np.full(len(hit_mask), MNU_CODE, dtype=np.int8)
    codes[hit_mask] = HIT_CODE
    codes[mau_mask] = MAU_CODE
    return codes


def _simulate_vectorised(signatures: np.ndarray, num_sets: int,
                         ways: int) -> HitmapSimulation:
    """numpy group-by implementation for either packed representation."""
    num_vectors = len(signatures)
    unique_values, first_index, inverse = unique_signatures(signatures)
    unique_sets = signature_sets(unique_values, num_sets)
    hit_mask, mau_mask, mnu_mask, representative = _classify_uniques(
        unique_sets, first_index, inverse, num_vectors, ways)

    return HitmapSimulation(states=_masks_to_codes(hit_mask, mau_mask),
                            representative=representative,
                            hits=int(hit_mask.sum()), mau=int(mau_mask.sum()),
                            mnu=int(mnu_mask.sum()),
                            unique_signatures=len(unique_values))


def simulate_hitmap_grouped(signatures, group_sizes, num_sets: int,
                            ways: int,
                            signature_bits: int | None = None
                            ) -> list[HitmapSimulation]:
    """Per-group Hitmaps for a concatenation of signature batches.

    Bit-identical to calling :func:`simulate_hitmap` once per group —
    each group is classified against its own fresh MCACHE — but the
    group-by runs once over the whole concatenation: group ``g``'s
    signatures compete only for composite sets ``g * num_sets + set``,
    so no signature can hit, or steal a way from, another group.  This
    is the batched signature phase behind the reuse engine's
    ``conv_channel_group`` path, where per-call overhead used to
    dominate (one engine call per input channel).

    ``signatures`` holds the groups back to back in arrival order (1-D
    int64 or the multi-word 2-D form); ``group_sizes`` their lengths.
    Representative indices in each returned simulation are local to the
    group, exactly as the per-call path produces them.

    ``signature_bits``, when the caller knows every signature fits that
    many bits, lets the composite (group, signature) key fuse into one
    int64 — a single ``np.unique`` sort instead of a two-column
    lexicographic sort, the difference between this path beating and
    trailing the per-call loop at high group counts.
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("num_sets and ways must be positive")
    group_sizes = [int(size) for size in group_sizes]
    if any(size < 0 for size in group_sizes):
        raise ValueError("group sizes must be non-negative")
    signatures = np.asarray(signatures)
    num_vectors = len(signatures)
    if sum(group_sizes) != num_vectors:
        raise ValueError("group sizes must sum to the number of signatures")

    starts = np.concatenate([[0], np.cumsum(group_sizes)]).astype(np.int64)

    signatures, wide = coerce_packed(signatures)
    if wide and signatures.ndim == 1:
        # Object array of exact ints: per-group sequential reference.
        return [_simulate_sequential(signatures[starts[g]:starts[g + 1]],
                                     num_sets, ways)
                for g in range(len(group_sizes))]
    if signatures.ndim == 1 and num_vectors and (signatures < 0).any():
        # Negative signatures have no unsigned composite representation;
        # per-group classification is still exact.
        return [simulate_hitmap(signatures[starts[g]:starts[g + 1]],
                                num_sets, ways)
                for g in range(len(group_sizes))]

    num_groups = len(group_sizes)
    fused_bits = None
    if (signatures.ndim == 1 and signature_bits is not None
            and signature_bits + max(num_groups - 1, 0).bit_length() <= 62
            and (num_vectors == 0
                 or int(signatures.max()) < (1 << signature_bits))):
        fused_bits = int(signature_bits)

    if fused_bits is not None:
        # Fused single-key path: (group << bits) | signature is unique
        # per (group, signature) pair and sorts group-major, so one
        # int64 np.unique replaces the two-column lexsort.
        group_ids = np.repeat(np.arange(num_groups, dtype=np.int64),
                              group_sizes)
        fused = (group_ids << fused_bits) | signatures
        unique_values, first_index, inverse = unique_signatures(fused)
        unique_groups = unique_values >> fused_bits
        unique_sets = signature_sets(
            unique_values & ((np.int64(1) << fused_bits) - 1), num_sets)
    else:
        group_ids = np.repeat(np.arange(num_groups, dtype=np.uint64),
                              group_sizes)
        if signatures.ndim == 2:
            composite = np.hstack([group_ids[:, None],
                                   signatures.astype(np.uint64, copy=False)])
        else:
            composite = np.stack([group_ids,
                                  signatures.astype(np.uint64)], axis=1)
        unique_values, first_index, inverse = unique_signatures(composite)
        unique_groups = unique_values[:, 0].astype(np.int64)
        unique_sets = signature_sets(
            unique_values[:, 1] if unique_values.shape[1] == 2
            else unique_values[:, 1:], num_sets)
    # The cache set is derived from the signature alone (exactly the
    # single-group rule), then offset per group so groups never share a
    # set: per-group fresh-MCACHE semantics inside one group-by.
    composite_sets = unique_groups * num_sets + unique_sets

    hit_mask, mau_mask, mnu_mask, representative = _classify_uniques(
        composite_sets, first_index, inverse, num_vectors, ways)
    states = _masks_to_codes(hit_mask, mau_mask)
    unique_per_group = np.bincount(unique_groups,
                                   minlength=len(group_sizes))
    # Per-group state counts in three bincounts over the row group ids
    # instead of three slice reductions per group.
    row_groups = group_ids.astype(np.int64, copy=False)
    hits_per_group = np.bincount(row_groups[hit_mask],
                                 minlength=num_groups)
    mau_per_group = np.bincount(row_groups[mau_mask],
                                minlength=num_groups)
    mnu_per_group = np.bincount(row_groups[mnu_mask],
                                minlength=num_groups)

    simulations = []
    for group in range(len(group_sizes)):
        lo, hi = starts[group], starts[group + 1]
        simulations.append(HitmapSimulation(
            states=states[lo:hi],
            representative=representative[lo:hi] - lo,
            hits=int(hits_per_group[group]),
            mau=int(mau_per_group[group]),
            mnu=int(mnu_per_group[group]),
            unique_signatures=int(unique_per_group[group])))
    return simulations


def _simulate_sequential(signatures: np.ndarray, num_sets: int,
                         ways: int) -> HitmapSimulation:
    """Reference implementation used for object arrays of exact ints."""
    num_vectors = len(signatures)
    states = np.empty(num_vectors, dtype=np.int8)
    representative = np.arange(num_vectors, dtype=np.int64)

    set_occupancy: dict[int, int] = {}
    owner_of_signature: dict[int, int] = {}
    rejected: set[int] = set()
    hits = mau = mnu = 0

    for index in range(num_vectors):
        signature = int(signatures[index])
        if signature in owner_of_signature:
            states[index] = HIT_CODE
            representative[index] = owner_of_signature[signature]
            hits += 1
            continue
        if signature in rejected:
            states[index] = MNU_CODE
            mnu += 1
            continue
        set_index = signature % num_sets
        occupancy = set_occupancy.get(set_index, 0)
        if occupancy < ways:
            set_occupancy[set_index] = occupancy + 1
            owner_of_signature[signature] = index
            states[index] = MAU_CODE
            mau += 1
        else:
            rejected.add(signature)
            states[index] = MNU_CODE
            mnu += 1

    unique = len(owner_of_signature) + len(rejected)
    return HitmapSimulation(states=states, representative=representative,
                            hits=hits, mau=mau, mnu=mnu,
                            unique_signatures=unique)
