"""Bloom-filter similarity detection (the Figure 3 comparison).

The paper contrasts RPQ against a Bloom filter for the task of counting
unique vectors among perturbed copies: for short signatures both
techniques confuse dissimilar vectors, but RPQ converges to the true
number of unique vectors as the signature grows, while the Bloom filter
— which tests *exact* membership of (quantised) vectors — cannot merge
two slightly different copies and keeps over- or under-counting.
"""

from __future__ import annotations

import hashlib

import numpy as np


class BloomFilter:
    """A classic Bloom filter over hashable byte strings."""

    def __init__(self, num_bits: int, num_hashes: int = 3):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = np.zeros(num_bits, dtype=bool)
        self.items_added = 0

    def _positions(self, item: bytes) -> list[int]:
        positions = []
        for index in range(self.num_hashes):
            digest = hashlib.blake2b(item, digest_size=8,
                                     salt=index.to_bytes(8, "little")).digest()
            positions.append(int.from_bytes(digest, "little") % self.num_bits)
        return positions

    def add(self, item: bytes) -> None:
        for position in self._positions(item):
            self.bits[position] = True
        self.items_added += 1

    def contains(self, item: bytes) -> bool:
        return all(self.bits[position] for position in self._positions(item))

    def fill_ratio(self) -> float:
        return float(self.bits.mean())


class BloomFilterSimilarity:
    """Counts unique vectors with a Bloom filter over quantised vectors."""

    def __init__(self, num_bits: int, num_hashes: int = 3,
                 quantization_step: float = 0.25):
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        if quantization_step <= 0:
            raise ValueError("quantization_step must be positive")
        self.quantization_step = quantization_step

    def _encode(self, vector: np.ndarray) -> bytes:
        quantised = np.round(np.asarray(vector, dtype=np.float64)
                             / self.quantization_step).astype(np.int64)
        return quantised.tobytes()

    def unique_vector_count(self, vectors: np.ndarray) -> int:
        """Number of vectors the filter believes it has not seen before."""
        vectors = np.atleast_2d(vectors)
        bloom = BloomFilter(self.num_bits, self.num_hashes)
        unique = 0
        for row in vectors:
            encoded = self._encode(row)
            if not bloom.contains(encoded):
                unique += 1
                bloom.add(encoded)
        return unique

    def similarity_fraction(self, vectors: np.ndarray) -> float:
        """Fraction of vectors reported as already seen."""
        vectors = np.atleast_2d(vectors)
        if len(vectors) == 0:
            return 0.0
        unique = self.unique_vector_count(vectors)
        return 1.0 - unique / len(vectors)
