"""Input / gradient similarity characterisation (Figures 1, 3 and 15c).

Similarity is measured exactly as the paper does: a vector counts as
*similar* when its RPQ signature matches the signature of an earlier
vector in the same set.  An unconstrained MCACHE (large enough that no
insertion is ever refused) turns the reuse engine's HIT fraction into
precisely that quantity, so these helpers run one forward/backward pass
through a model with such an engine attached and read the statistics
back out per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MercuryConfig
from repro.core.reuse import ReuseEngine
from repro.core.rpq import RPQHasher
from repro.nn.losses import CrossEntropyLoss


@dataclass
class LayerSimilarity:
    """Similarity measured for one layer."""

    layer: str
    input_similarity: float
    gradient_similarity: float
    unique_input_vectors: int
    total_input_vectors: int


def _unconstrained_engine(signature_bits: int, seed: int = 1234) -> ReuseEngine:
    """A reuse engine whose MCACHE never refuses an insertion."""
    config = MercuryConfig(signature_bits=signature_bits,
                           mcache_entries=1 << 16, mcache_ways=1 << 16,
                           adaptive_signature_length=False,
                           adaptive_stoppage=False,
                           rpq_seed=seed)
    return ReuseEngine(config)


def measure_layer_similarity(model, inputs: np.ndarray, targets: np.ndarray,
                             signature_bits: int = 20,
                             layer_filter: str = "Conv2D") -> list[LayerSimilarity]:
    """Per-layer input and gradient similarity for one training batch.

    Runs one forward and one backward pass with an unconstrained reuse
    engine attached and reports, for every layer whose name contains
    ``layer_filter``, the fraction of forward input vectors (and of
    backward gradient vectors) whose signature repeats an earlier one.
    """
    engine = _unconstrained_engine(signature_bits)
    previous_engines = [m.engine for m in model.modules()]
    model.set_engine(engine)
    try:
        loss_fn = CrossEntropyLoss()
        logits = model(inputs)
        loss_fn(logits, targets)
        model.zero_grad()
        model.backward(loss_fn.backward())
    finally:
        for module, previous in zip(model.modules(), previous_engines):
            module.engine = previous

    results = []
    for layer in engine.stats.layers():
        if layer_filter and layer_filter not in layer:
            continue
        forward = engine.stats.get(layer, "forward")
        backward = engine.stats.get(layer, "backward")
        if forward is None:
            continue
        results.append(LayerSimilarity(
            layer=layer,
            input_similarity=forward.hit_fraction,
            gradient_similarity=backward.hit_fraction if backward else 0.0,
            unique_input_vectors=forward.unique_signatures,
            total_input_vectors=forward.total_vectors))
    return results


def measure_unique_vectors(vectors: np.ndarray, signature_bits: int,
                           seed: int = 1234) -> int:
    """Number of distinct RPQ signatures among ``vectors``."""
    hasher = RPQHasher(seed=seed)
    return hasher.unique_vector_count(vectors, signature_bits)


def rpq_unique_vector_experiment(signature_bits: int, *, num_unique: int = 10,
                                 copies_per_vector: int = 10,
                                 dimension: int = 10,
                                 epsilon: float = 0.01,
                                 seed: int = 3) -> int:
    """The Figure 3 experiment for RPQ.

    Generates ``num_unique`` random vectors, adds ``copies_per_vector``
    perturbed copies of each (element-wise noise of scale ``epsilon``)
    and reports how many unique vectors RPQ finds with the given
    signature length.  The ideal answer is ``num_unique``.
    """
    rng = np.random.default_rng(seed)
    originals = rng.normal(0.0, 1.0, size=(num_unique, dimension))
    population = [originals]
    for _ in range(copies_per_vector):
        population.append(originals + rng.normal(0.0, epsilon,
                                                 size=originals.shape))
    vectors = np.concatenate(population, axis=0)
    return measure_unique_vectors(vectors, signature_bits, seed=seed)
