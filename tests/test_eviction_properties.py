"""Property and differential suite for the replacement policies.

Two layers of evidence that the O(1) intrusive-list eviction structures
(:mod:`repro.core.eviction`) are correct:

* **invariants** (hypothesis) — capacity is never exceeded under any
  eviction policy; LRU's victim is always the least-recently-probed
  linked way; LFU breaks frequency ties deterministically toward the
  least recent way; segmented-LRU promotion is monotone (a line's own
  probe never demotes it) and its protected segment never overflows
  ``ways // 2``;
* **differential** — randomized insert/touch/replace/victim traces are
  replayed through the fast structures and the plain-list reference
  implementations in lockstep: every victim must match and the
  serialized ``state_arrays`` must be byte-identical.  The same
  lockstep runs end-to-end at session level by injecting the reference
  evictor into a :class:`~repro.serving.engine.SignatureResultCache`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eviction import (EVICTION_POLICIES, build_eviction_state)
from repro.serving import ServingPolicy, SignatureResultCache

REPLACEMENT = [p for p in EVICTION_POLICIES if p != "none"]


# ----------------------------------------------------------------------
# Structure-level traces: drive fast + reference in lockstep
# ----------------------------------------------------------------------
@st.composite
def eviction_traces(draw):
    """(policy, num_sets, ways, ops) — ops respect cache semantics.

    Each op is ("touch", set, way, count) on a linked way or
    ("fill", set, count) which inserts into the next free way when one
    exists and otherwise takes a victim and replaces it — exactly the
    two paths :meth:`ReuseSession._probe_and_admit_evicting` drives.
    """
    policy = draw(st.sampled_from(REPLACEMENT))
    num_sets = draw(st.integers(min_value=1, max_value=3))
    ways = draw(st.integers(min_value=1, max_value=4))
    occupancy = [0] * num_sets
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=60))):
        s = draw(st.integers(min_value=0, max_value=num_sets - 1))
        count = draw(st.integers(min_value=1, max_value=5))
        if occupancy[s] and draw(st.booleans()):
            w = draw(st.integers(min_value=0, max_value=occupancy[s] - 1))
            ops.append(("touch", s, w, count))
        else:
            ops.append(("fill", s, count))
            occupancy[s] = min(occupancy[s] + 1, ways)
    return policy, num_sets, ways, ops


def _replay(state, ops, ways, mirror=None):
    """Drive one evictor through a trace; returns the victim sequence.

    ``mirror`` receives every (op, victim) so invariant checks can run
    against an independently maintained model.
    """
    occupancy = {}
    victims = []
    for op in ops:
        if op[0] == "touch":
            _, s, w, count = op
            state.touch(s, w, count)
            if mirror is not None:
                mirror("touch", s, w, count, None)
        else:
            _, s, count = op
            used = occupancy.get(s, 0)
            if used < ways:
                state.insert(s, used, count)
                occupancy[s] = used + 1
                if mirror is not None:
                    mirror("insert", s, used, count, None)
            else:
                victim = state.victim(s)
                assert 0 <= victim < ways
                state.replace(s, victim, count)
                victims.append((s, victim))
                if mirror is not None:
                    mirror("replace", s, victim, count, victim)
    return victims


@given(eviction_traces())
@settings(max_examples=60)
def test_fast_structures_match_reference_bit_for_bit(trace):
    """The differential oracle: victims and serialized state agree."""
    policy, num_sets, ways, ops = trace
    fast = build_eviction_state(policy, num_sets, ways)
    reference = build_eviction_state(policy, num_sets, ways,
                                     reference=True)
    fast_victims = _replay(fast, ops, ways)
    reference_victims = _replay(reference, ops, ways)
    assert fast_victims == reference_victims
    fast_arrays = fast.state_arrays()
    reference_arrays = reference.state_arrays()
    assert set(fast_arrays) == set(reference_arrays)
    for name in fast_arrays:
        np.testing.assert_array_equal(fast_arrays[name],
                                      reference_arrays[name],
                                      err_msg=f"{policy}:{name}")


@given(eviction_traces())
@settings(max_examples=60)
def test_state_arrays_round_trip_is_byte_identical(trace):
    """load_state_arrays(state_arrays()) reproduces the exact state."""
    policy, num_sets, ways, ops = trace
    donor = build_eviction_state(policy, num_sets, ways)
    _replay(donor, ops, ways)
    arrays = donor.state_arrays()
    restored = build_eviction_state(policy, num_sets, ways)
    restored.load_state_arrays(arrays)
    arrays2 = restored.state_arrays()
    assert set(arrays) == set(arrays2)
    for name in arrays:
        np.testing.assert_array_equal(arrays[name], arrays2[name],
                                      err_msg=f"{policy}:{name}")
    # And the restored structure keeps evicting like the donor.
    for s in range(num_sets):
        assert donor.victim(s) == restored.victim(s)


@given(eviction_traces())
@settings(max_examples=60)
def test_lru_victim_is_the_least_recently_probed_way(trace):
    _, num_sets, ways, ops = trace
    state = build_eviction_state("lru", num_sets, ways)
    recency = [[] for _ in range(num_sets)]  # LRU first, MRU last

    def mirror(kind, s, w, count, victim):
        if victim is not None:
            assert recency[s][0] == victim, \
                "LRU evicted a way that was not the least recent"
        if w in recency[s]:
            recency[s].remove(w)
        recency[s].append(w)

    _replay(state, ops, ways, mirror=mirror)


@given(eviction_traces())
@settings(max_examples=60)
def test_lfu_ties_break_toward_the_least_recent_way(trace):
    _, num_sets, ways, ops = trace
    state = build_eviction_state("lfu", num_sets, ways)
    recency = [[] for _ in range(num_sets)]
    freq = [dict() for _ in range(num_sets)]

    def mirror(kind, s, w, count, victim):
        if victim is not None:
            lowest = min(freq[s][x] for x in recency[s])
            candidates = [x for x in recency[s] if freq[s][x] == lowest]
            assert freq[s][victim] == lowest
            # Deterministic tiebreak: the least recent of the
            # lowest-frequency ways.
            assert victim == min(candidates, key=recency[s].index)
        freq[s][w] = count if kind in ("insert", "replace") \
            else freq[s][w] + count
        if w in recency[s]:
            recency[s].remove(w)
        recency[s].append(w)

    _replay(state, ops, ways, mirror=mirror)


@given(eviction_traces())
@settings(max_examples=60)
def test_slru_promotion_is_monotone_and_protected_is_bounded(trace):
    """A line's own probe never demotes it; ways//2 caps protected."""
    _, num_sets, ways, ops = trace
    state = build_eviction_state("slru", num_sets, ways)
    for op in ops:
        if op[0] == "touch":
            _, s, w, count = op
            before = int(state._segment[s, w])
            state.touch(s, w, count)
            assert int(state._segment[s, w]) >= before, \
                "a probe demoted its own line"
        else:
            _, s, count = op
            if state._probation.count[s] + state._protected.count[s] \
                    < ways:
                used = int(state._probation.count[s]
                           + state._protected.count[s])
                state.insert(s, used, count)
            else:
                state.replace(s, state.victim(s), count)
        assert (state._protected.count <= max(ways // 2, 0)).all()
        # Victims come from probation while it has any line.
        for s2 in range(num_sets):
            if state._probation.count[s2]:
                assert int(state._segment[s2, state.victim(s2)]) == 0


# ----------------------------------------------------------------------
# Session-level lockstep: fast vs reference inside a live cache
# ----------------------------------------------------------------------
@st.composite
def serve_traces(draw):
    policy = draw(st.sampled_from(REPLACEMENT))
    entries, ways = draw(st.sampled_from([(4, 1), (4, 2), (8, 4)]))
    pool_size = draw(st.integers(min_value=2, max_value=16))
    num_batches = draw(st.integers(min_value=1, max_value=6))
    batches = [draw(st.lists(st.integers(min_value=0,
                                         max_value=pool_size - 1),
                             min_size=1, max_size=8))
               for _ in range(num_batches)]
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return policy, entries, ways, pool_size, batches, seed


def _session(eviction: str, entries: int, ways: int, reference: bool):
    policy = ServingPolicy(request_cache=True, entries=entries, ways=ways,
                           signature_bits=16, eviction=eviction)
    cache = SignatureResultCache(policy)
    if reference:
        cache._evictor = build_eviction_state(
            eviction, cache.num_sets, policy.ways, reference=True)
    return cache


@given(serve_traces())
@settings(max_examples=40, deadline=None)
def test_session_with_reference_evictor_is_bit_identical(trace):
    """End-to-end differential: the evictor choice is invisible."""
    policy, entries, ways, pool_size, batches, seed = trace
    pool = np.random.default_rng(seed).normal(size=(pool_size, 4))
    weights = np.random.default_rng(1).normal(size=(4, 3))
    fast = _session(policy, entries, ways, reference=False)
    oracle = _session(policy, entries, ways, reference=True)
    for offset, batch_rows in enumerate(batches):
        batch = pool[np.array(batch_rows, dtype=np.int64)]
        fast_rows, fast_outcome = fast.serve(
            batch, lambda rows, b=batch: b[rows] @ weights, offset)
        oracle_rows, oracle_outcome = oracle.serve(
            batch, lambda rows, b=batch: b[rows] @ weights, offset)
        np.testing.assert_array_equal(fast_rows, oracle_rows)
        assert fast_outcome == oracle_outcome
    assert vars(fast.counters) == vars(oracle.counters)
    fast_arrays = fast.state_dict()[1]
    oracle_arrays = oracle.state_dict()[1]
    assert set(fast_arrays) == set(oracle_arrays)
    for name in fast_arrays:
        np.testing.assert_array_equal(fast_arrays[name],
                                      oracle_arrays[name], err_msg=name)


@given(serve_traces())
@settings(max_examples=40, deadline=None)
def test_capacity_is_never_exceeded_under_eviction(trace):
    policy, entries, ways, pool_size, batches, seed = trace
    pool = np.random.default_rng(seed).normal(size=(pool_size, 4))
    weights = np.random.default_rng(1).normal(size=(4, 3))
    cache = _session(policy, entries, ways, reference=False)
    for offset, batch_rows in enumerate(batches):
        batch = pool[np.array(batch_rows, dtype=np.int64)]
        cache.serve(batch, lambda rows, b=batch: b[rows] @ weights,
                    offset)
        assert cache.occupancy() <= entries
        per_set = cache.mcache._valid_tag.sum(axis=1)
        assert (per_set <= ways).all()
        # Replacement happens in place, so the prefix-occupancy rule
        # of the no-replacement store still holds.
        assert (per_set == cache.mcache._occupancy).all()
