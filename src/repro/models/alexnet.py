"""Scaled AlexNet."""

from __future__ import annotations

from repro.nn import (Conv2D, Dropout, Flatten, Linear, MaxPool2D, ReLU,
                      Sequential)
from repro.nn.module import assign_unique_layer_names


def build_alexnet(num_classes: int = 8, in_channels: int = 3,
                  image_size: int = 32, seed: int = 0) -> Sequential:
    """Five convolution layers + three FC layers, widths scaled down 8x."""
    model = Sequential(
        Conv2D(in_channels, 8, 5, stride=2, padding=2, seed=seed),
        ReLU(),
        MaxPool2D(2),
        Conv2D(8, 16, 3, padding=1, seed=seed + 1),
        ReLU(),
        MaxPool2D(2),
        Conv2D(16, 24, 3, padding=1, seed=seed + 2),
        ReLU(),
        Conv2D(24, 24, 3, padding=1, seed=seed + 3),
        ReLU(),
        Conv2D(24, 16, 3, padding=1, seed=seed + 4),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(16 * (image_size // 16) ** 2, 64, seed=seed + 5),
        ReLU(),
        Dropout(0.3, seed=seed),
        Linear(64, 32, seed=seed + 6),
        ReLU(),
        Linear(32, num_classes, seed=seed + 7),
    )
    return assign_unique_layer_names(model, prefix="alexnet")
