"""Figure 18: MERCURY on the input- and weight-stationary dataflows.

Paper: average speedups of 1.55x (input-stationary) and 1.66x
(weight-stationary), both below the 1.97x of row-stationary.
"""

from benchmarks.harness import all_model_speedups, print_header
from repro.analysis import format_table, geomean
from repro.models import CNN_MODEL_NAMES

PAPER = {"input_stationary": 1.55, "weight_stationary": 1.66,
         "row_stationary": 1.97}


def run_experiment():
    results = {}
    for dataflow in ("row_stationary", "weight_stationary", "input_stationary"):
        results[dataflow] = all_model_speedups(dataflow_name=dataflow,
                                               models=CNN_MODEL_NAMES)
    return results


def test_fig18_other_dataflows(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 18 — speedup with input-/weight-stationary dataflows")
    rows = []
    for name in CNN_MODEL_NAMES:
        rows.append([name, results["input_stationary"][name],
                     results["weight_stationary"][name],
                     results["row_stationary"][name]])
    means = {key: geomean(values.values()) for key, values in results.items()}
    rows.append(["geomean", means["input_stationary"],
                 means["weight_stationary"], means["row_stationary"]])
    print(format_table(["model", "IS", "WS", "RS"], rows, "{:.2f}"))
    print(f"paper geomeans: IS {PAPER['input_stationary']}x, "
          f"WS {PAPER['weight_stationary']}x, RS {PAPER['row_stationary']}x")

    # Ordering matches the paper: RS > WS > IS > 1.
    assert means["row_stationary"] > means["weight_stationary"]
    assert means["weight_stationary"] > means["input_stationary"]
    assert means["input_stationary"] > 1.2
    # All models still benefit on every dataflow.
    assert all(v > 1.0 for values in results.values() for v in values.values())
