"""Deterministic signature-hash routing for the sharded serving stack.

The sharded :class:`~repro.serving.server.InferenceServer` replicates
its compute/cache unit — the same scale-out move accelerator designs
make in hardware — and shards the persistent reuse state by *request
signature*: every request is hashed with the same RPQ machinery the
caches use, and the signature is placed on a consistent-hash ring.  Two
properties follow:

* **affinity** — all repeats of a payload (and any signature-colliding
  near-twins) land on the same shard, so the per-shard
  ``SignatureResultCache`` sees the full repeat stream of every key it
  owns and the aggregate hit rate matches the single-shard cache;
* **stability** — ring points are SHA-256 digests of ``(shard,
  replica)`` labels, so the mapping is a pure function of the shard
  count: the same trace shards identically across runs, machines and
  Python versions (no ``hash()`` randomisation), and growing the ring
  by one shard remaps only ~1/N of the key space.
"""

from __future__ import annotations

import hashlib

import numpy as np


def signature_key(signature) -> bytes:
    """Stable byte identity of one packed signature.

    Accepts the int64 scalar representation or a multi-word ``uint64``
    row (:mod:`repro.core.rpq`); both map injectively to bytes.
    """
    value = np.asarray(signature)
    if value.ndim == 0:
        return b"i" + int(value).to_bytes(8, "big", signed=True)
    return b"w" + value.astype(np.uint64, copy=False).tobytes()


class ConsistentHashRing:
    """A fixed ring of shard points with binary-search routing.

    ``replicas`` virtual points per shard smooth the key-space split;
    at the default 64 the heaviest shard of a uniform key set carries
    within a few percent of its fair share.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.shards = shards
        self.replicas = replicas
        points = []
        for shard in range(shards):
            for replica in range(replicas):
                label = f"shard:{shard}:replica:{replica}".encode()
                digest = hashlib.sha256(label).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = np.array([point for point, _ in points],
                                dtype=np.uint64)
        self._owners = np.array([owner for _, owner in points],
                                dtype=np.int64)

    def route(self, key: bytes) -> int:
        """The shard owning ``key`` (first ring point at or after it)."""
        if self.shards == 1:
            return 0
        point = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        index = int(np.searchsorted(self._hashes, point, side="left"))
        return int(self._owners[index % len(self._owners)])

    def route_many(self, keys) -> np.ndarray:
        """Vectorized :meth:`route` over a batch of keys.

        Digests still come from :func:`hashlib.sha256` per key (that is
        the routing contract), but the ring lookup — the hot part on
        the replay path — is a single :func:`np.searchsorted` over all
        key points at once.  Bit-identical to the scalar loop.
        """
        keys = list(keys)
        if not keys:
            return np.empty(0, dtype=np.int64)
        if self.shards == 1:
            return np.zeros(len(keys), dtype=np.int64)
        points = np.frombuffer(
            b"".join(hashlib.sha256(key).digest()[:8] for key in keys),
            dtype=">u8").astype(np.uint64)
        indices = np.searchsorted(self._hashes, points, side="left")
        return self._owners[indices % len(self._owners)]


class HotKeyTracker:
    """Per-signature frequency tracking with a sticky replicated top-k.

    Ring affinity sends *all* repeats of a payload to one shard, which
    is exactly wrong for Zipfian head keys: the shard owning the
    hottest signature carries a disproportionate share of the traffic
    (the ``shard_balance`` column of the serving sweep).  The tracker
    counts per-signature-key requests and promotes the first ``top_k``
    keys to reach ``min_count`` into the *replicated* set; replicated
    keys route round-robin across every shard (starting at the ring
    owner) and the serving shard pushes their freshly served rows into
    its peers' caches after each batch, so every shard can answer them
    locally.

    Membership is **sticky** — first-to-threshold, never demoted —
    which keeps routing deterministic (no flap between replicas and
    affinity mid-trace) and is a good proxy under skew: with a
    stationary Zipfian head, the hottest keys cross the threshold
    first.  Replica *entries* still age out individually under each
    shard's TTL; the next push refreshes them.  Tracker state is
    process-local and intentionally not part of snapshots: a
    warm-started server re-learns its hot keys from live traffic.

    The pre-threshold count map is bounded (stalest-by-insertion keys
    are pruned beyond ``capacity``), so one-shot traffic cannot grow it
    without limit.
    """

    def __init__(self, top_k: int, min_count: int = 3,
                 capacity: int = 4096):
        if top_k < 0:
            raise ValueError("top_k must be >= 0")
        if min_count <= 0:
            raise ValueError("min_count must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.top_k = top_k
        self.min_count = min_count
        self.capacity = capacity
        self._counts: dict[bytes, int] = {}
        # key -> next round-robin offset (0 = the ring owner).
        self._replicated: dict[bytes, int] = {}
        # Optional telemetry bus (attached by the owning server when
        # observability is on); promotions are rare, so the emission
        # cost is negligible and off the common observe() path.
        self.bus = None

    def observe(self, key: bytes) -> bool:
        """Count one request for ``key``; True if it is replicated."""
        if key in self._replicated:
            return True
        if self.top_k == 0:
            return False
        count = self._counts.get(key, 0) + 1
        if count >= self.min_count and len(self._replicated) < self.top_k:
            self._counts.pop(key, None)
            self._replicated[key] = 0
            if self.bus is not None:
                self.bus.emit("router.promote", source="router",
                              count=count,
                              replicated=len(self._replicated))
            return True
        self._counts[key] = count
        if len(self._counts) > self.capacity:
            # Deterministic pruning: lowest count first, insertion
            # order breaking ties (dicts preserve it).
            excess = len(self._counts) - self.capacity
            coldest = sorted(self._counts,
                             key=lambda k: self._counts[k])[:excess]
            for stale in coldest:
                del self._counts[stale]
        return False

    def is_replicated(self, key: bytes) -> bool:
        return key in self._replicated

    def replicated_keys(self) -> list[bytes]:
        return list(self._replicated)

    def spread(self, key: bytes, home: int, shards: int) -> int:
        """Next round-robin shard for a replicated ``key``.

        The cycle starts at ``home`` (the ring owner), so the first
        request primes the owner's cache before replicas take turns.
        """
        offset = self._replicated[key]
        self._replicated[key] = (offset + 1) % shards
        return (home + offset) % shards
