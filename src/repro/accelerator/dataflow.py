"""Dataflow models.

The paper evaluates MERCURY on three dataflows (§IV):

* **Row-stationary** (the default, Eyeriss-style): filter rows stream
  horizontally, input rows diagonally, partial sums accumulate
  vertically.  Reuse skips a dot product entirely when the Hitmap entry
  is HIT.
* **Weight-stationary**: weights are pinned in PEs and input vectors are
  broadcast; MERCURY loads the random filters first, then skips similar
  vectors while reading them from global memory.
* **Input-stationary**: inputs are pinned and weights are broadcast; on
  a HIT the remaining weight stream for that vector is skipped.

For the cycle model each dataflow contributes (a) the PE-set geometry
(how many PEs cooperate on one dot product), (b) a *reuse efficiency*
— what fraction of HIT vectors' MACs is actually recoverable given the
dataflow's scheduling granularity — and (c) per-vector control overhead
for checking the Hitmap / skipping.  Efficiencies below 1.0 for the
weight- and input-stationary dataflows reflect the coarser skip
granularity the paper describes (whole-vector skips only once the
broadcast has been set up) and reproduce the paper's ordering of the
average speedups (RS 1.97x > WS 1.66x > IS 1.55x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Dataflow:
    """Common dataflow parameters used by the cycle cost model."""

    name: str
    # PEs cooperating on one dot product (rows of the PE set).
    pe_set_size: int
    # Fraction of a HIT vector's MAC work that the dataflow can actually
    # skip (1.0 = perfect skip).
    reuse_efficiency: float
    # Cycles of control overhead per vector for Hitmap checks / skip
    # signalling.
    per_vector_overhead: int
    # Whether PE sets must synchronise after every filter (the simple
    # synchronous design); the asynchronous design removes the barrier.
    supports_async: bool = True

    def __post_init__(self):
        if self.pe_set_size <= 0:
            raise ValueError("pe_set_size must be positive")
        if not 0.0 <= self.reuse_efficiency <= 1.0:
            raise ValueError("reuse_efficiency must be in [0, 1]")
        if self.per_vector_overhead < 0:
            raise ValueError("per_vector_overhead must be non-negative")


class RowStationary(Dataflow):
    """Eyeriss-style row-stationary dataflow (the paper's baseline)."""

    def __init__(self, pe_set_size: int = 3):
        super().__init__(name="row_stationary", pe_set_size=pe_set_size,
                         reuse_efficiency=1.0, per_vector_overhead=1,
                         supports_async=True)


class WeightStationary(Dataflow):
    """Weight-stationary dataflow.

    Vectors are skipped while being read from the global buffer, after
    the broadcast schedule for the current weights has been committed,
    so a fraction of each skipped vector's work is not recoverable.
    """

    def __init__(self, pe_set_size: int = 3, reuse_efficiency: float = 0.88):
        super().__init__(name="weight_stationary", pe_set_size=pe_set_size,
                         reuse_efficiency=reuse_efficiency,
                         per_vector_overhead=2, supports_async=False)


class InputStationary(Dataflow):
    """Input-stationary dataflow.

    A HIT can only take effect when the stationary input vector is
    swapped, so skip opportunities are the coarsest of the three
    dataflows.
    """

    def __init__(self, pe_set_size: int = 3, reuse_efficiency: float = 0.82):
        super().__init__(name="input_stationary", pe_set_size=pe_set_size,
                         reuse_efficiency=reuse_efficiency,
                         per_vector_overhead=2, supports_async=False)


_DATAFLOWS = {
    "row_stationary": RowStationary,
    "weight_stationary": WeightStationary,
    "input_stationary": InputStationary,
}


def make_dataflow(name: str, **kwargs) -> Dataflow:
    """Factory for dataflows by configuration name."""
    try:
        factory = _DATAFLOWS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataflow {name!r}; choose from {sorted(_DATAFLOWS)}"
        ) from None
    return factory(**kwargs)


def available_dataflows() -> list[str]:
    """Names of all supported dataflows."""
    return sorted(_DATAFLOWS)
