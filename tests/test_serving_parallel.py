"""Process-parallel serving: parity, crash recovery, supervision.

These tests spawn real worker processes (multiprocessing, spawn
context), so they use one small module-scoped model/trace and a shared
exact-serving configuration to keep the spawn count low.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.obs import AdaptivePolicyController, Telemetry
from repro.serving import (BatcherConfig, FaultInjection, InferenceServer,
                           ParallelInferenceServer, ServingPolicy,
                           TrafficConfig, build_request_pool, generate_trace)
from repro.serving.parallel import FAULT_EXIT_CODE

#: The determinism configuration: exact per-request compute is
#: byte-identical to the engine-less oracle at any worker count.
EXACT = ServingPolicy(request_cache=True, vector_cache=False,
                      exact_check=True, compute="per_request")
CONFIG = BatcherConfig(max_batch_size=8, max_wait_s=0.001)


@pytest.fixture(scope="module")
def model():
    return build_model("squeezenet", num_classes=4, seed=3)


@pytest.fixture(scope="module")
def pool():
    return build_request_pool("squeezenet", pool_size=8, image_size=12,
                              seed=0)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TrafficConfig(pattern="zipfian",
                                        num_requests=60, seed=1), 8)


class TestParallelParity:
    def test_replay_matches_single_process_and_oracle(self, model, pool,
                                                      trace):
        single = InferenceServer(model, EXACT, CONFIG, shards=4)
        reference_outputs, reference = single.replay(trace, pool)
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=4,
                                     snapshot_every_batches=0) as parallel:
            outputs, report = parallel.replay(trace, pool)
        for ours, theirs in zip(outputs, reference_outputs):
            np.testing.assert_array_equal(ours, theirs)
        oracle = parallel.oracle_outputs(pool)
        for request, output in zip(trace, outputs):
            np.testing.assert_array_equal(output,
                                          oracle[request.pool_index])
        assert report.hit_rate == pytest.approx(reference.hit_rate,
                                                abs=1e-12)
        assert report.requests == len(trace)
        assert report.batches == reference.batches
        assert report.recoveries == 0
        assert report.shards == 4
        assert report.measured_makespan_s > 0.0
        assert sum(row["requests"] for row in report.shard_stats) \
            == len(trace)

    def test_single_worker_matches_in_process_server_exactly(
            self, model, pool, trace):
        """workers=1 is the in-process server behind a process hop.

        Identical outputs AND identical ServingReport counters — the
        worker runtime must add no cache decisions of its own.
        """
        single = InferenceServer(model, EXACT, CONFIG, shards=1)
        reference_outputs, reference = single.replay(trace, pool)
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=1,
                                     snapshot_every_batches=0) as parallel:
            outputs, report = parallel.replay(trace, pool)
        for ours, theirs in zip(outputs, reference_outputs):
            assert ours.tobytes() == theirs.tobytes()
        assert report.requests == reference.requests
        assert report.batches == reference.batches
        assert report.hit_rate == reference.hit_rate
        assert report.request_cache == reference.request_cache
        assert report.vector_cache == reference.vector_cache
        assert [row["hit_rate"] for row in report.shard_stats] == \
            [row["hit_rate"] for row in reference.shard_stats]

    def test_single_worker_telemetry_matches_in_process(self, model,
                                                        pool, trace):
        """Forwarded worker telemetry equals in-process telemetry.

        At workers=1 the worker's event stream must be the in-process
        server's stream, relabelled and re-emitted by the supervisor —
        so both runs fold into byte-equal metric registries (the
        MetricsCollector mapping is the single point of truth) and
        identical bus digests, with zero drops.
        """
        in_process = Telemetry(window_batches=2)
        single = InferenceServer(build_model("squeezenet", num_classes=4,
                                             seed=3),
                                 EXACT, CONFIG, shards=1,
                                 telemetry=in_process)
        reference_outputs, reference = single.replay(trace, pool)

        forwarded = Telemetry(window_batches=2)
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=1,
                                     snapshot_every_batches=0,
                                     telemetry=forwarded) as parallel:
            outputs, report = parallel.replay(trace, pool)

        for ours, theirs in zip(outputs, reference_outputs):
            np.testing.assert_array_equal(ours, theirs)
        assert forwarded.summary() == in_process.summary()
        assert forwarded.summary()["dropped"] == 0
        assert forwarded.registry.state() == in_process.registry.state()
        assert report.telemetry == reference.telemetry
        assert report.request_cache == reference.request_cache

    def test_controller_requires_the_in_process_server(self, model):
        with pytest.raises(ValueError, match="in-process"):
            ParallelInferenceServer(
                model, EXACT, CONFIG, workers=1,
                telemetry=Telemetry(
                    controller=AdaptivePolicyController()))

    def test_workers_stay_warm_across_replays(self, model, pool, trace):
        # Workers persist between replays; the report isolates each
        # replay via counter deltas, so the warm pass reads 100%.
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=2,
                                     snapshot_every_batches=0) as parallel:
            _, cold = parallel.replay(trace, pool)
            _, warm = parallel.replay(trace, pool)
        assert 0.0 < cold.hit_rate < 1.0
        assert warm.hit_rate == 1.0


class TestCrashRecovery:
    def test_killed_worker_recovers_to_identical_results(
            self, model, pool, trace, tmp_path):
        single = InferenceServer(model, EXACT, CONFIG, shards=2)
        reference_outputs, reference = single.replay(trace, pool)
        fault = FaultInjection(worker=0, kill_after_batches=1)
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=2,
                                     snapshot_dir=tmp_path / "snaps",
                                     snapshot_every_batches=2,
                                     fault=fault) as parallel:
            outputs, report = parallel.replay(trace, pool)
        # The worker died mid-replay, was respawned, warm-restored from
        # its snapshot and re-ran its outstanding batches — converging
        # to the uninterrupted run's outputs and hit counters.
        assert report.recoveries == 1
        for ours, theirs in zip(outputs, reference_outputs):
            np.testing.assert_array_equal(ours, theirs)
        assert report.hit_rate == pytest.approx(reference.hit_rate,
                                                abs=1e-12)

    def test_hung_worker_is_respawned_after_timeout(self, model, pool,
                                                    trace, tmp_path):
        fault = FaultInjection(worker=0, kill_after_batches=0,
                               mode="hang")
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=2,
                                     snapshot_dir=tmp_path / "snaps",
                                     snapshot_every_batches=2,
                                     worker_timeout_s=3.0,
                                     fault=fault) as parallel:
            outputs, report = parallel.replay(trace, pool)
        assert report.recoveries >= 1
        oracle = parallel.oracle_outputs(pool)
        for request, output in zip(trace, outputs):
            np.testing.assert_array_equal(output,
                                          oracle[request.pool_index])

    def test_gives_up_after_max_respawns(self, model, pool, trace,
                                         tmp_path):
        fault = FaultInjection(worker=0, kill_after_batches=0)
        with ParallelInferenceServer(model, EXACT, CONFIG, workers=2,
                                     snapshot_dir=tmp_path / "snaps",
                                     snapshot_every_batches=0,
                                     max_respawns=0,
                                     fault=fault) as parallel:
            with pytest.raises(RuntimeError, match="giving up"):
                parallel.replay(trace, pool)


class TestValidation:
    def test_fault_injection_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            FaultInjection(worker=-1)
        with pytest.raises(ValueError):
            FaultInjection(kill_after_batches=-1)
        with pytest.raises(ValueError):
            FaultInjection(mode="explode")
        assert FAULT_EXIT_CODE != 0

    def test_server_rejects_bad_configs(self, model, tmp_path):
        for kwargs in ({"workers": 0}, {"snapshot_every_batches": -1},
                       {"worker_timeout_s": 0.0}, {"max_respawns": -1}):
            with pytest.raises(ValueError):
                ParallelInferenceServer(model, EXACT, CONFIG,
                                        snapshot_dir=tmp_path, **kwargs)

    def test_hot_key_replication_is_rejected(self, model, tmp_path):
        """Worker processes cannot share replicated rows: fail at
        construction instead of silently diverging from the in-process
        replay."""
        replicating = ServingPolicy(request_cache=True, vector_cache=False,
                                    exact_check=True,
                                    compute="per_request",
                                    replicate_top=4)
        with pytest.raises(ValueError, match="share memory"):
            ParallelInferenceServer(model, replicating, CONFIG,
                                    workers=2, snapshot_dir=tmp_path)

    def test_replay_requires_started_workers(self, model, pool, trace,
                                             tmp_path):
        parallel = ParallelInferenceServer(model, EXACT, CONFIG,
                                           workers=2,
                                           snapshot_dir=tmp_path)
        with pytest.raises(RuntimeError, match="not running"):
            parallel.replay(trace, pool)
        with pytest.raises(RuntimeError, match="not running"):
            parallel.snapshot_workers()

    def test_double_start_rejected(self, model, tmp_path):
        parallel = ParallelInferenceServer(model, EXACT, CONFIG,
                                           workers=1,
                                           snapshot_dir=tmp_path / "s")
        with parallel:
            with pytest.raises(RuntimeError, match="already started"):
                parallel.start()
