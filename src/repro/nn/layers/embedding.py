"""Token embedding layer used by the transformer model."""

from __future__ import annotations

import numpy as np

from repro.nn.init import default_rng
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 seed: int | None = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = default_rng(seed)
        table = rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim))
        self.weight = Parameter(table, name="embedding")
        self._cache = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if np.any(token_ids < 0) or np.any(token_ids >= self.num_embeddings):
            raise ValueError("token id out of range for embedding table")
        self._cache = token_ids
        return self.weight.value[token_ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        token_ids = self._cache
        flat_ids = token_ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        # Token ids carry no gradient.
        return np.zeros_like(token_ids, dtype=np.float64)
