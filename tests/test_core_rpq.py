"""Tests for Random Projection with Quantization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rpq import (RPQHasher, ints_to_words, pack_bits,
                            signature_via_convolution, signatures_to_ints,
                            words_for_bits)


def test_pack_bits_small():
    packed = pack_bits(np.array([[1, 0, 1], [0, 0, 1]]))
    assert list(packed) == [5, 1]


def test_pack_bits_long_signature_uses_multiword_uint64():
    bits = np.ones((2, 70), dtype=np.uint8)
    packed = pack_bits(bits)
    assert packed.dtype == np.uint64
    assert packed.shape == (2, 2)          # (n_vectors, n_words)
    assert int(signatures_to_ints(packed)[0]) == (1 << 70) - 1


def test_identical_vectors_share_signatures():
    hasher = RPQHasher(seed=1)
    vectors = np.vstack([np.ones(9), np.ones(9)])
    sigs = hasher.signatures(vectors, 16)
    assert sigs[0] == sigs[1]


def test_similar_vectors_likely_share_signatures():
    rng = np.random.default_rng(0)
    hasher = RPQHasher(seed=1)
    base = rng.normal(size=(50, 12))
    perturbed = base + rng.normal(0, 1e-4, size=base.shape)
    sig_a = hasher.signatures(base, 20)
    sig_b = hasher.signatures(perturbed, 20)
    match = np.mean([a == b for a, b in zip(sig_a, sig_b)])
    assert match > 0.9


def test_dissimilar_vectors_rarely_share_signatures():
    rng = np.random.default_rng(1)
    hasher = RPQHasher(seed=1)
    a = rng.normal(size=(100, 12))
    b = rng.normal(size=(100, 12))
    sig_a = hasher.signatures(a, 24)
    sig_b = hasher.signatures(b, 24)
    match = np.mean([x == y for x, y in zip(sig_a, sig_b)])
    assert match < 0.1


def test_projection_matrix_is_cached_and_deterministic():
    hasher = RPQHasher(seed=5)
    first = hasher.projection_matrix(9, 16)
    second = hasher.projection_matrix(9, 16)
    assert first is second
    other = RPQHasher(seed=5).projection_matrix(9, 16)
    np.testing.assert_array_equal(first, other)


def test_projection_matrix_prefix_is_stable_under_growth():
    """Regression: growing the signature must keep the first bits'
    filters stable — the n-bit matrix is a column prefix of the
    (n+k)-bit matrix, in whichever order the widths are requested."""
    grow_up = RPQHasher(seed=5)
    narrow = grow_up.projection_matrix(9, 12).copy()
    wide = grow_up.projection_matrix(9, 40)
    np.testing.assert_array_equal(wide[:, :12], narrow)

    shrink_down = RPQHasher(seed=5)
    wide_first = shrink_down.projection_matrix(9, 40).copy()
    narrow_second = shrink_down.projection_matrix(9, 12)
    np.testing.assert_array_equal(wide_first[:, :12], narrow_second)
    np.testing.assert_array_equal(wide_first, wide)

    # Growth must not pin superseded banks: after growing, every cached
    # view for that vector length aliases the *current* (widest) bank.
    bank = grow_up._column_bank(9, 40)
    again = grow_up.projection_matrix(9, 12)
    assert again.base is bank


@settings(deadline=None, max_examples=20)
@given(dim=st.integers(2, 12), bits=st.integers(1, 70),
       extra=st.integers(1, 70))
def test_signature_prefix_property(dim, bits, extra):
    """Signatures for n bits are a bitwise prefix of signatures for
    n + k bits, for any n, k — the §III-D growth contract."""
    rng = np.random.default_rng(dim * 97 + bits)
    vectors = rng.normal(size=(8, dim))
    # Fresh hashers per width, so the comparison spans two independent
    # from-scratch projections (not one pipeline's cached columns).
    narrow_bits = RPQHasher(seed=13).signature_bits_matrix(vectors, bits)
    wide_bits = RPQHasher(seed=13).signature_bits_matrix(vectors,
                                                         bits + extra)
    np.testing.assert_array_equal(wide_bits[:, :bits], narrow_bits)


def test_signature_pipeline_projects_only_new_columns():
    """Growing the signature for a cached batch touches only the new
    projection columns; results equal a from-scratch hash."""
    hasher = RPQHasher(seed=21)
    rng = np.random.default_rng(6)
    vectors = rng.normal(size=(30, 10))
    pipeline = hasher.pipeline(("layer", "forward"))

    first = pipeline.signatures(vectors, 16)
    assert pipeline.projected_columns == 16
    grown = pipeline.signatures(vectors, 24)
    assert pipeline.projected_columns == 24      # only 8 new columns
    assert pipeline.reused_columns >= 16
    np.testing.assert_array_equal(
        RPQHasher(seed=21).signatures(vectors, 24), grown)
    # Shrinking (or repeating) costs no new projection at all.
    again = pipeline.signatures(vectors, 16)
    assert pipeline.projected_columns == 24
    np.testing.assert_array_equal(again, first)


def test_empty_batch_produces_empty_signatures():
    """Zero-vector batches (an empty layer slice) must not crash the
    pipeline's fingerprint path."""
    hasher = RPQHasher(seed=1)
    empty = np.empty((0, 5))
    sigs = hasher.signatures(empty, 16)
    assert sigs.shape == (0,)
    wide = hasher.signatures(empty, 70)
    assert wide.shape[0] == 0
    assert hasher.similarity_fraction(empty, 16) == 0.0


def test_signature_pipeline_detects_in_place_mutation():
    """The content fingerprint invalidates a cached batch that was
    mutated in place, so stale projections are never reused."""
    hasher = RPQHasher(seed=22)
    vectors = np.random.default_rng(7).normal(size=(12, 6))
    pipeline = hasher.pipeline("consumer")
    before = pipeline.signatures(vectors, 10).copy()
    vectors *= -1.0       # same object, different content
    after = pipeline.signatures(vectors, 10)
    np.testing.assert_array_equal(
        RPQHasher(seed=22).signatures(vectors, 10), after)
    assert not np.array_equal(before, after)


def test_public_hasher_api_is_pure_under_in_place_mutation():
    """The public RPQHasher API never returns stale signatures, whatever
    in-place edit happens between calls (regression: it was once routed
    through a hidden per-shape cache)."""
    hasher = RPQHasher(seed=23)
    vectors = np.random.default_rng(8).normal(size=(30, 10))
    hasher.signatures(vectors, 16)
    vectors[0, 1] += 5.0                       # single-element edit
    mutated = hasher.signatures(vectors, 16)
    np.testing.assert_array_equal(
        RPQHasher(seed=23).signatures(vectors, 16), mutated)
    vectors[[2, 5]] = vectors[[5, 2]]          # sum-preserving row swap
    swapped = hasher.signatures(vectors, 16)
    np.testing.assert_array_equal(
        RPQHasher(seed=23).signatures(vectors, 16), swapped)


def test_longer_signatures_find_more_unique_vectors():
    rng = np.random.default_rng(2)
    hasher = RPQHasher(seed=7)
    originals = rng.normal(size=(10, 10))
    copies = [originals + rng.normal(0, 0.01, size=originals.shape)
              for _ in range(10)]
    vectors = np.concatenate([originals] + copies, axis=0)
    short = hasher.unique_vector_count(vectors, 4)
    long = hasher.unique_vector_count(vectors, 40)
    assert short <= long
    # With a long signature the estimate is near the true count of 10.
    assert 8 <= long <= 30


def test_similarity_fraction_bounds():
    rng = np.random.default_rng(3)
    hasher = RPQHasher(seed=1)
    vectors = rng.normal(size=(30, 8))
    fraction = hasher.similarity_fraction(vectors, 16)
    assert 0.0 <= fraction <= 1.0


def test_similarity_fraction_of_identical_vectors_is_high():
    hasher = RPQHasher(seed=1)
    vectors = np.tile(np.arange(6, dtype=float), (10, 1))
    assert hasher.similarity_fraction(vectors, 16) == 0.9


def test_signature_via_convolution_matches_direct_hash():
    """The paper's §III-B1 formulation equals hashing the im2col rows."""
    rng = np.random.default_rng(4)
    image = rng.normal(size=(6, 6))
    kernel_size = 3
    hasher = RPQHasher(seed=9)
    projection = hasher.projection_matrix(kernel_size * kernel_size, 12)

    conv_sigs = signature_via_convolution(image, kernel_size, projection)

    from repro.nn.im2col import im2col
    cols = im2col(image[None, None], kernel_size, kernel_size)
    direct_sigs = hasher.signatures(cols, 12)
    assert list(conv_sigs) == list(direct_sigs)


def test_scale_invariance_of_sign_quantization():
    """Sign-based RPQ hashes direction, not magnitude (documented property)."""
    hasher = RPQHasher(seed=1)
    vector = np.arange(1, 10, dtype=float)
    sigs = hasher.signatures(np.vstack([vector, 3.0 * vector]), 20)
    assert sigs[0] == sigs[1]


@settings(deadline=None, max_examples=25)
@given(n_bits=st.integers(1, 62), n_vectors=st.integers(1, 20))
def test_pack_bits_round_trip_property(n_bits, n_vectors):
    rng = np.random.default_rng(n_bits * 100 + n_vectors)
    bits = rng.integers(0, 2, size=(n_vectors, n_bits))
    packed = pack_bits(bits)
    for row in range(n_vectors):
        expected = int("".join(map(str, bits[row])), 2)
        assert int(packed[row]) == expected


@settings(deadline=None, max_examples=15)
@given(n_bits=st.integers(63, 200), n_vectors=st.integers(1, 8))
def test_pack_bits_round_trip_wide_property(n_bits, n_vectors):
    """Signatures beyond 62 bits pack into multi-word uint64 rows whose
    integer value round-trips exactly."""
    rng = np.random.default_rng(n_bits * 1000 + n_vectors)
    bits = rng.integers(0, 2, size=(n_vectors, n_bits))
    packed = pack_bits(bits)
    assert packed.dtype == np.uint64
    assert packed.shape == (n_vectors, words_for_bits(n_bits))
    values = signatures_to_ints(packed)
    for row in range(n_vectors):
        value = int(values[row])
        assert value.bit_length() <= n_bits
        unpacked = [(value >> (n_bits - 1 - i)) & 1 for i in range(n_bits)]
        assert unpacked == list(bits[row])
    # ints -> words -> ints round-trips through the conversion helpers.
    rebuilt = ints_to_words(values, num_words=packed.shape[1])
    np.testing.assert_array_equal(rebuilt, packed)


@settings(deadline=None, max_examples=15)
@given(image_size=st.integers(4, 9), kernel_size=st.integers(1, 3),
       stride=st.integers(1, 2), n_bits=st.integers(1, 16),
       seed=st.integers(0, 1000))
def test_signature_via_convolution_property(image_size, kernel_size, stride,
                                            n_bits, seed):
    """§III-B1: convolution-formulated signatures equal the matrix product
    (im2col rows hashed directly) for any geometry."""
    from repro.nn.im2col import im2col

    rng = np.random.default_rng(seed)
    image = rng.normal(size=(image_size, image_size))
    hasher = RPQHasher(seed=seed)
    projection = hasher.projection_matrix(kernel_size * kernel_size, n_bits)

    conv_sigs = signature_via_convolution(image, kernel_size, projection,
                                          stride=stride)
    cols = im2col(image[None, None], kernel_size, kernel_size, stride=stride)
    direct_sigs = hasher.signatures(cols, n_bits)
    assert list(conv_sigs) == list(direct_sigs)


@settings(deadline=None, max_examples=20)
@given(dim=st.integers(2, 16), bits=st.integers(1, 32))
def test_signatures_are_deterministic_property(dim, bits):
    rng = np.random.default_rng(dim * 37 + bits)
    vectors = rng.normal(size=(5, dim))
    hasher_a = RPQHasher(seed=11)
    hasher_b = RPQHasher(seed=11)
    assert list(hasher_a.signatures(vectors, bits)) == \
        list(hasher_b.signatures(vectors, bits))
