"""The reuse-aware serving subsystem: caches, batcher, server, traffic."""

from __future__ import annotations

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serving import (
    BatcherConfig,
    InferenceServer,
    MicroBatcher,
    ServingPolicy,
    ServingReuseEngine,
    SignatureResultCache,
    TrafficConfig,
    build_request_pool,
    generate_trace,
)
from repro.serving.loadgen import TRAFFIC_PATTERNS, trace_summary


# ----------------------------------------------------------------------
# SignatureResultCache
# ----------------------------------------------------------------------
class TestSignatureResultCache:
    @staticmethod
    def _compute(vectors, weights):
        return lambda rows: vectors[rows] @ weights

    def test_cross_batch_reuse(self, rng):
        policy = ServingPolicy(entries=64, ways=4, signature_bits=24)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(6, 10))
        weights = rng.normal(size=(10, 3))
        first, outcome1 = cache.serve(vectors,
                                      self._compute(vectors, weights), 0)
        assert outcome1.cross_hit_rows == 0
        assert outcome1.computed_unique == 6
        second, outcome2 = cache.serve(vectors,
                                       self._compute(vectors, weights), 1)
        assert outcome2.cross_hit_rows == 6
        assert outcome2.computed_unique == 0
        np.testing.assert_array_equal(first, second)

    def test_intra_batch_duplicates_share_one_compute(self, rng):
        policy = ServingPolicy(entries=64, ways=4)
        cache = SignatureResultCache(policy)
        row = rng.normal(size=10)
        vectors = np.stack([row, row, row])
        weights = rng.normal(size=(10, 3))
        calls = []

        def compute(rows):
            calls.append(len(rows))
            return vectors[rows] @ weights

        results, outcome = cache.serve(vectors, compute, 0)
        assert calls == [1]
        assert outcome.intra_hit_rows == 2
        np.testing.assert_array_equal(results[0], results[1])

    def test_capacity_rejects_without_replacement(self, rng):
        # One set, one way: the second distinct signature can never be
        # admitted, so it is recomputed on every batch (MNU semantics).
        policy = ServingPolicy(entries=1, ways=1, signature_bits=16)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(2, 8))
        weights = rng.normal(size=(8, 2))
        cache.serve(vectors, self._compute(vectors, weights), 0)
        assert cache.occupancy() == 1
        _, outcome = cache.serve(vectors, self._compute(vectors, weights), 1)
        assert outcome.cross_hit_rows == 1
        assert outcome.rejected_unique == 1
        assert cache.counters.rejected >= 1

    def test_ttl_refreshes_stale_entries(self, rng):
        policy = ServingPolicy(entries=64, ways=4, ttl_batches=2)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(3, 8))
        weights = rng.normal(size=(8, 2))
        cache.serve(vectors, self._compute(vectors, weights), 0)
        # Within TTL: served from the store.
        _, fresh = cache.serve(vectors, self._compute(vectors, weights), 2)
        assert fresh.cross_hit_rows == 3
        # Past TTL: recomputed and refreshed in place.
        _, stale = cache.serve(vectors, self._compute(vectors, weights), 5)
        assert stale.cross_hit_rows == 0
        assert stale.computed_unique == 3
        assert cache.counters.expired == 3
        # The refresh reset the age clock.
        _, again = cache.serve(vectors, self._compute(vectors, weights), 6)
        assert again.cross_hit_rows == 3

    def test_ttl_zero_expires_immediately(self, rng):
        # ttl_batches=0 must mean "expire immediately": entries only
        # serve within the micro-batch index that wrote them, so
        # cross-batch reuse is off while intra-batch dedup still works.
        policy = ServingPolicy(entries=64, ways=4, ttl_batches=0)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(3, 8))
        weights = rng.normal(size=(8, 2))
        cache.serve(vectors, self._compute(vectors, weights), 0)
        # Same batch index: still valid.
        _, same = cache.serve(vectors, self._compute(vectors, weights), 0)
        assert same.cross_hit_rows == 3
        # Any later batch: expired and refreshed, every time.
        _, later = cache.serve(vectors, self._compute(vectors, weights), 1)
        assert later.cross_hit_rows == 0
        assert later.computed_unique == 3
        assert cache.counters.expired == 3
        _, again = cache.serve(vectors, self._compute(vectors, weights), 2)
        assert again.cross_hit_rows == 0

    def test_ttl_none_never_expires(self, rng):
        policy = ServingPolicy(entries=64, ways=4, ttl_batches=None)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(3, 8))
        weights = rng.normal(size=(8, 2))
        cache.serve(vectors, self._compute(vectors, weights), 0)
        _, outcome = cache.serve(vectors, self._compute(vectors, weights),
                                 10_000)
        assert outcome.cross_hit_rows == 3
        assert cache.counters.expired == 0

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_batches"):
            ServingPolicy(ttl_batches=-1)

    def test_exact_check_demotes_collisions(self, rng):
        # 1-bit signatures guarantee aliasing between distinct vectors.
        policy = ServingPolicy(entries=4, ways=2, signature_bits=1,
                               exact_check=True)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(8, 6))
        weights = rng.normal(size=(6, 2))
        results, _ = cache.serve(vectors, self._compute(vectors, weights), 0)
        np.testing.assert_array_equal(results, vectors @ weights)
        more = rng.normal(size=(8, 6))
        results2, _ = cache.serve(more, self._compute(more, weights), 1)
        np.testing.assert_array_equal(results2, more @ weights)
        assert cache.counters.collisions > 0

    def test_signature_trust_mode_shares_colliding_rows(self, rng):
        policy = ServingPolicy(entries=64, ways=4, signature_bits=1,
                               exact_check=False)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(8, 6))
        weights = rng.normal(size=(6, 2))
        results, outcome = cache.serve(vectors,
                                       self._compute(vectors, weights), 0)
        # At most two unique signatures exist at 1 bit.
        assert outcome.unique <= 2
        assert outcome.intra_hit_rows >= 6

    def test_row_accounting_is_consistent(self, rng, make_trace):
        policy = ServingPolicy(entries=32, ways=2, signature_bits=20)
        cache = SignatureResultCache(policy)
        weights = rng.normal(size=(8, 2))
        for batch in range(4):
            vectors = rng.normal(size=(20, 8))
            # Repeat some rows to force intra hits.
            vectors[10:] = vectors[:10]
            _, outcome = cache.serve(vectors,
                                     self._compute(vectors, weights), batch)
            assert (outcome.cross_hit_rows + outcome.intra_hit_rows
                    + outcome.computed_unique + outcome.aliased_rows
                    == outcome.rows)
        counters = cache.counters
        assert counters.requests == 80
        assert counters.hits + counters.computed == counters.requests


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class TestAdmissionPolicies:
    @staticmethod
    def _compute(vectors, weights):
        return lambda rows: vectors[rows] @ weights

    def test_frequency_gate_defers_first_sighting(self, rng):
        policy = ServingPolicy(entries=64, ways=4, admission="frequency",
                               admission_min_frequency=2)
        cache = SignatureResultCache(policy)
        vectors = rng.normal(size=(4, 8))
        weights = rng.normal(size=(8, 2))
        # First sighting: computed but not admitted.
        _, first = cache.serve(vectors, self._compute(vectors, weights), 0)
        assert first.inserted_unique == 0
        assert first.rejected_unique == 4
        assert cache.occupancy() == 0
        # Second sighting reaches the frequency bar: admitted now.
        _, second = cache.serve(vectors, self._compute(vectors, weights), 1)
        assert second.inserted_unique == 4
        assert cache.occupancy() == 4
        # Third sighting: served from the cache.
        _, third = cache.serve(vectors, self._compute(vectors, weights), 2)
        assert third.cross_hit_rows == 4

    def test_frequency_gate_counts_rows_not_batches(self, rng):
        policy = ServingPolicy(entries=64, ways=4, admission="frequency",
                               admission_min_frequency=2)
        cache = SignatureResultCache(policy)
        row = rng.normal(size=8)
        vectors = np.stack([row, row])  # two rows, one signature
        weights = rng.normal(size=(8, 2))
        _, outcome = cache.serve(vectors, self._compute(vectors, weights), 0)
        # Two sightings in one batch satisfy min_frequency=2.
        assert outcome.inserted_unique == 1
        assert cache.occupancy() == 1

    def test_one_shot_traffic_never_pollutes_frequency_cache(self, rng):
        policy = ServingPolicy(entries=64, ways=4, admission="frequency",
                               admission_min_frequency=3)
        cache = SignatureResultCache(policy)
        weights = rng.normal(size=(8, 2))
        for batch in range(5):
            vectors = rng.normal(size=(6, 8))  # fresh payloads every time
            cache.serve(vectors, self._compute(vectors, weights), batch)
        assert cache.occupancy() == 0

    def test_size_gate_blocks_oversized_payloads(self, rng):
        small = ServingPolicy(entries=64, ways=4, admission="size",
                              admission_max_bytes=8 * 8)
        cache = SignatureResultCache(small)
        wide = rng.normal(size=(3, 16))  # 128 payload bytes > 64 allowed
        weights = rng.normal(size=(16, 2))
        _, outcome = cache.serve(wide, self._compute(wide, weights), 0)
        assert outcome.inserted_unique == 0
        assert cache.occupancy() == 0
        narrow_cache = SignatureResultCache(small)
        narrow = rng.normal(size=(3, 8))  # exactly at the 64-byte cap
        weights8 = rng.normal(size=(8, 2))
        _, admitted = narrow_cache.serve(narrow,
                                         self._compute(narrow, weights8), 0)
        assert admitted.inserted_unique == 3

    def test_admission_results_stay_correct(self, rng):
        # Whatever the gate decides, served rows equal the plain matmul.
        for admission in ("always", "frequency", "size"):
            policy = ServingPolicy(entries=64, ways=4, admission=admission,
                                   admission_max_bytes=1)
            cache = SignatureResultCache(policy)
            weights = rng.normal(size=(8, 2))
            for batch in range(3):
                vectors = rng.normal(size=(10, 8))
                vectors[5:] = vectors[:5]
                results, _ = cache.serve(vectors,
                                         self._compute(vectors, weights),
                                         batch)
                np.testing.assert_array_equal(results, vectors @ weights)

    def test_invalid_admission_configs_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            ServingPolicy(admission="sometimes")
        with pytest.raises(ValueError, match="admission_min_frequency"):
            ServingPolicy(admission="frequency", admission_min_frequency=0)
        with pytest.raises(ValueError, match="admission_max_bytes"):
            ServingPolicy(admission="size", admission_max_bytes=0)


# ----------------------------------------------------------------------
# ServingReuseEngine
# ----------------------------------------------------------------------
class TestServingReuseEngine:
    def test_persistent_across_calls(self, rng):
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True,
                                                  entries=256, ways=4))
        vectors = rng.normal(size=(10, 12))
        weights = rng.normal(size=(12, 4))
        engine.matmul(vectors, weights, layer="L")
        engine.end_batch()
        engine.matmul(vectors, weights, layer="L")
        record = engine.stats.get("L", "forward")
        assert record.hits == 10          # the whole second batch reused
        assert engine.counters().cross_hits == 10

    def test_layer_enable_patterns(self, rng):
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True,
                                                  layers=("conv",)))
        vectors = rng.normal(size=(4, 6))
        weights = rng.normal(size=(6, 2))
        engine.matmul(vectors, weights, layer="head:Linear")
        engine.matmul(vectors, weights, layer="stem:conv1")
        assert not engine.stats.get("head:Linear",
                                    "forward").similarity_detection_on
        assert engine.stats.get("stem:conv1",
                                "forward").similarity_detection_on

    def test_backward_phase_is_exact_passthrough(self, rng):
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True))
        vectors = rng.normal(size=(4, 6))
        weights = rng.normal(size=(6, 2))
        out = engine.matmul(vectors, weights, layer="L", phase="backward")
        np.testing.assert_array_equal(out, vectors @ weights)
        assert engine.counters().requests == 0

    def test_separate_caches_per_vector_length(self, rng):
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True))
        engine.matmul(rng.normal(size=(3, 6)), rng.normal(size=(6, 2)),
                      layer="L")
        engine.matmul(rng.normal(size=(3, 9)), rng.normal(size=(9, 2)),
                      layer="L")
        assert len(engine.occupancy()) == 2

    def test_data_dependent_weights_never_reuse(self, rng):
        # Attention-style calls multiply by the *batch itself* (a fresh
        # array every call); the weights-identity guard must turn those
        # streams into exact bypasses instead of serving rows computed
        # against another request's matrix.
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True))
        vectors = rng.normal(size=(4, 6))
        weights_a = rng.normal(size=(6, 4))
        weights_b = rng.normal(size=(6, 4))
        engine.matmul(vectors, weights_a, layer="attn")
        engine.end_batch()
        out = engine.matmul(vectors, weights_b, layer="attn")
        np.testing.assert_array_equal(out, vectors @ weights_b)
        assert engine.counters().cross_hits == 0
        # Once a stream is data-dependent it stays exact, even if the
        # first matrix reappears.
        engine.end_batch()
        out = engine.matmul(vectors, weights_a, layer="attn")
        np.testing.assert_array_equal(out, vectors @ weights_a)
        assert engine.counters().cross_hits == 0

    def test_weight_views_of_one_parameter_keep_matching(self, rng):
        # Conv hands the engine a fresh transpose view of its cached
        # weight matrix every call; views of one parameter must not
        # trip the data-dependent guard.
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True))
        parameter = rng.normal(size=(4, 6))
        vectors = rng.normal(size=(5, 6))
        engine.matmul(vectors, parameter.T, layer="conv")
        engine.end_batch()
        engine.matmul(vectors, parameter.T, layer="conv")
        assert engine.counters().cross_hits == 5

    def test_attaches_like_training_engine(self, rng):
        model = build_model("squeezenet", num_classes=3, seed=1)
        engine = ServingReuseEngine(ServingPolicy(vector_cache=True))
        model.set_engine(engine)
        model.eval()
        x = rng.normal(size=(2, 3, 12, 12))
        model(x)
        engine.end_batch()
        model(x)
        counters = engine.counters()
        assert counters.cross_hits > 0
        assert any(row["hit_fraction"] > 0 for row in engine.layer_summary())


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_batches_up_to_max_size(self):
        seen = []

        def process(batch):
            seen.append(len(batch))
            return [x * 2 for x in batch]

        async def drive():
            batcher = MicroBatcher(process,
                                   BatcherConfig(max_batch_size=4,
                                                 max_wait_s=0.05))
            await batcher.start()
            results = await asyncio.gather(*(batcher.submit(i)
                                             for i in range(10)))
            await batcher.stop()
            return results

        results = asyncio.run(drive())
        assert results == [i * 2 for i in range(10)]
        assert max(seen) <= 4
        assert sum(seen) == 10

    def test_max_wait_flushes_partial_batch(self):
        def process(batch):
            return list(batch)

        async def drive():
            batcher = MicroBatcher(process,
                                   BatcherConfig(max_batch_size=64,
                                                 max_wait_s=0.01))
            await batcher.start()
            result = await asyncio.wait_for(batcher.submit("only"),
                                            timeout=5)
            await batcher.stop()
            return result

        assert asyncio.run(drive()) == "only"

    def test_failures_propagate_per_request(self):
        def process(batch):
            raise RuntimeError("backend down")

        async def drive():
            batcher = MicroBatcher(process, BatcherConfig(max_wait_s=0.001))
            await batcher.start()
            with pytest.raises(RuntimeError, match="batch processing"):
                await batcher.submit(1)
            await batcher.stop()
            return batcher.telemetry

        telemetry = asyncio.run(drive())
        assert telemetry.failed == 1

    def test_stop_waits_for_inflight_submissions(self):
        # stop() must resolve every admitted submission — including
        # ones still suspended at their queue.put — before cancelling
        # the collector, or their futures would hang forever.
        def process(batch):
            return list(batch)

        async def drive():
            batcher = MicroBatcher(process,
                                   BatcherConfig(max_batch_size=2,
                                                 max_wait_s=0.001,
                                                 max_queue=2))
            await batcher.start()
            submissions = [asyncio.ensure_future(batcher.submit(i))
                           for i in range(12)]
            await asyncio.sleep(0)  # admit them, then stop immediately
            await batcher.stop()
            return await asyncio.gather(*submissions)

        assert asyncio.run(asyncio.wait_for(drive(), timeout=10)) == \
            list(range(12))

    def test_submit_requires_running_batcher(self):
        batcher = MicroBatcher(lambda batch: batch)

        async def drive():
            await batcher.submit(1)

        with pytest.raises(RuntimeError, match="not running"):
            asyncio.run(drive())

    def test_stop_parks_instead_of_busy_polling(self, monkeypatch):
        # Regression: stop() used to spin ``await asyncio.sleep(0)``
        # until in-flight submissions drained, burning the event loop.
        # It now parks on an event — a stop that has to wait makes no
        # zero-delay sleep calls at all.
        def process(batch):
            return list(batch)

        zero_sleeps = 0
        real_sleep = asyncio.sleep

        async def counting_sleep(delay, *args, **kwargs):
            nonlocal zero_sleeps
            if not delay:
                zero_sleeps += 1
            return await real_sleep(delay, *args, **kwargs)

        async def drive():
            batcher = MicroBatcher(process,
                                   BatcherConfig(max_batch_size=2,
                                                 max_wait_s=0.001,
                                                 max_queue=2))
            await batcher.start()
            submissions = [asyncio.ensure_future(batcher.submit(i))
                           for i in range(8)]
            await real_sleep(0)  # admit them, then stop while pending
            monkeypatch.setattr(asyncio, "sleep", counting_sleep)
            await batcher.stop()
            monkeypatch.setattr(asyncio, "sleep", real_sleep)
            return await asyncio.gather(*submissions)

        results = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert results == list(range(8))
        assert zero_sleeps == 0


# ----------------------------------------------------------------------
# Bounded telemetry
# ----------------------------------------------------------------------
class TestTelemetryReservoir:
    def test_memory_stays_bounded_and_counters_stay_exact(self):
        from repro.serving.batcher import (RESERVOIR_CAPACITY,
                                           BatcherTelemetry)
        telemetry = BatcherTelemetry()
        stream = 3 * RESERVOIR_CAPACITY
        for value in range(stream):
            telemetry.record_latency(value * 1e-4)
            telemetry.record_batch(1 + value % 8)
        # The sample is bounded no matter the stream length...
        assert len(telemetry.latency_values()) == RESERVOIR_CAPACITY
        assert len(telemetry.batch_sizes.values()) == RESERVOIR_CAPACITY
        assert telemetry.latencies.count == stream
        # ...while the counters (and mean batch size) remain exact.
        assert telemetry.rows == sum(1 + v % 8 for v in range(stream))
        assert telemetry.mean_batch_size == \
            telemetry.rows / telemetry.batches

    def test_sampled_percentiles_track_exact_values(self):
        # Regression for the unbounded-telemetry fix: the reservoir
        # sample must keep p50/p99 within tolerance of the exact
        # stream percentiles long after saturation.
        from repro.serving.batcher import (RESERVOIR_CAPACITY,
                                           BatcherTelemetry)
        rng = np.random.default_rng(7)
        stream = rng.gamma(2.0, 10.0, size=50_000)
        telemetry = BatcherTelemetry()
        for value in stream:
            telemetry.record_latency(value)
        sample = telemetry.latency_values()
        assert len(sample) == RESERVOIR_CAPACITY
        for q in (50, 99):
            exact = float(np.percentile(stream, q))
            approx = float(np.percentile(sample, q))
            assert abs(approx - exact) / exact < 0.05

    def test_values_since_is_exact_before_saturation(self):
        from repro.serving.batcher import Reservoir
        reservoir = Reservoir(capacity=16)
        for value in range(10):
            reservoir.record(float(value))
        mark = reservoir.count
        for value in range(10, 14):
            reservoir.record(float(value))
        np.testing.assert_array_equal(reservoir.values_since(mark),
                                      [10.0, 11.0, 12.0, 13.0])


# ----------------------------------------------------------------------
# Signature-hash routing
# ----------------------------------------------------------------------
class TestConsistentHashRing:
    def test_route_many_bit_identical_to_scalar_route(self, rng):
        from repro.serving.router import ConsistentHashRing
        for shards in (1, 2, 5):
            ring = ConsistentHashRing(shards)
            keys = [rng.bytes(17) for _ in range(200)]
            vectorized = ring.route_many(keys)
            assert vectorized.dtype == np.int64
            assert list(vectorized) == [ring.route(key) for key in keys]

    def test_route_many_handles_empty_batches(self):
        from repro.serving.router import ConsistentHashRing
        routed = ConsistentHashRing(3).route_many([])
        assert routed.size == 0 and routed.dtype == np.int64


# ----------------------------------------------------------------------
# Hot-key replication tracking
# ----------------------------------------------------------------------
class TestHotKeyTracker:
    def _tracker(self, **kwargs):
        from repro.serving.router import HotKeyTracker
        return HotKeyTracker(**{"top_k": 2, "min_count": 3, **kwargs})

    def test_promotion_is_first_to_threshold_and_sticky(self):
        tracker = self._tracker()
        for _ in range(2):
            assert not tracker.observe(b"hot")
        assert tracker.observe(b"hot")  # third observation promotes
        assert tracker.is_replicated(b"hot")
        # Sticky: membership never flaps, even if other keys get hotter.
        for _ in range(50):
            tracker.observe(b"hotter")
        assert tracker.is_replicated(b"hot")
        # top_k bounds the replicated set.
        assert not tracker.observe(b"third-key")
        assert len(tracker.replicated_keys()) <= 2

    def test_top_k_zero_never_replicates(self):
        tracker = self._tracker(top_k=0)
        for _ in range(100):
            assert not tracker.observe(b"hot")

    def test_spread_round_robins_from_the_ring_owner(self):
        tracker = self._tracker(min_count=1)
        tracker.observe(b"hot")
        shards = 3
        targets = [tracker.spread(b"hot", home=2, shards=shards)
                   for _ in range(6)]
        # Starts at the owner, then cycles every shard deterministically.
        assert targets == [2, 0, 1, 2, 0, 1]

    def test_count_map_is_bounded(self):
        tracker = self._tracker(top_k=1, min_count=10, capacity=16)
        for index in range(200):
            tracker.observe(f"key-{index}".encode())
        assert len(tracker._counts) <= 16

    def test_rejects_bad_configs(self):
        from repro.serving.router import HotKeyTracker
        with pytest.raises(ValueError):
            HotKeyTracker(top_k=-1)
        with pytest.raises(ValueError):
            HotKeyTracker(top_k=1, min_count=0)
        with pytest.raises(ValueError):
            HotKeyTracker(top_k=1, capacity=0)


# ----------------------------------------------------------------------
# Shared L2 tier
# ----------------------------------------------------------------------
class TestSharedL2Cache:
    def test_lookup_is_exact_and_lru_bounded(self, rng):
        from repro.serving import SharedL2Cache
        l2 = SharedL2Cache(capacity=2)
        rows = rng.normal(size=(3, 4))
        payloads = rng.normal(size=(3, 6))
        assert l2.lookup(payloads[0]) is None
        l2.insert(payloads[0], rows[0])
        l2.insert(payloads[1], rows[1])
        np.testing.assert_array_equal(l2.lookup(payloads[0]), rows[0])
        # Inserting a third entry evicts the LRU one (payloads[1]).
        l2.insert(payloads[2], rows[2])
        assert len(l2) == 2
        assert l2.lookup(payloads[1]) is None
        np.testing.assert_array_equal(l2.lookup(payloads[0]), rows[0])
        # A byte-different payload never matches.
        assert l2.lookup(payloads[0] + 1e-16) is None

    def test_flush_and_reload_round_trip(self, rng, tmp_path):
        from repro.serving import SharedL2Cache
        donor = SharedL2Cache(directory=tmp_path / "l2")
        payloads = rng.normal(size=(4, 6))
        rows = rng.normal(size=(4, 3))
        donor.bind_model("fingerprint-a")
        for payload, row in zip(payloads, rows):
            donor.insert(payload, row, output_tail=(3,))
        donor.flush()
        reloaded = SharedL2Cache(directory=tmp_path / "l2")
        assert len(reloaded) == 4
        assert reloaded.output_tail == (3,)
        assert reloaded.model_fingerprint == "fingerprint-a"
        for payload, row in zip(payloads, rows):
            np.testing.assert_array_equal(reloaded.lookup(payload), row)
        # Repeated flushes clean up stale generations.
        reloaded.flush()
        reloaded.flush()
        state_files = list((tmp_path / "l2").glob("l2-state-*.npz"))
        assert len(state_files) == 1
        assert not list((tmp_path / "l2").glob(".tmp-*"))

    def test_model_binding_refuses_stale_stores(self, rng, tmp_path):
        from repro.serving import SharedL2Cache
        donor = SharedL2Cache(directory=tmp_path / "l2")
        donor.bind_model("fingerprint-a")
        donor.insert(rng.normal(size=6), rng.normal(size=3))
        donor.flush()
        reloaded = SharedL2Cache(directory=tmp_path / "l2")
        with pytest.raises(ValueError, match="different model"):
            reloaded.bind_model("fingerprint-b")

    def test_server_rejects_l2_without_request_cache(self):
        from repro.serving import SharedL2Cache
        model = build_model("squeezenet", num_classes=4, seed=3)
        with pytest.raises(ValueError):
            InferenceServer(
                model,
                ServingPolicy(request_cache=False, vector_cache=True),
                l2=SharedL2Cache())

    def test_empty_store_flushes_and_reloads(self, tmp_path):
        from repro.serving import SharedL2Cache
        SharedL2Cache(directory=tmp_path / "l2").flush()
        assert len(SharedL2Cache(directory=tmp_path / "l2")) == 0

    def test_flush_requires_a_directory(self):
        from repro.serving import SharedL2Cache
        with pytest.raises(RuntimeError, match="no directory"):
            SharedL2Cache().flush()


# ----------------------------------------------------------------------
# Traffic generation
# ----------------------------------------------------------------------
class TestLoadGen:
    def test_traces_are_deterministic(self):
        config = TrafficConfig(pattern="zipfian", num_requests=50, seed=7)
        assert generate_trace(config, 16) == generate_trace(config, 16)

    def test_zipf_rotation_moves_the_hot_set_between_epochs(self):
        config = TrafficConfig(pattern="zipfian", num_requests=120,
                               zipf_rotate_every=40, seed=7)
        trace = generate_trace(config, 30)
        assert trace == generate_trace(config, 30)  # still deterministic
        epochs = [trace[0:40], trace[40:80], trace[80:120]]
        tops = [np.bincount([r.pool_index for r in epoch],
                            minlength=30).argmax() for epoch in epochs]
        # The rank→payload rotation gives each epoch its own hot key.
        assert len(set(tops)) == 3
        # Stationary config is unchanged by the default knob value.
        plain = TrafficConfig(pattern="zipfian", num_requests=120, seed=7)
        assert generate_trace(plain, 30) == generate_trace(
            TrafficConfig(pattern="zipfian", num_requests=120,
                          zipf_rotate_every=0, seed=7), 30)
        with pytest.raises(ValueError, match="zipf_rotate_every"):
            TrafficConfig(zipf_rotate_every=-1)

    @pytest.mark.parametrize("pattern", TRAFFIC_PATTERNS)
    def test_patterns_produce_valid_traces(self, pattern):
        config = TrafficConfig(pattern=pattern, num_requests=64, seed=3)
        trace = generate_trace(config, 16)
        assert len(trace) == 64
        arrivals = [request.arrival_s for request in trace]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert all(0 <= request.pool_index < 16 for request in trace)

    def test_zipfian_is_skewed(self):
        uniform = generate_trace(TrafficConfig(pattern="uniform",
                                               num_requests=400, seed=0), 64)
        zipf = generate_trace(TrafficConfig(pattern="zipfian",
                                            num_requests=400, seed=0), 64)
        assert trace_summary(zipf)["top_key_share"] > \
            trace_summary(uniform)["top_key_share"]

    def test_bursty_has_wider_gap_spread(self):
        uniform = generate_trace(TrafficConfig(pattern="uniform",
                                               num_requests=256, seed=0), 8)
        bursty = generate_trace(TrafficConfig(pattern="bursty",
                                              num_requests=256, seed=0), 8)

        def gap_cv(trace):
            arrivals = np.array([r.arrival_s for r in trace])
            gaps = np.diff(arrivals)
            return gaps.std() / gaps.mean()

        assert gap_cv(bursty) > gap_cv(uniform)

    def test_pool_shapes(self):
        images = build_request_pool("squeezenet", pool_size=6, image_size=12)
        assert images.shape == (6, 3, 12, 12)
        tokens = build_request_pool("transformer", pool_size=6)
        assert tokens.shape[0] == 6
        assert tokens.dtype.kind in "iu"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(pattern="nope")
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=0)


# ----------------------------------------------------------------------
# InferenceServer
# ----------------------------------------------------------------------
@pytest.fixture
def small_pool():
    return build_request_pool("squeezenet", pool_size=8, image_size=12,
                              seed=0)


@pytest.fixture
def zipf_trace():
    return generate_trace(TrafficConfig(pattern="zipfian", num_requests=60,
                                        seed=1), 8)


class TestInferenceServer:
    def test_exact_mode_bit_identical_to_oracle(self, small_pool, zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(
            model,
            ServingPolicy(request_cache=True, vector_cache=False,
                          exact_check=True, compute="per_request"),
            BatcherConfig(max_batch_size=8, max_wait_s=0.001))
        outputs, report = server.replay(zipf_trace, small_pool)
        oracle = server.oracle_outputs(small_pool)
        for request, output in zip(zipf_trace, outputs):
            np.testing.assert_array_equal(output,
                                          oracle[request.pool_index])
        assert report.hit_rate > 0
        assert report.requests == 60

    def test_vector_mode_near_exact_with_check(self, small_pool, zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(
            model,
            ServingPolicy(request_cache=False, vector_cache=True,
                          exact_check=True, entries=8192, ways=16))
        outputs, report = server.replay(zipf_trace, small_pool)
        oracle = server.oracle_outputs(small_pool)
        deviation = max(
            float(np.max(np.abs(out - oracle[req.pool_index])))
            for req, out in zip(zipf_trace, outputs))
        assert deviation < 1e-9
        assert report.hit_rate > 0
        assert report.layer_stats

    def test_replay_is_deterministic(self, small_pool, zipf_trace):
        def run():
            model = build_model("squeezenet", num_classes=4, seed=3)
            server = InferenceServer(
                model, ServingPolicy(compute="per_request"))
            outputs, report = server.replay(zipf_trace, small_pool)
            return outputs, report

        outputs_a, report_a = run()
        outputs_b, report_b = run()
        for left, right in zip(outputs_a, outputs_b):
            np.testing.assert_array_equal(left, right)
        assert report_a.request_cache == report_b.request_cache
        assert report_a.batches == report_b.batches

    def test_async_serve_trace(self, small_pool, zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(model, ServingPolicy())
        outputs, report = server.serve_trace(zipf_trace[:24], small_pool)
        assert len(outputs) == 24
        assert report.mean_batch_size >= 1
        assert report.latency_p99_ms > 0

    def test_no_cache_baseline(self, small_pool, zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(
            model, ServingPolicy(request_cache=False, vector_cache=False))
        outputs, report = server.replay(zipf_trace[:16], small_pool)
        assert report.hit_rate == 0.0
        assert len(outputs) == 16

    def test_transformer_payloads(self):
        pool = build_request_pool("transformer", pool_size=6, seed=0)
        trace = generate_trace(TrafficConfig(pattern="zipfian",
                                             num_requests=20, seed=2), 6)
        model = build_model("transformer", seed=1)
        server = InferenceServer(
            model, ServingPolicy(compute="per_request"))
        outputs, report = server.replay(trace, pool)
        oracle = server.oracle_outputs(pool)
        for request, output in zip(trace, outputs):
            np.testing.assert_array_equal(output,
                                          oracle[request.pool_index])
        assert report.hit_rate > 0

    def test_sharded_exact_mode_bit_identical_at_any_shard_count(
            self, small_pool, zipf_trace):
        for shards in (2, 3):
            model = build_model("squeezenet", num_classes=4, seed=3)
            server = InferenceServer(
                model,
                ServingPolicy(request_cache=True, vector_cache=False,
                              exact_check=True, compute="per_request"),
                BatcherConfig(max_batch_size=8, max_wait_s=0.001),
                shards=shards)
            outputs, report = server.replay(zipf_trace, small_pool)
            oracle = server.oracle_outputs(small_pool)
            for request, output in zip(zipf_trace, outputs):
                np.testing.assert_array_equal(output,
                                              oracle[request.pool_index])
            assert report.shards == shards
            assert len(report.shard_stats) == shards
            assert sum(row["requests"]
                       for row in report.shard_stats) == len(zipf_trace)

    def test_sharded_replay_is_deterministic(self, small_pool, zipf_trace):
        def run():
            model = build_model("squeezenet", num_classes=4, seed=3)
            server = InferenceServer(
                model, ServingPolicy(compute="per_request"), shards=3)
            outputs, report = server.replay(zipf_trace, small_pool)
            return outputs, report

        outputs_a, report_a = run()
        outputs_b, report_b = run()
        for left, right in zip(outputs_a, outputs_b):
            np.testing.assert_array_equal(left, right)
        assert report_a.request_cache == report_b.request_cache
        assert report_a.batches == report_b.batches
        assert report_a.shard_stats == report_b.shard_stats

    def test_routing_keeps_repeats_on_one_shard(self, small_pool,
                                                zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(model, ServingPolicy(), shards=4)
        for index in range(len(small_pool)):
            owner = server.shard_for(small_pool[index])
            assert owner == server.shard_for(small_pool[index])
            assert 0 <= owner < 4
        # Sharding preserves the aggregate hit rate: every repeat of a
        # payload lands on the shard that cached it.
        outputs, report = server.replay(zipf_trace, small_pool)
        single = InferenceServer(build_model("squeezenet", num_classes=4,
                                             seed=3), ServingPolicy())
        _, single_report = single.replay(zipf_trace, small_pool)
        assert report.request_cache["cross_hits"] > 0
        assert report.hit_rate == pytest.approx(single_report.hit_rate,
                                                abs=0.1)

    def test_sharded_vector_engines_stay_private(self, small_pool,
                                                 zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(
            model, ServingPolicy(request_cache=False, vector_cache=True,
                                 entries=8192, ways=16), shards=2)
        outputs, report = server.replay(zipf_trace, small_pool)
        oracle = server.oracle_outputs(small_pool)
        deviation = max(
            float(np.max(np.abs(out - oracle[req.pool_index])))
            for req, out in zip(zipf_trace, outputs))
        assert deviation < 1e-9
        engines = {id(shard.vector_engine) for shard in server.shards}
        assert len(engines) == 2
        # Both shards received traffic and recorded their own per-layer
        # telemetry — the routing really does spread vector work.
        assert {row["shard"] for row in report.layer_stats} == {0, 1}

    def test_sharded_serve_trace_roundtrip(self, small_pool, zipf_trace):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(model, ServingPolicy(), shards=2)
        outputs, report = server.serve_trace(zipf_trace[:24], small_pool)
        assert len(outputs) == 24
        assert report.requests == 24
        assert report.mean_batch_size >= 1

    def test_invalid_shard_count_rejected(self):
        model = build_model("squeezenet", num_classes=4, seed=3)
        with pytest.raises(ValueError, match="shards"):
            InferenceServer(model, ServingPolicy(), shards=0)


class TestSnapshotRestore:
    def _server(self, shards=2):
        model = build_model("squeezenet", num_classes=4, seed=3)
        return InferenceServer(
            model,
            ServingPolicy(request_cache=True, vector_cache=False,
                          exact_check=True, compute="per_request"),
            BatcherConfig(max_batch_size=8, max_wait_s=0.001),
            shards=shards)

    def test_restored_server_continues_like_the_donor(self, tmp_path,
                                                      small_pool,
                                                      zipf_trace):
        prefix, suffix = zipf_trace[:40], zipf_trace[40:]
        continuing = self._server()
        continuing.replay(prefix, small_pool)
        expected_outputs, expected_report = continuing.replay(suffix,
                                                              small_pool)

        donor = self._server()
        donor.replay(prefix, small_pool)
        donor.snapshot(tmp_path / "snap")
        restored = self._server()
        restored.restore(tmp_path / "snap")
        outputs, report = restored.replay(suffix, small_pool)

        for left, right in zip(expected_outputs, outputs):
            assert left.tobytes() == right.tobytes()
        assert report.request_cache == expected_report.request_cache
        # Cache state matches exactly; the routed-request telemetry is
        # per-process, so the restored server only counts the suffix.
        def cache_state(rows):
            return [{key: value for key, value in row.items()
                     if key != "requests"} for row in rows]
        assert cache_state(report.shard_stats) == \
            cache_state(expected_report.shard_stats)

    def test_restore_validates_shards_and_policy(self, tmp_path,
                                                 small_pool, zipf_trace):
        donor = self._server(shards=2)
        donor.replay(zipf_trace[:24], small_pool)
        donor.snapshot(tmp_path / "snap")
        with pytest.raises(ValueError, match="shards"):
            self._server(shards=3).restore(tmp_path / "snap")
        model = build_model("squeezenet", num_classes=4, seed=3)
        other_policy = InferenceServer(
            model, ServingPolicy(request_cache=True, vector_cache=False,
                                 exact_check=True, compute="per_request",
                                 entries=1024, ways=8), shards=2)
        with pytest.raises(ValueError, match="policy"):
            other_policy.restore(tmp_path / "snap")

    def test_restore_rejects_different_weights(self, tmp_path, small_pool,
                                               zipf_trace):
        # Cached outputs are only valid for the weights that produced
        # them; a server with different parameters must refuse the
        # snapshot instead of serving the donor's stale outputs.
        donor = self._server()
        donor.replay(zipf_trace[:24], small_pool)
        donor.snapshot(tmp_path / "snap")
        other_model = build_model("squeezenet", num_classes=4, seed=99)
        other = InferenceServer(
            other_model,
            ServingPolicy(request_cache=True, vector_cache=False,
                          exact_check=True, compute="per_request"),
            BatcherConfig(max_batch_size=8, max_wait_s=0.001), shards=2)
        with pytest.raises(ValueError, match="weights"):
            other.restore(tmp_path / "snap")

    def test_torn_snapshot_write_is_never_visible(self, tmp_path,
                                                  small_pool, zipf_trace):
        # Regression for the torn-write fix: a crash at any instant of
        # snapshot() must leave either the previous complete snapshot
        # or none — never a manifest paired with partial arrays.
        donor = self._server()
        donor.replay(zipf_trace[:24], small_pool)
        snap = tmp_path / "snap"
        manifest = donor.snapshot(snap)

        # Crash before any commit: only temp files land.  Temps never
        # match the committed names, so the prior snapshot restores.
        (snap / ".tmp-state-99.npz").write_bytes(b"partial garbage")
        # Crash between the arrays commit and the manifest commit: the
        # old manifest still references its own generation's arrays
        # file, not the newer orphan.
        (snap / "state-777.npz").write_bytes(b"\x00garbage")
        restored = self._server()
        assert restored.restore(snap)["arrays"] == manifest["arrays"]
        before = restored.cache_counters()
        restored.replay(zipf_trace[:24], small_pool)
        after = restored.cache_counters()
        # Every replayed request is served from the donor's cache state.
        assert after.hits - before.hits == 24

        # The next complete snapshot sweeps both kinds of leftovers.
        donor.snapshot(snap)
        assert not (snap / "state-777.npz").exists()
        assert not list(snap.glob(".tmp-*"))

        # No manifest at all (crash before the final commit) is an
        # explicit error, not a half-restore.
        torn = tmp_path / "torn"
        torn.mkdir()
        (torn / ".tmp-manifest.json").write_text("{}")
        with pytest.raises(ValueError, match="no complete snapshot"):
            self._server().restore(torn)

    def test_vector_cache_snapshot_roundtrip(self, tmp_path, small_pool,
                                             zipf_trace):
        def build():
            model = build_model("squeezenet", num_classes=4, seed=3)
            return InferenceServer(
                model, ServingPolicy(request_cache=False, vector_cache=True,
                                     entries=8192, ways=16), shards=2)

        donor = build()
        donor.replay(zipf_trace[:40], small_pool)
        donor.snapshot(tmp_path / "snap")
        restored = build()
        restored.restore(tmp_path / "snap")
        for shard, donor_shard in zip(restored.shards, donor.shards):
            assert shard.vector_engine.occupancy() == \
                donor_shard.vector_engine.occupancy()
        # Warm vector caches serve the repeats immediately.
        before = restored.cache_counters().hits
        restored.replay(zipf_trace[40:], small_pool)
        assert restored.cache_counters().hits > before


class TestHttpFrontEnd:
    def test_http_front_end(self, small_pool):
        model = build_model("squeezenet", num_classes=4, seed=3)
        server = InferenceServer(model, ServingPolicy(
            compute="per_request"))
        front = server.serve_http(port=0)
        try:
            with urllib.request.urlopen(front.url("/healthz"),
                                        timeout=10) as response:
                assert json.load(response) == {"ok": True}
            payload = json.dumps(
                {"inputs": small_pool[0].tolist()}).encode()
            request = urllib.request.Request(
                front.url("/infer"), data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.load(response)
            outputs = np.asarray(body["outputs"])
            oracle = server.oracle_outputs(small_pool[:1])[0]
            np.testing.assert_array_equal(outputs, oracle)
            with urllib.request.urlopen(front.url("/stats"),
                                        timeout=10) as response:
                stats = json.load(response)
            assert stats["requests"] >= 1
        finally:
            front.stop()
