"""Figure 3: unique vectors found by RPQ vs a Bloom filter.

Paper: 10 unique vectors plus 10 perturbed copies each; short signatures
confuse vectors, RPQ approaches the true count (10) at longer signatures
while the Bloom filter does not.
"""

import numpy as np

from benchmarks.harness import print_header
from repro.analysis import format_table, rpq_unique_vector_experiment
from repro.baselines import BloomFilterSimilarity

TRUE_UNIQUE = 10


def run_experiment():
    rng = np.random.default_rng(3)
    originals = rng.normal(size=(TRUE_UNIQUE, 10))
    population = [originals] + [originals + rng.normal(0, 0.01, originals.shape)
                                for _ in range(10)]
    vectors = np.concatenate(population)

    rpq_rows = {bits: rpq_unique_vector_experiment(bits)
                for bits in (2, 4, 8, 16, 32, 48)}
    bloom_rows = {bits: BloomFilterSimilarity(num_bits=bits).unique_vector_count(vectors)
                  for bits in (16, 64, 256, 1024, 4096)}
    return rpq_rows, bloom_rows


def test_fig03_rpq_vs_bloom(benchmark):
    rpq_rows, bloom_rows = benchmark.pedantic(run_experiment, rounds=1,
                                              iterations=1)

    print_header("Figure 3 — unique vectors found (true count = 10)")
    print(format_table(["RPQ signature bits", "unique found"],
                       [[bits, count] for bits, count in rpq_rows.items()]))
    print(format_table(["Bloom filter bits", "unique found"],
                       [[bits, count] for bits, count in bloom_rows.items()]))

    # Short signatures under-estimate (many dissimilar vectors merged).
    assert rpq_rows[2] < TRUE_UNIQUE
    # Growing the signature only separates more vectors, never fewer.
    ordered = [rpq_rows[bits] for bits in sorted(rpq_rows)]
    assert ordered == sorted(ordered)
    # At moderate signature lengths RPQ recovers the true count closely.
    assert min(abs(rpq_rows[bits] - TRUE_UNIQUE) for bits in (8, 16)) <= 3
    # Small Bloom filters saturate and report fewer uniques than larger ones.
    assert bloom_rows[16] <= bloom_rows[4096]
