"""Tests for the MCACHE structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hitmap import HitState
from repro.core.mcache import MCache


def test_geometry_validation():
    with pytest.raises(ValueError):
        MCache(entries=100, ways=16)
    with pytest.raises(ValueError):
        MCache(entries=0, ways=1)
    cache = MCache(entries=1024, ways=16)
    assert cache.num_sets == 64


def test_first_lookup_is_mau_then_hit():
    cache = MCache(entries=16, ways=4)
    state, entry = cache.lookup_or_insert(123)
    assert state is HitState.MAU and entry >= 0
    state2, entry2 = cache.lookup_or_insert(123)
    assert state2 is HitState.HIT and entry2 == entry


def test_full_set_gives_mnu_no_replacement():
    cache = MCache(entries=4, ways=2)  # 2 sets, 2 ways
    # Signatures congruent mod 2 land in the same set.
    assert cache.lookup_or_insert(0)[0] is HitState.MAU
    assert cache.lookup_or_insert(2)[0] is HitState.MAU
    state, entry = cache.lookup_or_insert(4)
    assert state is HitState.MNU and entry == -1
    # The rejected signature stays out (no replacement), even on retry.
    assert cache.lookup_or_insert(4)[0] is HitState.MNU
    # Previously inserted signatures still hit.
    assert cache.lookup_or_insert(0)[0] is HitState.HIT


def test_probe_does_not_insert():
    cache = MCache(entries=8, ways=2)
    assert cache.probe(5) == (False, -1)
    cache.lookup_or_insert(5)
    present, entry = cache.probe(5)
    assert present and entry >= 0
    assert cache.occupancy() == 1


def test_data_write_read_and_valid_bits():
    cache = MCache(entries=8, ways=2)
    _, entry = cache.lookup_or_insert(7)
    assert not cache.has_data(entry)
    with pytest.raises(LookupError):
        cache.read_data(entry)
    cache.write_data(entry, 3.14)
    assert cache.has_data(entry)
    assert cache.read_data(entry) == 3.14


def test_multi_version_data():
    cache = MCache(entries=8, ways=2, versions=3)
    _, entry = cache.lookup_or_insert(9)
    cache.write_data(entry, "filter0", version=0)
    cache.write_data(entry, "filter2", version=2)
    assert cache.read_data(entry, version=2) == "filter2"
    assert not cache.has_data(entry, version=1)
    with pytest.raises(IndexError):
        cache.write_data(entry, "x", version=3)


def test_invalidate_data_keeps_tags():
    cache = MCache(entries=8, ways=2)
    _, entry = cache.lookup_or_insert(11)
    cache.write_data(entry, 1.0)
    cache.invalidate_data()
    # Tag still present (signature phase result preserved)...
    assert cache.lookup_or_insert(11)[0] is HitState.HIT
    # ...but the data has to be recomputed.
    assert not cache.has_data(entry)


def test_clear_resets_everything():
    cache = MCache(entries=8, ways=2)
    cache.lookup_or_insert(1)
    cache.lookup_or_insert(2)
    cache.clear()
    assert cache.occupancy() == 0
    assert cache.lookup_or_insert(1)[0] is HitState.MAU


def test_stats_counters():
    cache = MCache(entries=4, ways=1)  # 4 sets, direct mapped
    cache.lookup_or_insert(0)
    cache.lookup_or_insert(0)
    cache.lookup_or_insert(4)  # same set as 0, set full -> MNU
    assert cache.stats.hits == 1
    assert cache.stats.mau == 1
    assert cache.stats.mnu == 1
    fractions = cache.stats.as_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_utilization():
    cache = MCache(entries=8, ways=2)
    assert cache.utilization() == 0.0
    cache.lookup_or_insert(3)
    assert cache.utilization() == 1 / 8


@settings(deadline=None, max_examples=25)
@given(signatures=st.lists(st.integers(0, 200), min_size=1, max_size=80),
       ways=st.sampled_from([1, 2, 4]))
def test_set_occupancy_never_exceeds_ways(signatures, ways):
    cache = MCache(entries=8 * ways, ways=ways)
    for signature in signatures:
        cache.lookup_or_insert(signature)
    for lines in cache._sets:
        assert sum(1 for line in lines if line.valid_tag) <= ways
