"""Shared grid-execution machinery for the sweep runners.

Both sweep families — the analytic cycle-model sweep
(:mod:`repro.analysis.sweep`) and the functional training-accuracy
sweep (:mod:`repro.analysis.functional_sweep`) — are shaped the same
way: expand a cross product of scenario axes into frozen point records,
evaluate every point independently (optionally over a
``multiprocessing`` pool) and aggregate the JSON-safe result rows into
a persistable results object.  This module holds that common shape:

* :func:`expand_grid` — deterministic cross-product expansion;
* :func:`run_grid` — the fan-out executor with an in-process fallback;
* :func:`point_row` — the shared result-row assembly (the point's
  scenario axes + the measured metrics + ``elapsed_s``), so no sweep
  family hand-rolls its envelope fields;
* :class:`GridResults` — the base results container with the shared
  JSON envelope (``{"schema": ..., "elapsed_s": ..., "rows": [...]}``),
  filtering, geometric-mean and summary-envelope helpers.

Subclasses set two class attributes: ``schema`` (the marker written
into and checked against the JSON envelope, so a cycle-sweep file is
not silently loaded as a functional sweep) and ``result_keys`` (the
minimum key set every row must carry — the contract the smoke tests
assert).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Mapping

import numpy as np


def expand_grid(axes: Mapping[str, Iterable]) -> list[dict]:
    """Cross product of the given axes, in deterministic order.

    The first axis varies slowest (outermost loop), matching the row
    order both sweep runners have always produced.  Axis values are
    materialised once, so generators are accepted.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    return [dict(zip(names, combo)) for combo in itertools.product(*values)]


def run_grid(points, evaluate: Callable[[object], dict],
             processes: int | None = None) -> tuple[list[dict], float]:
    """Evaluate every point; returns ``(rows, elapsed_seconds)``.

    ``processes=0`` (or a single-point grid) evaluates in-process;
    otherwise a ``multiprocessing`` pool of ``processes`` workers
    (default: all cores, capped at the number of points) maps over the
    grid.  ``evaluate`` must be a picklable module-level callable and
    rows come back in grid order either way.
    """
    points = list(points)
    start = time.perf_counter()
    if processes == 0 or len(points) <= 1:
        rows = [evaluate(point) for point in points]
    else:
        workers = min(processes or multiprocessing.cpu_count(),
                      max(len(points), 1))
        with multiprocessing.Pool(processes=workers) as pool:
            rows = pool.map(evaluate, points)
    return rows, time.perf_counter() - start


def point_row(point, metrics: Mapping, *,
              started: float | None = None) -> dict:
    """Assemble one result row: scenario axes + measured metrics.

    ``point`` is a frozen point dataclass (or a plain mapping); its
    fields become the row's axis columns, ``metrics`` the measurement
    columns, and — when ``started`` carries a ``time.perf_counter()``
    origin — ``elapsed_s`` closes the envelope.  Every sweep family
    builds its rows through here so the envelope contract
    (axes ∪ metrics ⊇ ``result_keys``) has a single implementation.
    """
    row = dict(dataclasses.asdict(point)) \
        if dataclasses.is_dataclass(point) else dict(point)
    row.update(metrics)
    if started is not None:
        row["elapsed_s"] = time.perf_counter() - started
    return row


@dataclass
class GridResults:
    """Aggregated sweep rows with JSON persistence and row queries."""

    rows: list[dict] = field(default_factory=list)
    elapsed_s: float = 0.0

    # Overridden by subclasses; ``load`` enforces the schema marker.
    schema: ClassVar[str] = "grid"
    result_keys: ClassVar[frozenset] = frozenset()

    def __len__(self) -> int:
        return len(self.rows)

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"schema": self.schema,
                           "elapsed_s": self.elapsed_s,
                           "rows": self.rows},
                          indent=2, sort_keys=True)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "GridResults":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        # Files written before the schema marker existed load as-is;
        # a *different* marker means the wrong results class was used.
        found = payload.get("schema", cls.schema)
        if found != cls.schema:
            raise ValueError(
                f"{path} holds {found!r} results, not {cls.schema!r}")
        return cls(rows=payload["rows"], elapsed_s=payload["elapsed_s"])

    # -- summaries ------------------------------------------------------
    def base_summary(self) -> dict:
        """The summary fields every results family shares."""
        return {"points": len(self.rows), "elapsed_s": self.elapsed_s}

    def column_mean(self, column: str) -> float:
        return float(np.mean([row[column] for row in self.rows]))

    def column_max(self, column: str) -> float:
        return float(max(row[column] for row in self.rows))

    def grouped_mean(self, group_by: str, column: str) -> dict[str, float]:
        """Mean of ``column`` per distinct value of ``group_by``."""
        groups: dict[str, list[float]] = {}
        for row in self.rows:
            groups.setdefault(row[group_by], []).append(row[column])
        return {key: float(np.mean(values))
                for key, values in groups.items()}

    # -- row queries ----------------------------------------------------
    def matching_rows(self, **filters) -> list[dict]:
        """Rows whose values equal every ``filters`` entry."""
        return [row for row in self.rows
                if all(row[key] == value for key, value in filters.items())]

    def geomean(self, column: str, **filters) -> float:
        """Geometric mean of ``column`` over rows matching ``filters``."""
        values = [row[column] for row in self.matching_rows(**filters)]
        if not values:
            raise ValueError(f"no rows match {filters!r}")
        return float(np.exp(np.mean(np.log(values))))

    def missing_keys(self) -> list[set]:
        """Per-row schema violations (empty sets when rows conform)."""
        return [self.result_keys - set(row) for row in self.rows]
