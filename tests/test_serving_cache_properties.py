"""Hypothesis property suite for the persistent serving cache.

Randomized serve sequences against :class:`SignatureResultCache`
(equivalently, a persistent :class:`~repro.core.session.ReuseSession`)
must preserve three invariants regardless of traffic shape, geometry or
policy:

* **capacity** — the no-replacement MCACHE never holds more lines than
  it has, globally or per set;
* **TTL monotonicity** — an entry's recorded insertion batch never
  moves backwards, and a cross-batch hit is never served from an entry
  older than ``ttl_batches`` (checked through batch-stamped payloads:
  every served row carries the batch index that computed it);
* **snapshot round trip** — ``state_dict`` → ``load_state_dict`` is
  state-identical: the restored cache reports byte-equal state and
  behaves identically on arbitrary follow-up traffic.  The sequence
  strategy draws the ``eviction`` axis too, so the round trip covers
  the replacement policies' recency/frequency/segment metadata, and a
  snapshot taken under one eviction policy must refuse to load into a
  session running another (the policy fingerprint seals it).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ServingPolicy, SignatureResultCache

# Small vector pools force collisions, repeats and set conflicts.
_GEOMETRIES = st.sampled_from([(8, 1), (8, 4), (16, 2), (64, 16)])


def _pool(seed: int, pool_size: int, width: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(pool_size, width))


def _batches(draw_indices: list[list[int]], pool: np.ndarray):
    for batch in draw_indices:
        yield pool[np.array(batch, dtype=np.int64)]


@st.composite
def serve_sequences(draw):
    """(policy kwargs, pool, list of per-batch row index lists)."""
    entries, ways = draw(_GEOMETRIES)
    pool_size = draw(st.integers(min_value=1, max_value=12))
    width = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    num_batches = draw(st.integers(min_value=1, max_value=6))
    batches = [draw(st.lists(st.integers(min_value=0,
                                         max_value=pool_size - 1),
                             min_size=1, max_size=10))
               for _ in range(num_batches)]
    policy = dict(
        entries=entries, ways=ways,
        signature_bits=draw(st.sampled_from([4, 16, 32])),
        ttl_batches=draw(st.sampled_from([None, 0, 1, 3])),
        exact_check=draw(st.booleans()),
        admission=draw(st.sampled_from(["always", "frequency", "size"])),
        admission_min_frequency=draw(st.integers(min_value=1, max_value=3)),
        admission_max_bytes=draw(st.sampled_from([None, 8, 1024])),
        eviction=draw(st.sampled_from(["none", "lru", "lfu", "slru"])))
    return policy, _pool(seed, pool_size, width), batches


def _drive(cache: SignatureResultCache, pool: np.ndarray, batches,
           weights: np.ndarray, start_batch: int = 0):
    outcomes = []
    for offset, batch in enumerate(_batches(batches, pool)):
        results, outcome = cache.serve(
            batch, lambda rows, b=batch: b[rows] @ weights,
            start_batch + offset)
        outcomes.append((results, outcome))
    return outcomes


@given(serve_sequences())
@settings(max_examples=40)
def test_capacity_is_never_exceeded(sequence):
    policy_kwargs, pool, batches = sequence
    policy = ServingPolicy(request_cache=True, **policy_kwargs)
    cache = SignatureResultCache(policy)
    weights = np.random.default_rng(1).normal(size=(pool.shape[1], 3))
    for offset, batch in enumerate(_batches(batches, pool)):
        cache.serve(batch, lambda rows, b=batch: b[rows] @ weights, offset)
        assert cache.occupancy() <= policy.entries
        per_set = cache.mcache._valid_tag.sum(axis=1)
        assert (per_set <= policy.ways).all()
        # Occupied ways form a prefix (the no-replacement insert rule).
        assert (per_set == cache.mcache._occupancy).all()


@given(serve_sequences())
@settings(max_examples=40)
def test_ttl_hits_are_never_stale_and_ages_are_monotonic(sequence):
    policy_kwargs, pool, batches = sequence
    # Stamp every computed row with its batch index: any served row
    # whose stamp is older than the TTL proves a stale hit.  The exact
    # check must be off so stamps may legally propagate across batches.
    policy_kwargs = dict(policy_kwargs, exact_check=False,
                         admission="always")
    policy = ServingPolicy(request_cache=True, **policy_kwargs)
    cache = SignatureResultCache(policy)
    ttl = policy.ttl_batches
    previous_stamps = np.empty(0, dtype=np.int64)
    for offset, batch in enumerate(_batches(batches, pool)):
        results, _ = cache.serve(
            batch,
            lambda rows, b=offset: np.full((len(rows), 1), float(b)),
            offset)
        if ttl is not None:
            assert (results[:, 0] >= offset - ttl).all(), \
                "served a row older than ttl_batches"
        assert (results[:, 0] <= offset).all()
        # Insertion stamps never move backwards for an existing entry.
        stamps = cache._entry_batch.copy()
        assert (stamps[:len(previous_stamps)] >= previous_stamps).all()
        previous_stamps = stamps


@given(serve_sequences(), st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=40)
def test_snapshot_restore_round_trip_is_state_identical(sequence,
                                                        follow_seed):
    policy_kwargs, pool, batches = sequence
    policy = ServingPolicy(request_cache=True, **policy_kwargs)
    weights = np.random.default_rng(2).normal(size=(pool.shape[1], 3))

    donor = SignatureResultCache(policy)
    _drive(donor, pool, batches, weights)
    meta, arrays = donor.state_dict()

    restored = SignatureResultCache(policy)
    restored.load_state_dict(meta, arrays)

    # State-identical: a second snapshot is byte-equal.
    meta2, arrays2 = restored.state_dict()
    assert meta == meta2
    assert set(arrays) == set(arrays2)
    for name in arrays:
        np.testing.assert_array_equal(arrays[name], arrays2[name],
                                      err_msg=name)
    assert restored.occupancy() == donor.occupancy()
    # Entry ids renumber densely on a line-order restore (eviction
    # orphans are dropped), so compare the TTL stamps per live line
    # rather than the raw append-only array.
    live = donor.mcache._valid_tag
    np.testing.assert_array_equal(live, restored.mcache._valid_tag)
    np.testing.assert_array_equal(
        restored._entry_batch[restored.mcache._line_entry[live]],
        donor._entry_batch[donor.mcache._line_entry[live]])

    # Behaviour-identical on arbitrary follow-up traffic.
    follow_rng = np.random.default_rng(follow_seed)
    follow = pool[follow_rng.integers(0, len(pool), size=8)]
    next_batch = len(batches)
    donor_rows, donor_outcome = donor.serve(
        follow, lambda rows: follow[rows] @ weights, next_batch)
    restored_rows, restored_outcome = restored.serve(
        follow, lambda rows: follow[rows] @ weights, next_batch)
    np.testing.assert_array_equal(donor_rows, restored_rows)
    assert donor_outcome == restored_outcome
    assert vars(donor.counters) == vars(restored.counters)


# ----------------------------------------------------------------------
# Cross-policy restore: eviction metadata is part of the contract
# ----------------------------------------------------------------------
def _driven_cache(eviction: str) -> SignatureResultCache:
    import pytest  # noqa: F401  (parametrize import kept local)
    policy = ServingPolicy(request_cache=True, entries=8, ways=4,
                           signature_bits=16, eviction=eviction)
    cache = SignatureResultCache(policy)
    pool = _pool(7, 10, 4)
    weights = np.random.default_rng(3).normal(size=(4, 3))
    _drive(cache, pool, [[0, 1, 2, 3], [4, 5, 0, 1], [6, 7, 8, 9]],
           weights)
    return cache


def test_eviction_snapshot_refuses_ttl_only_policy():
    """An LRU snapshot cannot silently load into a no-eviction cache.

    The restored session would have lines with no recency metadata (or
    metadata with no consumer) — the policy fingerprint refuses the
    pair loudly, in both directions.
    """
    import pytest

    lru_meta, lru_arrays = _driven_cache("lru").state_dict()
    plain_meta, plain_arrays = _driven_cache("none").state_dict()

    into_plain = SignatureResultCache(
        ServingPolicy(request_cache=True, entries=8, ways=4,
                      signature_bits=16, eviction="none"))
    with pytest.raises(ValueError, match="different policy"):
        into_plain.load_state_dict(lru_meta, lru_arrays)

    into_lru = SignatureResultCache(
        ServingPolicy(request_cache=True, entries=8, ways=4,
                      signature_bits=16, eviction="lru"))
    with pytest.raises(ValueError, match="different policy"):
        into_lru.load_state_dict(plain_meta, plain_arrays)

    # And across replacement policies: lfu state is not lru state.
    into_lfu = SignatureResultCache(
        ServingPolicy(request_cache=True, entries=8, ways=4,
                      signature_bits=16, eviction="lfu"))
    with pytest.raises(ValueError, match="different policy"):
        into_lfu.load_state_dict(lru_meta, lru_arrays)


def test_eviction_snapshot_layouts_are_marked():
    """Snapshots declare their array layout so mixups fail loudly."""
    lru_meta, _ = _driven_cache("lru").state_dict()
    plain_meta, _ = _driven_cache("none").state_dict()
    assert lru_meta["layout"] == "line-order"
    assert plain_meta["layout"] == "entry-order"


def test_missing_eviction_metadata_fails_loudly():
    """A line-order snapshot without eviction arrays is rejected."""
    import pytest

    donor = _driven_cache("slru")
    meta, arrays = donor.state_dict()
    stripped = {name: value for name, value in arrays.items()
                if not name.startswith("ev_")}
    restored = SignatureResultCache(donor.policy)
    with pytest.raises((ValueError, KeyError)):
        restored.load_state_dict(meta, stripped)
