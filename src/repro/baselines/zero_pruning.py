"""Unlimited zero pruning (Figure 17b).

The comparison point assumes an ideal accelerator that skips *every*
multiply-accumulate whose input activation or weight is zero, with no
detection or bypass overhead — a strict upper bound on sparsity-based
training accelerators such as TensorDash.  The speedup is simply the
ratio of all MACs to MACs whose both operands are non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.capture import CaptureEngine


@dataclass
class ZeroPruningLayerReport:
    layer: str
    total_macs: float
    effectual_macs: float

    @property
    def speedup(self) -> float:
        if self.effectual_macs == 0:
            return float(self.total_macs) if self.total_macs else 1.0
        return self.total_macs / self.effectual_macs


class ZeroPruningBound:
    """Ideal zero-skipping over both inputs and weights."""

    def __init__(self, zero_threshold: float = 0.0):
        if zero_threshold < 0:
            raise ValueError("zero_threshold must be non-negative")
        self.zero_threshold = zero_threshold

    def _nonzero_fraction(self, array: np.ndarray) -> float:
        return float(np.mean(np.abs(array) > self.zero_threshold))

    def layer_report(self, layer: str, vectors: np.ndarray,
                     weights: np.ndarray) -> ZeroPruningLayerReport:
        """MAC counts for one dot-product stage.

        A MAC survives only when both its activation element and its
        weight element are non-zero; with independent positions the
        effectual fraction is the product of the two non-zero densities
        (exact for the expectation, which is all the bound needs).
        """
        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]
        total = float(num_vectors * vector_length * num_filters)
        density = self._nonzero_fraction(vectors) * self._nonzero_fraction(weights)
        return ZeroPruningLayerReport(layer=layer, total_macs=total,
                                      effectual_macs=total * density)

    def model_speedup(self, capture: CaptureEngine,
                      phase: str | None = None) -> float:
        total = 0.0
        effectual = 0.0
        for (layer, rec_phase), calls in capture.captured.items():
            if phase is not None and rec_phase != phase:
                continue
            for vectors, weights in calls:
                report = self.layer_report(layer, vectors, weights)
                total += report.total_macs
                effectual += report.effectual_macs
        if effectual == 0:
            return 1.0
        return total / effectual
