"""Streaming metrics: mergeable log-bucketed histograms + a registry.

:class:`LogHistogram` is the bounded distribution summary behind the
serving percentiles: values land in geometric buckets
``[growth**i, growth**(i+1))``, so any quantile read is exact in rank
and off by at most one bucket in value — a *relative* error bound of
``growth`` that holds at any stream length (unlike a fixed-size
reservoir, whose sampling error grows with the stream).  Bucket counts
are plain integers keyed by bucket index, which makes ``merge`` exact,
associative and commutative — shard histograms merge into the same
counts a single stream would produce (property-tested).

:class:`MetricsRegistry` holds named counters, gauges and histograms
(with optional labels) and renders the Prometheus text exposition
format for the HTTP ``/metrics`` endpoint.  The canonical metric
vocabulary — shared by the serving stack *and* the trainer, so both
speak the same names — lives in :data:`METRIC_NAMES`.

:class:`MetricsCollector` folds :class:`~repro.obs.bus.EventBus`
events into a registry; it is the only place event kinds are mapped to
metric names, so in-process shards and forwarded worker events produce
identical registries (the parallel-parity test pins this).
"""

from __future__ import annotations

import math

import numpy as np

#: Default geometric bucket growth: ~9.6%-wide buckets, so quantiles
#: read from the histogram are within <10% relative error of the exact
#: stream quantile — at 50 k samples as at 50 M.
DEFAULT_GROWTH = 2.0 ** (1.0 / 7.5)

# ----------------------------------------------------------------------
# Canonical metric vocabulary (one naming scheme for trainer + server)
# ----------------------------------------------------------------------
#: name -> (type, help).  ``phase`` labels distinguish the producers:
#: ``phase="serving"`` (request/vector caches) vs ``phase="training"``
#: (the flash-mode engine) — same names, one vocabulary.
METRIC_NAMES = {
    "repro_reuse_requests_total":
        ("counter", "Rows offered to a reuse cache"),
    "repro_reuse_hits_total":
        ("counter", "Rows served from a reuse cache"),
    "repro_reuse_cross_hits_total":
        ("counter", "Rows reused across batches (persistent hits)"),
    "repro_reuse_intra_hits_total":
        ("counter", "Rows deduplicated within one batch"),
    "repro_reuse_computed_total":
        ("counter", "Rows that fell through to the model"),
    "repro_reuse_inserted_total":
        ("counter", "Rows admitted into a cache"),
    "repro_reuse_rejected_total":
        ("counter", "Rows refused by capacity or admission policy"),
    "repro_reuse_expired_total":
        ("counter", "Cache lines invalidated by TTL"),
    "repro_reuse_collisions_total":
        ("counter", "Signature matches rejected by the exact check"),
    "repro_reuse_evicted_total":
        ("counter", "Cache lines displaced by the eviction policy"),
    "repro_reuse_replicated_total":
        ("counter", "Rows pushed to peer shards by hot-key replication"),
    "repro_reuse_hit_rate":
        ("gauge", "Lifetime hit fraction of the reuse caches"),
    "repro_reuse_flash_clears_total":
        ("counter", "Session clears (flash-mode batch resets and "
                    "controller-triggered cache flushes)"),
    "repro_reuse_signature_bits":
        ("gauge", "Active RPQ signature length"),
    "repro_serving_requests_total":
        ("counter", "Requests served (rows through shard batches)"),
    "repro_serving_batches_total":
        ("counter", "Micro-batches executed"),
    "repro_serving_batch_size":
        ("histogram", "Rows per executed micro-batch"),
    "repro_serving_latency_seconds":
        ("histogram", "Per-request serve latency"),
    "repro_serving_shard_requests":
        ("gauge", "Requests routed to one shard"),
    "repro_serving_shard_balance":
        ("gauge", "Max/mean request load across shards (1.0 = even)"),
    "repro_serving_recoveries_total":
        ("counter", "Worker respawns performed by the supervisor"),
    "repro_serving_snapshot_writes_total":
        ("counter", "Cache snapshots persisted"),
    "repro_serving_snapshot_restores_total":
        ("counter", "Cache snapshots restored"),
    "repro_l2_hits_total":
        ("counter", "Shared-L2 lookups served from the store"),
    "repro_l2_misses_total":
        ("counter", "Shared-L2 lookups that missed"),
    "repro_l2_inserts_total":
        ("counter", "Rows written through to the shared L2"),
    "repro_l2_flushes_total":
        ("counter", "Shared-L2 stores persisted to disk"),
    "repro_l2_loads_total":
        ("counter", "Shared-L2 stores loaded from disk"),
    "repro_router_hot_key_promotions_total":
        ("counter", "Signatures promoted to the replicated set"),
    "repro_controller_decisions_total":
        ("counter", "Adaptive-policy decisions applied"),
    "repro_training_epochs_total":
        ("counter", "Training epochs completed"),
    "repro_training_loss":
        ("gauge", "Last epoch's mean training loss"),
    "repro_training_accuracy":
        ("gauge", "Last epoch's training accuracy"),
    "repro_bus_events_total":
        ("counter", "Events emitted on the telemetry bus"),
    "repro_bus_dropped_total":
        ("counter", "Events dropped by bounded subscriber queues"),
}


class LogHistogram:
    """Mergeable log-bucketed histogram of a positive value stream.

    A value ``v > 0`` lands in bucket ``floor(log(v)/log(growth))`` —
    a pure function of the value, so identical streams bucket
    identically no matter how they are split across shards, and merge
    is exact integer addition (associative + commutative).  Non-
    positive values are counted in a dedicated zero bucket.  Exact
    ``count``/``sum``/``min``/``max`` ride along; quantiles report the
    geometric midpoint of the selected bucket, clamped to the observed
    range.
    """

    __slots__ = ("growth", "_log_growth", "buckets", "zeros", "count",
                 "total", "min", "max")

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_growth)

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def record_many(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.record(float(value))

    # -- merging --------------------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold another histogram in (in place); returns ``self``."""
        if not isinstance(other, LogHistogram):
            raise TypeError("can only merge another LogHistogram")
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different "
                             "bucket growth")
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @classmethod
    def merged(cls, histograms) -> "LogHistogram":
        histograms = list(histograms)
        growth = histograms[0].growth if histograms else DEFAULT_GROWTH
        result = cls(growth)
        for histogram in histograms:
            result.merge(histogram)
        return result

    # -- reading --------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` (nearest rank, bucket midpoint).

        Within a factor of :attr:`growth` of the exact stream
        percentile — the bucket-width error bound the regression suite
        pins against the exact/reservoir oracles.
        """
        if not self.count:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q / 100.0 * self.count)))
        cumulative = self.zeros
        if rank <= cumulative:
            return max(0.0, self.min)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if rank <= cumulative:
                midpoint = self.growth ** (index + 0.5)
                return float(min(self.max, max(self.min, midpoint)))
        return float(self.max)  # pragma: no cover — rank <= count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> tuple:
        """Merge-order-independent identity (for equality assertions)."""
        return (self.growth, self.zeros, self.count,
                tuple(sorted(self.buckets.items())))

    def __eq__(self, other) -> bool:
        return isinstance(other, LogHistogram) \
            and self.state() == other.state()

    def __hash__(self):  # pragma: no cover — not used as a key
        return hash(self.state())

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict:
        return {
            "growth": self.growth,
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(index): bucket_count
                        for index, bucket_count in sorted(
                            self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LogHistogram":
        histogram = cls(payload.get("growth", DEFAULT_GROWTH))
        histogram.zeros = int(payload.get("zeros", 0))
        histogram.count = int(payload.get("count", 0))
        histogram.total = float(payload.get("total", 0.0))
        histogram.min = math.inf if payload.get("min") is None \
            else float(payload["min"])
        histogram.max = -math.inf if payload.get("max") is None \
            else float(payload["max"])
        histogram.buckets = {int(index): int(bucket_count)
                             for index, bucket_count in
                             payload.get("buckets", {}).items()}
        return histogram


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Named counters, gauges and histograms with optional labels."""

    def __init__(self):
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, LogHistogram] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted((str(key), str(value))
                                   for key, value in labels.items())))

    # -- writing --------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = self._key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[self._key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name, **labels).record(value)

    def histogram(self, name: str, **labels) -> LogHistogram:
        key = self._key(name, labels)
        if key not in self._histograms:
            self._histograms[key] = LogHistogram()
        return self._histograms[key]

    # -- reading --------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        return self._counters.get(self._key(name, labels), 0.0)

    def gauge(self, name: str, **labels) -> float:
        return self._gauges.get(self._key(name, labels), 0.0)

    def counters_dict(self) -> dict[str, float]:
        return {name + _label_suffix(labels): value
                for (name, labels), value in sorted(self._counters.items())}

    def gauges_dict(self) -> dict[str, float]:
        return {name + _label_suffix(labels): value
                for (name, labels), value in sorted(self._gauges.items())}

    def histograms_dict(self) -> dict[str, LogHistogram]:
        return {name + _label_suffix(labels): histogram
                for (name, labels), histogram in
                sorted(self._histograms.items())}

    def state(self) -> dict:
        """Comparable full state (the parity test's equality basis)."""
        return {
            "counters": self.counters_dict(),
            "gauges": self.gauges_dict(),
            "histograms": {series: histogram.state() for series, histogram
                           in self.histograms_dict().items()},
        }

    # -- Prometheus text exposition ------------------------------------
    def render_prometheus(self) -> str:
        """The ``/metrics`` payload (text format 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()

        def header(name: str, default_type: str) -> None:
            if name in seen_headers:
                return
            seen_headers.add(name)
            metric_type, help_text = METRIC_NAMES.get(
                name, (default_type, name.replace("_", " ")))
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")

        for (name, labels), value in sorted(self._counters.items()):
            header(name, "counter")
            lines.append(f"{name}{_label_suffix(labels)} {value:g}")
        for (name, labels), value in sorted(self._gauges.items()):
            header(name, "gauge")
            lines.append(f"{name}{_label_suffix(labels)} {value:g}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            header(name, "histogram")
            cumulative = histogram.zeros
            if cumulative:
                bucket_labels = dict(labels)
                bucket_labels["le"] = "0"
                lines.append(f"{name}_bucket"
                             f"{_label_suffix(tuple(sorted(bucket_labels.items())))}"
                             f" {cumulative}")
            for index in sorted(histogram.buckets):
                cumulative += histogram.buckets[index]
                edge = histogram.growth ** (index + 1)
                bucket_labels = dict(labels)
                bucket_labels["le"] = f"{edge:.6g}"
                lines.append(f"{name}_bucket"
                             f"{_label_suffix(tuple(sorted(bucket_labels.items())))}"
                             f" {cumulative}")
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(f"{name}_bucket"
                         f"{_label_suffix(tuple(sorted(inf_labels.items())))}"
                         f" {histogram.count}")
            lines.append(f"{name}_sum{_label_suffix(labels)} "
                         f"{histogram.total:g}")
            lines.append(f"{name}_count{_label_suffix(labels)} "
                         f"{histogram.count}")
        return "\n".join(lines) + "\n"


#: Cache-counter delta fields a ``serve.batch``/``serve.vector_batch``
#: event carries, in the CacheCounters vocabulary.
REUSE_DELTA_KEYS = ("requests", "cross_hits", "intra_hits", "computed",
                    "inserted", "rejected", "expired", "collisions",
                    "evicted", "replicated")


class MetricsCollector:
    """Fold bus events into a :class:`MetricsRegistry`.

    One mapping from event kinds to canonical metric names — shared by
    the in-process server, the parallel supervisor (which re-emits
    forwarded worker events) and the trainer, so every producer builds
    the same registry from the same traffic.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self.handled = 0
        self._shard_requests: dict[str, int] = {}

    # -- event dispatch -------------------------------------------------
    def handle(self, event) -> None:
        self.handled += 1
        handler = getattr(self, "_on_" + event.kind.replace(".", "_"),
                          None)
        if handler is not None:
            handler(event)

    def drain(self, subscription) -> int:
        events = subscription.drain()
        for event in events:
            self.handle(event)
        return len(events)

    def _fold_reuse_delta(self, payload: dict, granularity: str) -> None:
        registry = self.registry
        for key in REUSE_DELTA_KEYS:
            delta = int(payload.get(key, 0))
            if delta:
                registry.inc(f"repro_reuse_{key}_total", delta,
                             phase="serving", granularity=granularity)
        hits = int(payload.get("cross_hits", 0)) \
            + int(payload.get("intra_hits", 0))
        if hits:
            registry.inc("repro_reuse_hits_total", hits,
                         phase="serving", granularity=granularity)

    def _update_shard_balance(self, shard: str, rows: int) -> None:
        registry = self.registry
        self._shard_requests[shard] = \
            self._shard_requests.get(shard, 0) + rows
        registry.set_gauge("repro_serving_shard_requests",
                           self._shard_requests[shard], shard=shard)
        loads = list(self._shard_requests.values())
        mean = sum(loads) / len(loads)
        registry.set_gauge("repro_serving_shard_balance",
                           max(loads) / mean if mean else 0.0)

    # -- per-kind handlers ---------------------------------------------
    def _on_serve_batch(self, event) -> None:
        payload = event.payload
        registry = self.registry
        rows = int(payload.get("rows", 0))
        registry.inc("repro_serving_requests_total", rows)
        self._fold_reuse_delta(payload.get("counters", {}), "request")
        for key in ("l2_hits", "l2_misses", "l2_inserts"):
            delta = int(payload.get(key, 0))
            if delta:
                registry.inc("repro_l2_" + key[3:] + "_total", delta)
        self._update_shard_balance(str(payload.get("shard", event.source)),
                                   rows)

    def _on_serve_vector_batch(self, event) -> None:
        self._fold_reuse_delta(event.payload.get("counters", {}), "vector")

    def _on_serve_window(self, event) -> None:
        payload = event.payload
        self.registry.set_gauge("repro_reuse_hit_rate",
                                float(payload.get("hit_rate", 0.0)),
                                phase="serving")
        if payload.get("signature_bits") is not None:
            self.registry.set_gauge("repro_reuse_signature_bits",
                                    float(payload["signature_bits"]),
                                    phase="serving")

    def _on_batcher_batch(self, event) -> None:
        self.registry.inc("repro_serving_batches_total")
        self.registry.observe("repro_serving_batch_size",
                              float(event.payload.get("size", 0)))

    def _on_batcher_latency(self, event) -> None:
        self.registry.observe("repro_serving_latency_seconds",
                              float(event.payload.get("latency_s", 0.0)))

    def _on_session_clear(self, event) -> None:
        self.registry.inc("repro_reuse_flash_clears_total",
                          int(event.payload.get("clears", 1)),
                          phase="serving")

    def _on_router_promote(self, event) -> None:
        self.registry.inc("repro_router_hot_key_promotions_total")

    def _on_l2_flush(self, event) -> None:
        self.registry.inc("repro_l2_flushes_total")

    def _on_l2_load(self, event) -> None:
        self.registry.inc("repro_l2_loads_total")

    def _on_snapshot_write(self, event) -> None:
        self.registry.inc("repro_serving_snapshot_writes_total")

    def _on_snapshot_restore(self, event) -> None:
        self.registry.inc("repro_serving_snapshot_restores_total")

    def _on_worker_recovered(self, event) -> None:
        self.registry.inc("repro_serving_recoveries_total")

    def _on_controller_decision(self, event) -> None:
        self.registry.inc("repro_controller_decisions_total",
                          action=str(event.payload.get("action",
                                                       "unknown")))

    def _on_training_epoch(self, event) -> None:
        payload = event.payload
        registry = self.registry
        registry.inc("repro_training_epochs_total")
        for key, name in (("vectors", "repro_reuse_requests_total"),
                          ("hits", "repro_reuse_hits_total"),
                          ("flash_clears",
                           "repro_reuse_flash_clears_total")):
            delta = int(payload.get(key, 0))
            if delta:
                registry.inc(name, delta, phase="training")
        registry.set_gauge("repro_reuse_hit_rate",
                           float(payload.get("hit_rate", 0.0)),
                           phase="training")
        registry.set_gauge("repro_reuse_signature_bits",
                           float(payload.get("signature_bits", 0)),
                           phase="training")
        if payload.get("loss") is not None:
            registry.set_gauge("repro_training_loss",
                               float(payload["loss"]))
        if payload.get("accuracy") is not None:
            registry.set_gauge("repro_training_accuracy",
                               float(payload["accuracy"]))
