"""Golden-run regression tests.

Two tiny fixed-seed training runs — one CNN, one transformer — are
pinned against reference histories committed in ``tests/golden/``.  Any
change to the numerics of the training stack (weight init, batch
order, layer forward/backward, optimizer updates) shows up here as a
loss-curve mismatch instead of silently shifting every accuracy figure.

The suite also asserts the two invariants the functional sweep relies
on: an :class:`ExactCountingEngine` run is bit-identical to engine-less
training, and the reuse engine's accuracy stays within the tolerance
this reproduction uses at miniature scale (0.3 absolute, the slack
established in ``test_integration.py`` for the paper's Figure 13
claim).

Regenerate the golden files after an *intentional* numeric change::

    GOLDEN_REGENERATE=1 PYTHONPATH=src python -m pytest tests/test_golden_runs.py
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.functional_sweep import FunctionalPoint, train_point
from repro.core.reuse import ExactCountingEngine, ReuseEngine
from repro.analysis.functional_sweep import mercury_config_for
from repro.training import TrainingResult

GOLDEN_DIR = Path(__file__).parent / "golden"

# The pinned runs.  Seeds are chosen so the baseline actually learns at
# this scale; changing a point here requires regenerating its file.
GOLDEN_POINTS = {
    "cnn_squeezenet": FunctionalPoint(model="squeezenet",
                                      dataset_scale="small", epochs=4,
                                      seed=7),
    "transformer": FunctionalPoint(model="transformer",
                                   dataset_scale="tiny", epochs=3, seed=0),
}

# Baseline-vs-reuse accuracy slack at miniature scale (Figure 13 is
# within ~1% at paper scale; tiny validation sets are far noisier).
ACCURACY_TOLERANCE = 0.3


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.fixture(scope="module")
def golden_runs() -> dict[str, TrainingResult]:
    """Engine-less reference runs, trained once per test session."""
    return {name: train_point(point, None)[0]
            for name, point in GOLDEN_POINTS.items()}


def test_regenerate_golden_files(golden_runs):
    """Writes the reference files when GOLDEN_REGENERATE is set."""
    if not os.environ.get("GOLDEN_REGENERATE"):
        pytest.skip("set GOLDEN_REGENERATE=1 to rewrite the golden files")
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, point in GOLDEN_POINTS.items():
        payload = {"point": asdict(point),
                   "result": golden_runs[name].to_dict()}
        golden_path(name).write_text(json.dumps(payload, indent=2,
                                                sort_keys=True))


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_loss_curve_matches_golden(name, golden_runs):
    payload = json.loads(golden_path(name).read_text())
    # The committed file must describe the run we just executed;
    # otherwise the curves are incomparable and need regenerating.
    assert payload["point"] == asdict(GOLDEN_POINTS[name])
    reference = TrainingResult.from_dict(payload["result"])
    result = golden_runs[name]

    assert result.iterations == reference.iterations
    np.testing.assert_allclose(result.iteration_losses,
                               reference.iteration_losses,
                               rtol=1e-5, atol=1e-8)
    np.testing.assert_allclose(result.epoch_losses, reference.epoch_losses,
                               rtol=1e-5, atol=1e-8)
    np.testing.assert_allclose(result.epoch_train_accuracy,
                               reference.epoch_train_accuracy, atol=1e-6)
    assert result.final_validation_accuracy == pytest.approx(
        reference.final_validation_accuracy, abs=1e-6)
    # The pinned runs are meant to show learning, not just determinism.
    assert result.epoch_losses[-1] < result.epoch_losses[0]


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_exact_counting_engine_is_bit_identical(name, golden_runs):
    """The baseline engine must not perturb training at all."""
    point = GOLDEN_POINTS[name]
    counted, counted_model = train_point(point, ExactCountingEngine())
    reference = golden_runs[name]

    assert counted.iteration_losses == reference.iteration_losses
    assert counted.epoch_losses == reference.epoch_losses
    assert counted.epoch_train_accuracy == reference.epoch_train_accuracy
    assert counted.final_validation_accuracy == \
        reference.final_validation_accuracy

    _, bare_model = train_point(point, None)
    for bare, with_engine in zip(bare_model.parameters(),
                                 counted_model.parameters()):
        assert np.array_equal(bare.value, with_engine.value)


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_reuse_accuracy_within_tolerance(name, golden_runs):
    """The Figure 13 claim at miniature scale, pinned per golden point."""
    point = GOLDEN_POINTS[name]
    reuse, _ = train_point(point, ReuseEngine(mercury_config_for(point)))
    baseline = golden_runs[name]
    delta = (reuse.final_validation_accuracy
             - baseline.final_validation_accuracy)
    assert abs(delta) <= ACCURACY_TOLERANCE
    # Reuse training still converges.
    assert reuse.epoch_losses[-1] < reuse.epoch_losses[0]
