"""Attention layers.

The paper (§III-C4) describes the attention computation it accelerates
as ``W = X X^T`` followed by ``Y = W X`` — a non-parametric weighted
average over the sequence.  :class:`SelfAttention` implements exactly
that formulation and routes both matrix products through the compute
engine (the rows of ``X`` are the input vectors whose similarity is
exploited, just like a fully-connected layer).

:class:`MultiHeadSelfAttention` is the standard parametric variant used
inside the transformer model of the model zoo; its Q/K/V projections are
Linear layers, so they already benefit from reuse, and its score and
context products are routed through the engine as well.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import softmax
from repro.nn.layers.linear import Linear
from repro.nn.module import Module


class SelfAttention(Module):
    """The paper's simplified attention: ``Y = (X X^T) X`` per sequence."""

    def __init__(self, scale: bool = True):
        super().__init__()
        self.scale = scale
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("SelfAttention expects (batch, seq, features)")
        batch, seq, features = x.shape
        scale = 1.0 / np.sqrt(features) if self.scale else 1.0

        outputs = np.empty_like(x)
        weights = np.empty((batch, seq, seq), dtype=x.dtype)
        for b in range(batch):
            xb = x[b]
            if self.engine is not None:
                scores = self.engine.matmul(xb, xb.T, layer=self.layer_name,
                                            phase="forward")
            else:
                scores = xb @ xb.T
            scores = scores * scale
            if self.engine is not None:
                yb = self.engine.matmul(scores, xb, layer=self.layer_name,
                                        phase="forward")
            else:
                yb = scores @ xb
            weights[b] = scores
            outputs[b] = yb

        self._cache = (x, weights, scale)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x, weights, scale = self._cache
        batch, seq, features = x.shape
        grad_input = np.zeros_like(x)
        for b in range(batch):
            xb, wb, gb = x[b], weights[b], grad_output[b]
            # Y = W X with W = scale * X X^T
            grad_w = gb @ xb.T
            grad_x_from_y = wb.T @ gb
            # dW/dX contribution: W = scale * X X^T
            grad_x_from_w = scale * (grad_w + grad_w.T) @ xb
            grad_input[b] = grad_x_from_y + grad_x_from_w
        return grad_input


class MultiHeadSelfAttention(Module):
    """Standard multi-head self attention with learned projections."""

    def __init__(self, embed_dim: int, num_heads: int, seed: int | None = None):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads

        base = 0 if seed is None else seed
        self.q_proj = Linear(embed_dim, embed_dim, seed=base + 1)
        self.k_proj = Linear(embed_dim, embed_dim, seed=base + 2)
        self.v_proj = Linear(embed_dim, embed_dim, seed=base + 3)
        self.out_proj = Linear(embed_dim, embed_dim, seed=base + 4)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k) * scale
        attn = softmax(scores, axis=-1)
        context = np.einsum("bhqk,bhkd->bhqd", attn, v)

        merged = self._merge_heads(context)
        out = self.out_proj(merged)
        self._cache = (q, k, v, attn, scale)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale = self._cache

        grad_merged = self.out_proj.backward(grad_output)
        batch, seq, _ = grad_merged.shape
        grad_context = grad_merged.reshape(
            batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        grad_attn = np.einsum("bhqd,bhkd->bhqk", grad_context, v)
        grad_v = np.einsum("bhqk,bhqd->bhkd", attn, grad_context)

        # Softmax backward
        dot = np.sum(grad_attn * attn, axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - dot)
        grad_scores = grad_scores * scale

        grad_q = np.einsum("bhqk,bhkd->bhqd", grad_scores, k)
        grad_k = np.einsum("bhqk,bhqd->bhkd", grad_scores, q)

        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        return grad_x
