"""Package metadata and console entry points.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so the legacy
editable-install path (``pip install -e . --no-use-pep517``) works in
offline environments where the ``wheel`` package is unavailable.

The console scripts make the serving stack and the sweep runners
launchable without ``PYTHONPATH`` gymnastics once the package is
installed:

* ``repro-serve``  — stand up an :class:`repro.serving.InferenceServer`
  front end (``repro.serving.cli:serve_main``);
* ``repro-sweep``  — run the serving scenario sweep
  (``repro.analysis.serving_sweep:main``).
"""

from setuptools import find_packages, setup

setup(
    name="mercury-repro",
    version="0.4.0",
    description=("Reproduction of MERCURY (HPCA'23): accelerating DNN "
                 "training and serving by exploiting input similarity"),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.cli:serve_main",
            "repro-sweep=repro.analysis.serving_sweep:main",
        ],
    },
)
