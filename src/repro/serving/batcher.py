"""Asyncio micro-batching request queue.

Requests arrive one at a time; the accelerator-style backend wants
whole batches (and the reuse caches get their intra-batch dedup from
them).  :class:`MicroBatcher` sits between the two: ``submit`` enqueues
a payload and awaits its result, while a single collector task drains
the queue into batches bounded by ``max_batch_size`` and
``max_wait_s`` — a full batch leaves immediately, a partial one leaves
when its oldest request has waited long enough.  The queue itself is
bounded (``max_queue``), so a slow backend exerts backpressure on
producers instead of buffering without limit (the INFN-style
queued-scale-out behaviour under bursty load: absorb, then drain).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BatcherConfig:
    """Micro-batching knobs."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    max_queue: int = 1024

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")


@dataclass
class BatcherTelemetry:
    """Latency/batch-shape measurements of one batcher lifetime."""

    latencies_s: list = field(default_factory=list)
    batch_sizes: list = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    failed: int = 0

    def record_batch(self, size: int) -> None:
        self.batch_sizes.append(size)

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @classmethod
    def aggregate(cls, telemetries) -> "BatcherTelemetry":
        """Merge several batchers' telemetry (the sharded server's view).

        Latencies and batch shapes concatenate; counters sum.  Order
        within the merged lists is per-shard, which is irrelevant to
        every consumer (percentiles, means, counts).
        """
        total = cls()
        for telemetry in telemetries:
            total.latencies_s.extend(telemetry.latencies_s)
            total.batch_sizes.extend(telemetry.batch_sizes)
            total.submitted += telemetry.submitted
            total.completed += telemetry.completed
            total.failed += telemetry.failed
        return total


class _Pending:
    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload, future, enqueued_at):
        self.payload = payload
        self.future = future
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Bounded queue + collector loop around a batch-processing callable.

    ``process_batch(payloads: list) -> list`` is called with up to
    ``max_batch_size`` payloads and must return one result per payload
    in order; it runs inside the event loop (numpy work releases the
    GIL quickly enough at this scale).  Exceptions fail every request
    of the batch individually — the loop keeps serving.
    """

    def __init__(self, process_batch, config: BatcherConfig | None = None):
        self.process_batch = process_batch
        self.config = config or BatcherConfig()
        self.telemetry = BatcherTelemetry()
        self._queue: asyncio.Queue | None = None
        self._collector: asyncio.Task | None = None
        self._closed = False
        # Submissions past the _closed check but not yet resolved.
        # stop() must not cancel the collector while any exist: a put
        # that lands after queue.join() would otherwise orphan its
        # future forever.
        self._inflight = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._collector is not None:
            raise RuntimeError("batcher already started")
        self._closed = False
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._collector = asyncio.get_running_loop().create_task(
            self._collect())

    async def stop(self) -> None:
        """Drain in-flight submissions, then cancel the collector."""
        if self._collector is None:
            return
        self._closed = True
        # Wait for every admitted submission to resolve — not just the
        # queue to empty: a submit suspended at its put() has nothing
        # in the queue yet, and joining too early would strand it.
        while self._inflight:
            await asyncio.sleep(0)
        await self._queue.join()
        self._collector.cancel()
        try:
            await self._collector
        except asyncio.CancelledError:
            pass
        self._collector = None
        self._queue = None

    @property
    def running(self) -> bool:
        return self._collector is not None

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet collected)."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    async def submit(self, payload):
        """Enqueue one payload and await its result.

        Awaiting the bounded queue's ``put`` is the backpressure: when
        ``max_queue`` requests are in flight, producers stall here.
        """
        if self._queue is None or self._closed:
            raise RuntimeError("batcher is not running")
        future = asyncio.get_running_loop().create_future()
        pending = _Pending(payload, future, time.perf_counter())
        self.telemetry.submitted += 1
        self._inflight += 1
        try:
            await self._queue.put(pending)
            return await future
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------
    async def _collect(self) -> None:
        config = self.config
        queue = self._queue
        while True:
            first = await queue.get()
            batch = [first]
            deadline = first.enqueued_at + config.max_wait_s
            while len(batch) < config.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    # Deadline passed: take whatever is already queued,
                    # without waiting for more.
                    try:
                        batch.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                    continue
                try:
                    batch.append(await asyncio.wait_for(queue.get(),
                                                        timeout=remaining))
                except asyncio.TimeoutError:
                    break
            self._run_batch(batch)
            for _ in batch:
                queue.task_done()

    def _run_batch(self, batch: list) -> None:
        self.telemetry.record_batch(len(batch))
        try:
            results = self.process_batch([item.payload for item in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"process_batch returned {len(results)} results "
                    f"for {len(batch)} payloads")
        except Exception as error:  # noqa: BLE001 — fail requests, not loop
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        RuntimeError(f"batch processing failed: {error}"))
            self.telemetry.failed += len(batch)
            return
        now = time.perf_counter()
        for item, result in zip(batch, results):
            self.telemetry.latencies_s.append(now - item.enqueued_at)
            self.telemetry.completed += 1
            if not item.future.done():
                item.future.set_result(result)
