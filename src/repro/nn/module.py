"""Base classes for layers: ``Parameter`` and ``Module``.

The framework deliberately avoids a tape-based autograd.  Each layer
caches what it needs during ``forward`` and implements ``backward``
explicitly, mirroring how the paper describes forward and backward
propagation as separate convolution / matrix-multiplication passes on
the accelerator (§II-C of the paper).
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class for all layers and composite networks.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Child
    modules and parameters assigned as attributes are discovered
    automatically by :meth:`parameters` and :meth:`modules`.
    """

    def __init__(self):
        self.training = True
        # Optional compute engine (see repro.core.reuse.ReuseEngine).
        # When set on a layer that performs dot products, the layer
        # routes its matrix multiplications through the engine so
        # MERCURY can skip similar computations.
        self.engine = None
        # A stable name used to key signature tables saved between the
        # forward and backward passes; set by Sequential / models.
        self.layer_name = self.__class__.__name__

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs for this module and children."""
        for attr, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{attr}", value)
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(
                            prefix=f"{prefix}{attr}.{i}.")
                    elif isinstance(item, Parameter):
                        yield (f"{prefix}{attr}.{i}", item)

    def parameters(self) -> list:
        """Return all trainable parameters of this module and children."""
        return [p for _, p in self.named_parameters()]

    def modules(self):
        """Yield this module and all child modules, depth first."""
        yield self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Modes and engines
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def set_engine(self, engine) -> "Module":
        """Attach a compute engine (e.g. a MERCURY ReuseEngine) to every
        layer that performs dot products."""
        for m in self.modules():
            m.engine = engine
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


def assign_unique_layer_names(root: Module, prefix: str = "layer") -> Module:
    """Give every module in ``root`` a unique ``layer_name``.

    MERCURY keys its per-layer signature tables and statistics by
    ``layer_name``; composite models (ResNet blocks, Inception branches,
    ...) contain many instances of the same class, so the default
    class-name value would collide.  Model builders call this once after
    construction.
    """
    for index, module in enumerate(root.modules()):
        module.layer_name = f"{prefix}{index}:{module.__class__.__name__}"
    return root
