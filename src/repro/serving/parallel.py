"""Process-parallel serving: the hash-ring shards as real workers.

:class:`~repro.serving.server.InferenceServer` models its N shards as
independent workers but executes them serially under one GIL — its
``simulated_makespan_s`` *predicts* the scale-out win.  This module
measures it: :class:`ParallelInferenceServer` runs each shard as a real
worker process (``multiprocessing``, spawn context — import-safe on
every platform) owning its own :class:`~repro.core.session.ReuseSession`
caches, vector engine and batch executor, behind the same
consistent-hash router.  The replication move mirrors the paper's
hardware scale-out of the compute/reuse unit.

Determinism is inherited, not re-implemented: the parent routes and
forms batches with an in-process :class:`InferenceServer` front — the
same signature hashing, the same collector-equivalent batch composition
— and each worker applies its batch stream through the same
``_process_shard_batch`` path.  Because shard streams are independent
(each cache only ever sees its own shard's keys), executing them in
parallel preserves every cache decision of the single-process replay,
and the ``request_exact`` + ``per_request`` configuration stays
byte-identical to the engine-less oracle.

Robustness is first-class.  The supervisor inside :meth:`replay`
detects worker death (a poison task crashing the process, an injected
kill) and hangs (no progress within ``worker_timeout_s``), then
recovers: terminate, respawn with fresh queues (a SIGKILL mid-queue
operation can poison the old ones), warm-restore from the worker's
latest on-disk :meth:`snapshot` and re-dispatch every batch at or after
the snapshot's watermark.  Re-applied batches reproduce the exact cache
transitions the uninterrupted run would have made, so the recovered run
converges to the same outputs *and* the same hit counters.
:class:`FaultInjection` (``kill_after_batches``) makes the crash path
testable and drives the CI smoke job.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import Telemetry
from repro.obs.bus import Event
from repro.obs.metrics import LogHistogram
from repro.serving.batcher import BatcherConfig
from repro.serving.engine import ServingPolicy
from repro.serving.loadgen import Request
from repro.serving.server import (SNAPSHOT_MANIFEST, InferenceServer,
                                  ServingReport)

#: Exit code a fault-injected worker dies with (distinguishable from
#: crashes in test assertions).
FAULT_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic worker-failure hook for recovery tests and CI.

    Applies to one worker's *first* incarnation only — the respawned
    generation runs clean, so a recovery under test cannot be re-killed
    into a respawn loop.  ``mode="kill"`` exits the process hard (no
    ack, no cleanup) just before processing its
    ``kill_after_batches``-th batch; ``mode="hang"`` stops responding
    instead, exercising the supervisor's timeout path.
    """

    worker: int = 0
    kill_after_batches: int = 2
    mode: str = "kill"

    def __post_init__(self):
        if self.worker < 0:
            raise ValueError("worker must be non-negative")
        if self.kill_after_batches < 0:
            raise ValueError("kill_after_batches must be non-negative")
        if self.mode not in ("kill", "hang"):
            raise ValueError(f"unknown fault mode {self.mode!r}")


def _worker_main(index: int, model, policy: ServingPolicy,
                 batcher_config: BatcherConfig, snapshot_dir: str,
                 snapshot_every_batches: int, telemetry_window: int,
                 fault: FaultInjection | None, tasks, results) -> None:
    """One shard worker: a single-shard server fed batches over a queue.

    Module-level (spawn-picklable) on purpose.  Protocol — requests:
    ``("batch", seq, stacked_payloads)``, ``("stats",)``,
    ``("snapshot",)``, ``("exit",)``; replies: ``("ready", watermark)``
    once at startup, then ``("done", seq, outputs, compute_s, events)``,
    ``("stats", payload)`` and ``("snapshotted", batch_count)``.

    ``telemetry_window`` > 0 switches on a worker-local telemetry
    bundle: the batch's events are drained off a forwarding
    subscription and ride the ack home as ``(kind, source, payload)``
    tuples (the ``events`` slot — an empty list with telemetry off),
    where the supervisor re-emits them onto its own bus.

    The worker snapshots its cache state every
    ``snapshot_every_batches`` acked batches — *after* the ack, so the
    snapshot's watermark never exceeds what the supervisor has
    received, and re-dispatching from the watermark can only replay
    batches whose state the restored cache has not yet absorbed.
    """
    telemetry = Telemetry(window_batches=telemetry_window) \
        if telemetry_window else None
    server = InferenceServer(model, policy, batcher_config, shards=1,
                             telemetry=telemetry)
    forward = telemetry.bus.subscribe(name="forward") \
        if telemetry is not None else None
    path = Path(snapshot_dir)
    watermark = 0
    if (path / SNAPSHOT_MANIFEST).exists():
        manifest = server.restore(path)
        watermark = int(manifest["shard_batch_counts"][0])
    results.put(("ready", watermark))

    shard = server.shards[0]
    batches_done = watermark
    while True:
        message = tasks.get()
        kind = message[0]
        if kind == "exit":
            return
        if kind == "stats":
            results.put(("stats", {
                "shard": index,
                "requests": shard.batcher.telemetry.rows,
                "batches": shard.batch_count,
                "counters": server.cache_counters().to_dict(),
                "occupancy": shard.stats_row()["occupancy"],
            }))
            continue
        if kind == "snapshot":
            server.snapshot(path)
            results.put(("snapshotted", shard.batch_count))
            continue
        seq, stacked = message[1], message[2]
        if fault is not None and fault.worker == index \
                and batches_done == fault.kill_after_batches:
            if fault.mode == "hang":
                while True:  # pragma: no cover — killed by supervisor
                    time.sleep(1.0)
            os._exit(FAULT_EXIT_CODE)
        compute_start = time.perf_counter()
        outputs = server._process_shard_batch(shard, list(stacked))
        compute_s = time.perf_counter() - compute_start
        shard.batcher.telemetry.record_batch(len(stacked))
        events = [event.as_tuple() for event in forward.drain()] \
            if forward is not None else []
        results.put(("done", seq, np.stack(outputs), compute_s, events))
        batches_done += 1
        if snapshot_every_batches \
                and batches_done % snapshot_every_batches == 0:
            server.snapshot(path)


class _Worker:
    """Supervisor-side handle of one shard worker process."""

    def __init__(self, index: int, spawn_args: tuple, context,
                 fault: FaultInjection | None):
        self.index = index
        self._spawn_args = spawn_args
        self._context = context
        self.generation = 0
        self.watermark = 0
        self.process = None
        self.tasks = None
        self.results = None
        self._start(fault)

    def _start(self, fault: FaultInjection | None) -> None:
        # Fresh queues per generation: a worker killed mid-put/get can
        # leave the old queue's internal state unusable.
        self.tasks = self._context.Queue()
        self.results = self._context.Queue()
        self.process = self._context.Process(
            target=_worker_main,
            args=(*self._spawn_args, fault, self.tasks, self.results),
            daemon=True)
        self.process.start()

    def wait_ready(self, timeout_s: float) -> int:
        kind, watermark = self.results.get(timeout=timeout_s)
        if kind != "ready":  # pragma: no cover — protocol guard
            raise RuntimeError(f"worker {self.index} sent {kind!r} "
                               f"before ready")
        self.watermark = int(watermark)
        return self.watermark

    def drain(self) -> list:
        """Salvage whatever replies are already queued (best-effort)."""
        salvaged = []
        while True:
            try:
                salvaged.append(self.results.get_nowait())
            except (queue_module.Empty, OSError, EOFError):
                return salvaged

    def respawn(self) -> list:
        """Terminate (if needed), salvage late acks, start clean.

        Returns the salvaged replies; the respawned generation carries
        no fault injection.  The new incarnation warm-restores from the
        shard's snapshot directory inside ``_worker_main``.
        """
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=10)
        salvaged = self.drain()
        for old in (self.tasks, self.results):
            old.close()
            old.cancel_join_thread()
        self.generation += 1
        self._start(fault=None)
        return salvaged

    def shutdown(self) -> None:
        try:
            self.tasks.put(("exit",))
            self.process.join(timeout=5)
        except (OSError, ValueError):  # pragma: no cover — dead queue
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        for old in (self.tasks, self.results):
            old.close()
            old.cancel_join_thread()


class ParallelInferenceServer:
    """N hash-ring shards as supervised worker processes.

    Routing, batch composition and the exactness oracle come from an
    in-process :class:`InferenceServer` front configured with the same
    shard count, so a parallel replay partitions and batches requests
    exactly as the single-process replay would — the workers only move
    *where* each shard's stream executes.  Use as a context manager (or
    call :meth:`start`/:meth:`stop`); workers persist across replays,
    so repeated replays on warm workers measure steady-state speed.
    """

    def __init__(self, model, policy: ServingPolicy | None = None,
                 batcher: BatcherConfig | None = None, workers: int = 4,
                 snapshot_dir=None, snapshot_every_batches: int = 8,
                 worker_timeout_s: float = 60.0, max_respawns: int = 3,
                 fault: FaultInjection | None = None, telemetry=None):
        if telemetry is not None and telemetry.controller is not None:
            # Each worker owns its caches in another process; the
            # supervisor cannot retune them mid-replay, so online
            # policy control is an in-process-server feature.
            raise ValueError("the adaptive policy controller needs the "
                             "in-process server; run the parallel "
                             "server with a controller-less Telemetry")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if snapshot_every_batches < 0:
            raise ValueError("snapshot_every_batches must be non-negative")
        if worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        self.model = model
        self.policy = policy or ServingPolicy()
        if self.policy.replicate_top > 0:
            # Workers are isolated processes: there is no shared memory
            # to push replicated rows through, so a parallel run with
            # replication on could never match the in-process replay.
            raise ValueError("hot-key replication needs shards that "
                             "share memory; it is not supported under "
                             "the process-parallel server")
        self.batcher_config = batcher or BatcherConfig()
        self.num_workers = workers
        self.snapshot_every_batches = snapshot_every_batches
        self.worker_timeout_s = worker_timeout_s
        self.max_respawns = max_respawns
        self.fault = fault
        self.telemetry = telemetry
        self.recoveries = 0

        self._front = InferenceServer(model, self.policy,
                                      self.batcher_config, shards=workers)
        # Worker-side model time across replays (sum of acked per-batch
        # compute), mirroring InferenceServer._compute_time_s.
        self._compute_time_s = 0.0
        self._context = multiprocessing.get_context("spawn")
        self._owns_snapshot_dir = snapshot_dir is None
        self._snapshot_root = Path(snapshot_dir) if snapshot_dir is not None \
            else Path(tempfile.mkdtemp(prefix="repro-serving-workers-"))
        self._workers: list[_Worker] | None = None

    # -- lifecycle ------------------------------------------------------
    def worker_snapshot_dir(self, index: int) -> Path:
        return self._snapshot_root / f"worker-{index}"

    def start(self) -> None:
        """Spawn every worker and wait until all report ready."""
        if self._workers is not None:
            raise RuntimeError("workers already started")
        self._snapshot_root.mkdir(parents=True, exist_ok=True)
        self._workers = []
        for index in range(self.num_workers):
            directory = self.worker_snapshot_dir(index)
            directory.mkdir(parents=True, exist_ok=True)
            spawn_args = (index, self.model, self.policy,
                          self.batcher_config, str(directory),
                          self.snapshot_every_batches,
                          self.telemetry.window_batches
                          if self.telemetry is not None else 0)
            self._workers.append(_Worker(index, spawn_args, self._context,
                                         self.fault))
        for worker in self._workers:
            worker.wait_ready(self.worker_timeout_s)

    def stop(self) -> None:
        if self._workers is None:
            return
        for worker in self._workers:
            worker.shutdown()
        self._workers = None
        if self._owns_snapshot_dir:
            shutil.rmtree(self._snapshot_root, ignore_errors=True)

    def __enter__(self) -> "ParallelInferenceServer":
        if self._workers is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- delegated determinism helpers ----------------------------------
    def oracle_outputs(self, payloads: np.ndarray) -> np.ndarray:
        """Engine-less per-request forwards (same oracle as the front)."""
        return self._front.oracle_outputs(payloads)

    def shard_for(self, payload) -> int:
        return self._front.shard_for(payload)

    # -- worker RPC helpers ---------------------------------------------
    def _collect_stats(self) -> list[dict]:
        for worker in self._workers:
            worker.tasks.put(("stats",))
        rows = []
        for worker in self._workers:
            while True:
                reply = worker.results.get(timeout=self.worker_timeout_s)
                if reply[0] == "stats":
                    rows.append(reply[1])
                    break
        return rows

    def snapshot_workers(self) -> list[int]:
        """Force every worker to persist its cache state now."""
        if self._workers is None:
            raise RuntimeError("workers are not running")
        for worker in self._workers:
            worker.tasks.put(("snapshot",))
        counts = []
        for worker in self._workers:
            while True:
                reply = worker.results.get(timeout=self.worker_timeout_s)
                if reply[0] == "snapshotted":
                    counts.append(int(reply[1]))
                    break
        return counts

    # -- the supervised parallel replay ---------------------------------
    def _recover(self, worker: _Worker, plan: list, acked: dict,
                 base: int) -> None:
        """Respawn one worker and re-dispatch its outstanding stream.

        ``plan`` is the worker's full batch schedule for this replay
        (``(seq, members, stacked)`` in dispatch order).  The restored
        snapshot's watermark counts *lifetime* batches; ``base`` is the
        worker's lifetime count when this replay began (and, thanks to
        the pre-dispatch snapshot, a floor for any restored watermark),
        so ``watermark - base`` is the first replay sequence the
        restored cache has not absorbed — everything from there on is
        re-sent and replays the exact transitions it missed.
        Re-executed batches that were already acked overwrite their
        outputs with identical values (their cache decisions replay
        identically from the restored state).
        """
        if self.recoveries >= self.max_respawns:
            raise RuntimeError(
                f"worker {worker.index} failed more than "
                f"{self.max_respawns} times; giving up (poison task?)")
        self.recoveries += 1
        for reply in worker.respawn():
            if reply[0] == "done":
                acked[(worker.index, reply[1])] = (reply[2], reply[3],
                                                   reply[4])
        watermark = worker.wait_ready(self.worker_timeout_s)
        resume_from = max(0, watermark - base)
        if self.telemetry is not None:
            self.telemetry.bus.emit(
                "worker.recovered", source="supervisor",
                worker=worker.index, generation=worker.generation,
                resumed_from=resume_from)
            if self.telemetry.recorder is not None:
                self.telemetry.recorder.record_event(
                    "worker.recovered", worker=worker.index,
                    generation=worker.generation,
                    resumed_from=resume_from)
        for seq, _members, stacked in plan:
            if seq >= resume_from:
                worker.tasks.put(("batch", seq, stacked))

    def replay(self, trace: list[Request], pool: np.ndarray
               ) -> tuple[list, ServingReport]:
        """Replay a trace across the worker processes, supervised.

        Batch composition per shard is exactly the front's
        deterministic replay schedule; each worker drains its own
        stream concurrently.  ``measured_makespan_s`` is the wall-clock
        time from first dispatch to last ack — the measured counterpart
        of the in-process replay's ``simulated_makespan_s``.
        """
        if self._workers is None:
            raise RuntimeError("workers are not running "
                               "(use `with server:` or call start())")
        self._begin_run("parallel_replay", requests=len(trace))
        front = self._front
        arrivals = np.array([request.arrival_s for request in trace])
        order = np.argsort(arrivals, kind="stable")
        shard_of = front._shards_for_trace(trace, pool)

        # Per-worker schedules: the same collector-equivalent batches
        # the in-process replay would form, in the same per-shard order.
        plans: list[list] = [[] for _ in range(self.num_workers)]
        for index in range(self.num_workers):
            member_order = order[shard_of[order] == index] \
                if self.num_workers > 1 else order
            for seq, (_close, members) in enumerate(
                    front._form_batches(arrivals, member_order)):
                stacked = np.stack([np.asarray(pool[trace[k].pool_index])
                                    for k in members])
                plans[index].append((seq, members, stacked))

        baseline = {row["shard"]: row for row in self._collect_stats()}
        bases = {index: row["batches"] for index, row in baseline.items()}
        if self.snapshot_every_batches:
            # Pin every worker's recovery floor at this replay's start:
            # a respawn can then never restore to a state missing an
            # *earlier* replay's tail (whose batches are not in this
            # replay's re-dispatch plan).
            self.snapshot_workers()

        acked: dict[tuple[int, int], tuple] = {}
        started = time.perf_counter()
        for worker in self._workers:
            for seq, _members, stacked in plans[worker.index]:
                worker.tasks.put(("batch", seq, stacked))

        expected = {worker.index: len(plans[worker.index])
                    for worker in self._workers}
        received = dict.fromkeys(expected, 0)
        progress_at = {worker.index: time.perf_counter()
                       for worker in self._workers}

        def outstanding(worker: _Worker) -> bool:
            return received[worker.index] < expected[worker.index]

        while any(outstanding(worker) for worker in self._workers):
            advanced = False
            for worker in self._workers:
                # Drain without blocking: a 4-worker replay must not
                # stall 50ms on an idle queue while another worker's
                # acks wait (that would serialise collection).
                while outstanding(worker):
                    try:
                        reply = worker.results.get_nowait()
                    except (queue_module.Empty, OSError, EOFError):
                        break
                    if reply[0] == "done":
                        key = (worker.index, reply[1])
                        if key not in acked:
                            received[worker.index] += 1
                        acked[key] = (reply[2], reply[3], reply[4])
                        progress_at[worker.index] = time.perf_counter()
                        advanced = True
            if advanced:
                continue
            for worker in self._workers:
                if not outstanding(worker):
                    continue
                silent_s = time.perf_counter() - progress_at[worker.index]
                # Death, or alive-but-silent past the deadline (hung,
                # or a poison task stalled it): respawn and re-dispatch.
                if not worker.process.is_alive() \
                        or silent_s > self.worker_timeout_s:
                    self._recover(worker, plans[worker.index], acked,
                                  bases[worker.index])
                    # _recover may have salvaged late acks directly
                    # into ``acked``; resync the progress count.
                    received[worker.index] = sum(
                        1 for (w, _s) in acked if w == worker.index)
                    progress_at[worker.index] = time.perf_counter()
            time.sleep(0.0005)
        makespan = time.perf_counter() - started

        outputs: list = [None] * len(trace)
        latencies = []
        total_batches = 0
        for index, plan in enumerate(plans):
            for seq, members, _stacked in plan:
                batch_outputs, compute_s, events = acked[(index, seq)]
                total_batches += 1
                self._compute_time_s += compute_s
                for position, k in enumerate(members):
                    outputs[k] = np.asarray(batch_outputs[position])
                    latencies.append(compute_s)
                # Forwarded worker telemetry replays here, once per
                # batch in plan order — a re-executed batch's duplicate
                # ack overwrote its slot, so the event stream the
                # supervisor's bus sees is deterministic.
                if self.telemetry is not None:
                    for kind, source, payload in events:
                        self._forward_event(index, kind, source, payload)

        final = {row["shard"]: row for row in self._collect_stats()}
        report = self._build_report(len(trace), total_batches, makespan,
                                    latencies, baseline, final)
        self._finalize_run(report)
        return outputs, report

    def _forward_event(self, worker_index: int, kind: str, source: str,
                       payload: dict) -> None:
        """Re-emit one worker event onto the supervisor's bus.

        Workers run single-shard servers, so their events arrive
        labelled ``shard0``; relabelling with the worker index makes
        the merged stream indistinguishable from the in-process
        sharded server's (the workers=1 parity test pins the resulting
        metrics registries equal).
        """
        if source.startswith("shard"):
            source = f"shard{worker_index}"
        payload = dict(payload)
        if "shard" in payload:
            payload["shard"] = worker_index
        elif kind == "serve.window":
            # Worker windows are per-worker (the supervisor never sees
            # a global window); tag the origin.
            payload["worker"] = worker_index
        self.telemetry.bus.emit_event(Event(kind, source, payload))
        if kind == "serve.window" and self.telemetry.recorder is not None:
            self.telemetry.recorder.record_window(payload)

    def _begin_run(self, kind: str, **extra) -> None:
        if self.telemetry is None or self.telemetry.recorder is None:
            return
        front = self._front
        self.telemetry.recorder.begin_run(
            kind=kind,
            config={
                "policy": front._policy_fingerprint(),
                "model": front._model_fingerprint(),
                "workers": self.num_workers,
                "batcher": {
                    "max_batch_size": self.batcher_config.max_batch_size,
                    "max_wait_s": self.batcher_config.max_wait_s,
                },
                "window_batches": self.telemetry.window_batches,
            },
            seeds=self.telemetry.seeds, **extra)

    def _finalize_run(self, report: ServingReport) -> None:
        if self.telemetry is None:
            return
        self.telemetry.pump()
        if self.telemetry.recorder is not None:
            self.telemetry.recorder.finalize({
                "requests": report.requests,
                "batches": report.batches,
                "hit_rate": report.hit_rate,
                **self.telemetry.summary(),
            })

    def _build_report(self, requests: int, batches: int, makespan: float,
                      latencies, baseline: dict, final: dict
                      ) -> ServingReport:
        """Aggregate worker counter *deltas* into a ServingReport.

        Workers are long-lived (and may be warm-restored), so their
        lifetime counters include earlier traffic; diffing against the
        pre-dispatch baseline isolates this replay — the same
        convention the CLI's warm-start gate uses.
        """
        deltas = {}
        counter_keys = ("requests", "cross_hits", "intra_hits", "computed",
                        "inserted", "rejected", "expired", "collisions",
                        "evicted", "replicated")
        total = dict.fromkeys(counter_keys, 0)
        for index, row in final.items():
            before = baseline.get(index, {}).get("counters", {})
            delta = {key: row["counters"].get(key, 0) - before.get(key, 0)
                     for key in counter_keys}
            deltas[index] = delta
            for key in counter_keys:
                total[key] += delta[key]
        hits = total["cross_hits"] + total["intra_hits"]
        hit_rate = hits / total["requests"] if total["requests"] else 0.0
        cache_stats = dict(total, hit_rate=hit_rate)
        has_request_cache = self.policy.request_cache
        has_vector_cache = self.policy.vector_cache
        quantiles_source = np.asarray(latencies, dtype=np.float64) * 1e3
        percentile = (lambda q: float(np.percentile(quantiles_source, q))) \
            if len(quantiles_source) else (lambda q: 0.0)
        latency_hist = LogHistogram()
        if len(latencies):
            latency_hist.record_many(latencies)
        shard_stats = []
        for index in sorted(final):
            row, before = final[index], baseline.get(index, {})
            shard_requests = row["requests"] - before.get("requests", 0)
            delta = deltas[index]
            shard_hits = delta["cross_hits"] + delta["intra_hits"]
            shard_stats.append({
                "shard": index, "requests": int(shard_requests),
                "hits": int(shard_hits),
                "hit_rate": shard_hits / delta["requests"]
                if delta["requests"] else 0.0,
                "batches": row["batches"] - before.get("batches", 0),
                "occupancy": row["occupancy"],
            })
        return ServingReport(
            requests=requests, batches=batches,
            mean_batch_size=requests / batches if batches else 0.0,
            duration_s=makespan,
            throughput_rps=requests / makespan if makespan else 0.0,
            latency_p50_ms=percentile(50), latency_p95_ms=percentile(95),
            latency_p99_ms=percentile(99),
            latency_mean_ms=float(quantiles_source.mean())
            if len(quantiles_source) else 0.0,
            request_cache=cache_stats if has_request_cache else {},
            vector_cache=cache_stats if has_vector_cache
            and not has_request_cache else {},
            hit_rate=hit_rate, shards=self.num_workers,
            shard_stats=shard_stats, measured_makespan_s=makespan,
            recoveries=self.recoveries,
            latency_hist_p50_ms=latency_hist.percentile(50) * 1e3
            if latency_hist.count else 0.0,
            latency_hist_p99_ms=latency_hist.percentile(99) * 1e3
            if latency_hist.count else 0.0,
            telemetry=self.telemetry.summary()
            if self.telemetry is not None else {})
