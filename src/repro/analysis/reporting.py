"""Plain-text table formatting and small statistics helpers.

Besides the generic :func:`format_table`, this module knows how to
render every sweep-results envelope in the tree: :func:`render_results`
dispatches on the results object's schema marker (``cycle-sweep``,
``functional-sweep``, ``serving-sweep``) and selects the columns that
matter for that family, so ``print(render_results(results))`` works for
any sweep a CLI or notebook just ran or loaded from JSON.
"""

from __future__ import annotations

import math


def geomean(values) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers, rows, float_format: str = "{:.3f}") -> str:
    """Render a list-of-rows table as aligned monospace text."""
    headers = [str(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [render_line(headers), render_line(["-" * w for w in widths])]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


# Default column selections per results schema.  Missing keys render as
# "-" so partially populated rows (or older files) still format.
SCHEMA_COLUMNS = {
    "cycle-sweep": ("model", "dataflow", "mcache_entries", "mcache_ways",
                    "signature_bits", "speedup", "signature_fraction"),
    "functional-sweep": ("model", "dataset_scale", "adaptation",
                         "signature_bits", "accuracy_delta", "hit_fraction",
                         "speedup"),
    "serving-sweep": ("model", "traffic", "cache_policy", "batch_size",
                      "hit_rate", "throughput_rps", "latency_p50_ms",
                      "latency_p99_ms", "bit_identical_fraction",
                      "max_abs_deviation"),
    "grid": None,
}


def format_rows(rows, columns, float_format: str = "{:.3f}") -> str:
    """Render dict rows as a table of the selected columns."""
    table_rows = [[row.get(column, "-") for column in columns]
                  for row in rows]
    return format_table(columns, table_rows, float_format=float_format)


def render_results(results, columns=None,
                   float_format: str = "{:.3f}") -> str:
    """Render a :class:`~repro.analysis.grid.GridResults` as a table.

    Dispatches the column selection on the results' schema marker;
    unknown schemas (and the base ``grid``) fall back to the union of
    keys in row order of first appearance.  Pass ``columns`` to
    override.
    """
    rows = results.rows
    if columns is None:
        columns = SCHEMA_COLUMNS.get(getattr(results, "schema", None))
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = tuple(seen)
    if not rows:
        return format_table(columns, [])
    return format_rows(rows, columns, float_format=float_format)
