"""Model zoo: scaled versions of the twelve networks the paper evaluates.

Every builder returns a ready-to-train model whose layer mix mirrors the
original architecture (convolution stacks for the VGGs, residual blocks
for the ResNets, inception branches for GoogLeNet/Inception-V4, fire
modules for SqueezeNet, separable stacks for MobileNet-V2 and
encoder blocks for the Transformer) with widths and depths scaled so the
full sweep runs on a CPU in minutes.  ``DESIGN.md`` documents the
scaling as an explicit substitution.
"""

from repro.models.registry import (
    MODEL_NAMES,
    CNN_MODEL_NAMES,
    ModelSpec,
    build_model,
    get_spec,
)

__all__ = [
    "MODEL_NAMES",
    "CNN_MODEL_NAMES",
    "ModelSpec",
    "build_model",
    "get_spec",
]
