"""The shared second cache tier behind the per-shard L1 caches.

The sharded server's request caches are *L1*: per-shard, signature-
indexed, capacity-bounded set-associative stores.  Under a replacement
policy an L1 line that loses its way forgets its row entirely — the
next probe recomputes it from the model.  :class:`SharedL2Cache` is the
prototype second tier that catches exactly that traffic: one store
shared by **all** shards, keyed by exact payload bytes, consulted only
on L1 miss and written through on compute.

Design points:

* **exactness** — L2 is keyed by the full flattened payload, so a hit
  can only return the row computed for a byte-identical request; the
  ``request_exact``+``per_request`` byte-identity contract is
  unaffected (the golden tiered suite pins it);
* **capacity** — plain LRU over insertion/hit order, in Python dict
  order (deterministic);
* **persistence** — the store round-trips through the same
  snapshot-format discipline as the server's cache snapshots: a
  versioned JSON manifest plus one dense ``.npz`` of stacked
  payload/row matrices, committed torn-proof (temp names +
  :func:`os.replace`, manifest last, generation-suffixed arrays), so a
  crash mid-:meth:`flush` leaves the previous complete store intact.

Granularity note: this prototype tiers the *request* cache only.
Vector-granularity (per-layer) rows stay per shard — sharing them would
need per-stream keying across engines, which the tiering sweep does not
yet justify.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

L2_FORMAT = "repro-serving-l2"
L2_VERSION = 1
L2_MANIFEST = "l2-manifest.json"


class SharedL2Cache:
    """Shared payload→row store consulted on per-shard L1 misses.

    ``directory=None`` keeps the store in memory only (the sweep's
    mode); with a directory, the constructor loads any complete
    persisted store found there and :meth:`flush` writes the current
    contents back, torn-proof.
    """

    def __init__(self, directory=None, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.directory = Path(directory) if directory is not None else None
        self.capacity = capacity
        # payload bytes -> (payload row, result row); dict order is the
        # LRU order (oldest first) — hits reinsert at the end.
        self._store: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        # The unflattened output shape of one request, recorded at
        # insert time so an all-L2-hit batch can still reshape rows.
        self.output_tail: tuple | None = None
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self._generation = 0
        # SHA-256 of the parameters whose outputs this store holds;
        # None until a server binds (or a persisted store declares) it.
        self.model_fingerprint: str | None = None
        # Optional telemetry bus (attached by the owning server):
        # persistence transitions emit events; per-lookup traffic is
        # reported in batch deltas by the server instead.
        self.bus = None
        if self.directory is not None \
                and (self.directory / L2_MANIFEST).exists():
            self._load()

    def bind_model(self, fingerprint: str) -> None:
        """Pin the store to one model's parameters.

        Rows are only valid for the weights that computed them (the
        payload key verifies inputs, never weights), so attaching a
        persisted store to a different model refuses loudly instead of
        serving stale outputs.
        """
        if self.model_fingerprint is not None \
                and self.model_fingerprint != fingerprint:
            raise ValueError("this L2 store was populated by a different "
                             "model; its rows would be stale")
        self.model_fingerprint = fingerprint

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    def lookup(self, flat_payload: np.ndarray) -> np.ndarray | None:
        """The stored row for a byte-identical payload, else ``None``."""
        key = np.ascontiguousarray(flat_payload,
                                   dtype=np.float64).tobytes()
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        # Reinsert at the end: dict order is the LRU order.
        del self._store[key]
        self._store[key] = entry
        self.hits += 1
        return entry[1].copy()

    def insert(self, flat_payload: np.ndarray, row: np.ndarray,
               output_tail: tuple | None = None) -> None:
        """Write-through one computed ``(payload, row)`` pair."""
        payload = np.ascontiguousarray(flat_payload, dtype=np.float64)
        key = payload.tobytes()
        self._store.pop(key, None)
        self._store[key] = (payload.copy(),
                            np.asarray(row, dtype=np.float64).copy())
        if output_tail is not None:
            self.output_tail = tuple(int(d) for d in output_tail)
        self.inserts += 1
        while len(self._store) > self.capacity:
            oldest = next(iter(self._store))
            del self._store[oldest]

    def stats_dict(self) -> dict:
        lookups = self.hits + self.misses
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses, "inserts": self.inserts,
                "hit_rate": self.hits / lookups if lookups else 0.0}

    # ------------------------------------------------------------------
    # Persistence (snapshot-format discipline)
    # ------------------------------------------------------------------
    def flush(self) -> dict:
        """Persist the store under :attr:`directory`; returns the manifest.

        Same torn-proof commit order as the server's snapshots: arrays
        land under a temp name and are renamed into a generation-
        suffixed file, the manifest commits last, stale generations are
        cleaned up afterwards.
        """
        if self.directory is None:
            raise RuntimeError("this L2 store has no directory to "
                               "flush to")
        self.directory.mkdir(parents=True, exist_ok=True)
        entries = list(self._store.values())
        payloads = np.stack([p for p, _ in entries]) if entries \
            else np.empty((0, 0))
        rows = np.stack([r for _, r in entries]) if entries \
            else np.empty((0, 0))
        self._generation += 1
        arrays_name = f"l2-state-{self._generation}.npz"
        manifest = {
            "format": L2_FORMAT,
            "version": L2_VERSION,
            "entries": len(entries),
            "generation": self._generation,
            "output_tail": list(self.output_tail)
            if self.output_tail is not None else None,
            "model": self.model_fingerprint,
            "arrays": arrays_name,
        }
        arrays_tmp = self.directory / (".tmp-" + arrays_name)
        manifest_tmp = self.directory / (".tmp-" + L2_MANIFEST)
        np.savez(arrays_tmp, payloads=payloads, rows=rows)
        os.replace(arrays_tmp, self.directory / arrays_name)
        manifest_tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(manifest_tmp, self.directory / L2_MANIFEST)
        for stale in self.directory.glob("l2-state-*.npz"):
            if stale.name != arrays_name:
                stale.unlink(missing_ok=True)
        for stale in self.directory.glob(".tmp-*"):
            stale.unlink(missing_ok=True)
        if self.bus is not None:
            self.bus.emit("l2.flush", source="l2",
                          entries=len(entries),
                          generation=self._generation)
        return manifest

    def _load(self) -> None:
        manifest = json.loads(
            (self.directory / L2_MANIFEST).read_text())
        if manifest.get("format") != L2_FORMAT:
            raise ValueError(f"{self.directory} does not hold an L2 "
                             f"store")
        if manifest.get("version") != L2_VERSION:
            raise ValueError(
                f"L2 store version {manifest.get('version')!r} is not "
                f"supported (expected {L2_VERSION})")
        self._generation = int(manifest.get("generation", 0))
        self.model_fingerprint = manifest.get("model")
        tail = manifest.get("output_tail")
        self.output_tail = tuple(int(d) for d in tail) \
            if tail is not None else None
        with np.load(self.directory / manifest["arrays"]) as payload:
            payloads = payload["payloads"]
            rows = payload["rows"]
        for position in range(int(manifest["entries"])):
            p = np.ascontiguousarray(payloads[position],
                                     dtype=np.float64)
            self._store[p.tobytes()] = (p, rows[position].copy())
        if self.bus is not None:
            self.bus.emit("l2.load", source="l2",
                          entries=len(self._store),
                          generation=self._generation)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SharedL2Cache(entries={len(self._store)}, "
                f"capacity={self.capacity}, "
                f"directory={str(self.directory)!r})")
