"""Figure 16: performance impact of MCACHE size and associativity.

Paper: speedup grows with cache capacity and associativity; moving from
512 entries / 8 ways to 1024 entries / 16 ways buys ~4.9% more speedup,
while 2048 entries add little — 1024x16 is chosen as the default.
"""

from benchmarks.harness import functional_stats, paper_scale_report, print_header
from repro import MercuryConfig
from repro.analysis import format_table, geomean
from repro.models import MODEL_NAMES

CACHE_SIZES = (512, 1024, 2048)
WAYS = (8, 16, 32)


def _hit_scale_factors():
    """Relative hit rate of each MCACHE organisation, measured functionally.

    The scaled VGG-13 is run once per organisation; the resulting overall
    hit fraction, normalised to the default 1024-entry/16-way
    configuration, scales the paper-scale workload's hit rates.
    """
    fractions = {}
    for entries in CACHE_SIZES:
        for ways in WAYS:
            config = MercuryConfig(signature_bits=20, mcache_entries=entries,
                                   mcache_ways=min(ways, entries),
                                   adaptive_stoppage=False)
            engine = functional_stats("vgg13", config, iterations=1)
            fractions[(entries, ways)] = engine.stats.overall_hit_fraction
    reference = fractions[(1024, 16)]
    return {key: value / reference for key, value in fractions.items()}


def run_experiment():
    scales = _hit_scale_factors()
    results = {}
    for (entries, ways), scale in scales.items():
        speedups = [paper_scale_report(name, hit_scale=min(scale, 1.2)).speedup
                    for name in MODEL_NAMES]
        results[(entries, ways)] = geomean(speedups)
    return results


def test_fig16_mcache_organizations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 16 — geomean speedup vs MCACHE organisation "
                 "(paper default: 1024 entries, 16 ways)")
    rows = [[entries, ways, value]
            for (entries, ways), value in sorted(results.items())]
    print(format_table(["entries", "ways", "geomean speedup"], rows, "{:.2f}"))

    default = results[(1024, 16)]
    assert default >= results[(512, 8)]           # bigger cache helps
    # Growing beyond the default helps far less than reaching it did
    # (the scaled functional workload still leaves some MNUs at 1024
    # entries, so the tail-off is softer than the paper's, see
    # EXPERIMENTS.md).
    gain_to_default = default - results[(512, 8)]
    gain_beyond = results[(2048, 16)] - default
    assert gain_beyond < max(gain_to_default, 0.1) + 0.2
    # All organisations still deliver a clear speedup.
    assert all(value > 1.2 for value in results.values())
