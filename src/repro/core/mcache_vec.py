"""Vectorized batch MCACHE.

:class:`VectorizedMCache` is a drop-in, array-backed implementation of
the signature-indexed result cache in :mod:`repro.core.mcache`.  Where
the scalar :class:`~repro.core.mcache.MCache` models the hardware line
by line (one Python loop iteration per probe), this engine keeps the
tag / Valid-Tag / Valid-Data state as dense numpy arrays over the
``(set, way)`` grid and services a whole batch of probes with sort-based
group-by operations, the same technique as
:func:`repro.core.hitmap_sim.simulate_hitmap` but against *persistent*
cache state.

The two implementations are bit-identical by construction and by test:
``tests/test_mcache_differential.py`` replays randomized traces through
both and asserts equal Hitmap states, entry ids, stats counters and
data-phase contents.  The scalar model stays in the tree as the oracle.

Batch semantics match a sequential replay of the trace:

* a signature already resident (from this batch or an earlier one) is a
  HIT on every occurrence;
* the first occurrence of a new signature whose set still has a free
  way is MAU, claims the lowest free way and the next entry id;
* later occurrences of an inserted signature are HITs on that entry;
* every occurrence of a new signature whose set was already full at its
  first occurrence is MNU — no replacement (§III-B3, Figure 9).

Because Valid-Tag bits are only ever cleared by a full :meth:`clear`
(``invalidate_data`` flash-clears VD bits only), the occupied ways of a
set are always a prefix ``0..occupancy-1``, which is what lets the
batch insert compute way indices arithmetically.
"""

from __future__ import annotations

import numpy as np

from repro.core.hitmap import HitState
from repro.core.hitmap_sim import HitmapSimulation, rank_within_groups
from repro.core.mcache import MCacheStats


class VectorizedMCache:
    """Set-associative, no-replacement cache with batch probe/insert.

    Parameters mirror :class:`~repro.core.mcache.MCache`: ``entries``
    total lines, ``ways`` associativity and ``versions`` data slots per
    line.
    """

    def __init__(self, entries: int = 1024, ways: int = 16, versions: int = 1):
        if entries <= 0 or ways <= 0 or versions <= 0:
            raise ValueError("entries, ways and versions must be positive")
        if entries % ways != 0:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.versions = versions
        self.num_sets = entries // ways
        self.stats = MCacheStats()
        self._tags = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._valid_tag = np.zeros((self.num_sets, ways), dtype=bool)
        self._line_entry = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._occupancy = np.zeros(self.num_sets, dtype=np.int64)
        self._valid_data = np.zeros((self.num_sets, ways, versions), dtype=bool)
        self._data = np.empty((self.num_sets, ways, versions), dtype=object)
        # entry_id -> (set, way); entry ids are dense 0..N-1 so plain
        # arrays indexed by id replace the scalar model's dict.
        self._entry_set = np.empty(0, dtype=np.int64)
        self._entry_way = np.empty(0, dtype=np.int64)
        self._next_entry_id = 0

    # ------------------------------------------------------------------
    # Indexing (same split as the scalar model)
    # ------------------------------------------------------------------
    def set_index(self, signature: int) -> int:
        """Cache set for a signature (low-order bits)."""
        return signature % self.num_sets

    def tag(self, signature: int) -> int:
        """Tag portion of a signature (remaining high-order bits)."""
        return signature // self.num_sets

    def _normalize(self, signatures) -> np.ndarray:
        """Return a 1-D int64 array, or an object array of exact ints.

        Signatures longer than 62 bits (reachable through adaptive
        signature growth) do not fit int64; the group-by code below is
        dtype-generic, so such batches run on object arrays of Python
        ints and the stored tags are promoted to objects once.
        """
        arr = np.atleast_1d(np.asarray(signatures))
        if arr.ndim != 1:
            raise ValueError("signatures must be one-dimensional")
        if arr.dtype == np.int64:
            return arr
        try:
            as_int64 = arr.astype(np.int64)
            if np.array_equal(as_int64.astype(object), arr.astype(object)):
                return as_int64
        except (OverflowError, TypeError, ValueError):
            pass
        if self._tags.dtype != object:
            self._tags = self._tags.astype(object)
        return arr.astype(object)

    # ------------------------------------------------------------------
    # Signature phase — batch probe and insert
    # ------------------------------------------------------------------
    def lookup_or_insert_batch(self, signatures) -> tuple[np.ndarray, np.ndarray]:
        """Probe MCACHE with a batch of signatures in arrival order.

        Equivalent to calling the scalar model's ``lookup_or_insert``
        once per element; returns ``(states, entry_ids)`` where
        ``states`` is an object array of :class:`HitState` and
        ``entry_ids`` holds the owning cache entry (-1 for MNU).
        """
        sigs = self._normalize(signatures)
        if len(sigs) == 0:
            return (np.empty(0, dtype=object), np.empty(0, dtype=np.int64))
        unique_values, first_index, inverse = np.unique(
            sigs, return_index=True, return_inverse=True)
        states, entry_ids, _masks = self._probe_prepared(
            unique_values, first_index, inverse, len(sigs))
        return states, entry_ids

    def _probe_prepared(self, unique_values, first_index, inverse,
                        num_probes) -> tuple[np.ndarray, np.ndarray, tuple]:
        """Batch probe/insert given a precomputed group-by of the batch."""
        num_unique = len(unique_values)
        unique_sets = (unique_values % self.num_sets).astype(np.int64)
        unique_tags = unique_values // self.num_sets

        # Which unique signatures are already resident?  An empty cache
        # (the per-layer fresh-clear path) skips the (U, ways) candidate
        # gather, which matters for fully-associative geometries.
        unique_entry = np.full(num_unique, -1, dtype=np.int64)
        if self._next_entry_id == 0:
            present = np.zeros(num_unique, dtype=bool)
        else:
            candidate_tags = self._tags[unique_sets]        # (U, ways)
            candidate_valid = self._valid_tag[unique_sets]
            match = candidate_valid & np.asarray(
                candidate_tags == unique_tags[:, None], dtype=bool)
            present = match.any(axis=1)
            present_way = np.argmax(match, axis=1)
            unique_entry[present] = self._line_entry[
                unique_sets[present], present_way[present]]

        # Absent uniques compete for free ways in first-occurrence order.
        absent = np.flatnonzero(~present)
        arrival = absent[np.argsort(first_index[absent], kind="stable")]
        arrival_sets = unique_sets[arrival]
        by_set = np.argsort(arrival_sets, kind="stable")
        sorted_sets = arrival_sets[by_set]
        rank_within_set = rank_within_groups(sorted_sets)

        free_ways = self.ways - self._occupancy[sorted_sets]
        inserted_sorted = rank_within_set < free_ways
        inserted_arrival = np.empty(len(arrival), dtype=bool)
        inserted_arrival[by_set] = inserted_sorted
        # Valid ways form a prefix, so the k-th insertion into a set
        # lands in way occupancy + k (the scalar model's "first invalid
        # way" scan).
        way_sorted = self._occupancy[sorted_sets] + rank_within_set
        way_arrival = np.empty(len(arrival), dtype=np.int64)
        way_arrival[by_set] = way_sorted

        inserted = arrival[inserted_arrival]   # unique indices, arrival order
        inserted_sets = unique_sets[inserted]
        inserted_ways = way_arrival[inserted_arrival]
        new_ids = self._next_entry_id + np.arange(len(inserted), dtype=np.int64)

        self._tags[inserted_sets, inserted_ways] = unique_tags[inserted]
        self._valid_tag[inserted_sets, inserted_ways] = True
        self._line_entry[inserted_sets, inserted_ways] = new_ids
        np.add.at(self._occupancy, inserted_sets, 1)
        self._entry_set = np.concatenate([self._entry_set, inserted_sets])
        self._entry_way = np.concatenate([self._entry_way, inserted_ways])
        self._next_entry_id += len(inserted)
        unique_entry[inserted] = new_ids

        # Per-unique category: 0 resident before batch, 1 inserted, 2 rejected.
        unique_state = np.empty(num_unique, dtype=np.int8)
        unique_state[present] = 0
        unique_state[arrival] = np.where(inserted_arrival, 1, 2)

        is_first = np.zeros(num_probes, dtype=bool)
        is_first[first_index] = True
        element_state = unique_state[inverse]
        hit_mask = (element_state == 0) | ((element_state == 1) & ~is_first)
        mau_mask = (element_state == 1) & is_first
        mnu_mask = element_state == 2

        states = np.empty(num_probes, dtype=object)
        states[hit_mask] = HitState.HIT
        states[mau_mask] = HitState.MAU
        states[mnu_mask] = HitState.MNU
        self.stats.hits += int(hit_mask.sum())
        self.stats.mau += int(mau_mask.sum())
        self.stats.mnu += int(mnu_mask.sum())
        return states, unique_entry[inverse], (hit_mask, mau_mask, mnu_mask)

    def lookup_or_insert(self, signature: int) -> tuple[HitState, int]:
        """Scalar probe, for API parity with the line-level model."""
        states, entries = self.lookup_or_insert_batch([signature])
        return states[0], int(entries[0])

    def probe_batch(self, signatures) -> tuple[np.ndarray, np.ndarray]:
        """Non-mutating batch lookup; returns (present, entry_ids)."""
        sigs = self._normalize(signatures)
        if len(sigs) == 0:
            return (np.empty(0, dtype=bool), np.empty(0, dtype=np.int64))
        sets = (sigs % self.num_sets).astype(np.int64)
        tags = sigs // self.num_sets
        match = self._valid_tag[sets] & np.asarray(
            self._tags[sets] == tags[:, None], dtype=bool)
        present = match.any(axis=1)
        way = np.argmax(match, axis=1)
        entry_ids = np.full(len(sigs), -1, dtype=np.int64)
        entry_ids[present] = self._line_entry[sets[present], way[present]]
        return present, entry_ids

    def probe(self, signature: int) -> tuple[bool, int]:
        """Non-mutating scalar lookup; returns (present, entry_id)."""
        present, entry_ids = self.probe_batch([signature])
        return bool(present[0]), int(entry_ids[0])

    # ------------------------------------------------------------------
    # Hitmap simulation (fresh cache, one batch — the reuse-engine path)
    # ------------------------------------------------------------------
    def simulate(self, signatures) -> HitmapSimulation:
        """Clear the cache, replay one batch and return its Hitmap.

        Produces the same :class:`HitmapSimulation` as
        :func:`repro.core.hitmap_sim.simulate_hitmap` for the same
        geometry; access counters accumulate in :attr:`stats` across
        calls (the cache contents do not survive, matching the reuse
        engine's freshly-cleared-MCACHE-per-layer semantics).
        """
        self.clear()
        sigs = self._normalize(signatures)
        num_probes = len(sigs)
        if num_probes == 0:
            return HitmapSimulation(states=np.empty(0, dtype=object),
                                    representative=np.empty(0, dtype=np.int64),
                                    hits=0, mau=0, mnu=0, unique_signatures=0)
        unique_values, first_index, inverse = np.unique(
            sigs, return_index=True, return_inverse=True)
        states, _, (hit_mask, mau_mask, mnu_mask) = self._probe_prepared(
            unique_values, first_index, inverse, num_probes)
        representative = np.arange(num_probes, dtype=np.int64)
        representative[hit_mask] = first_index[inverse[hit_mask]]
        return HitmapSimulation(
            states=states, representative=representative,
            hits=int(hit_mask.sum()), mau=int(mau_mask.sum()),
            mnu=int(mnu_mask.sum()),
            unique_signatures=len(unique_values))

    # ------------------------------------------------------------------
    # Data phase — batched VD-bit bookkeeping
    # ------------------------------------------------------------------
    def _locate(self, entry_ids) -> tuple[np.ndarray, np.ndarray]:
        ids = np.atleast_1d(np.asarray(entry_ids, dtype=np.int64))
        if len(ids) and ((ids < 0).any() or (ids >= self._next_entry_id).any()):
            bad = ids[(ids < 0) | (ids >= self._next_entry_id)][0]
            raise KeyError(f"unknown MCACHE entry id {int(bad)}")
        return self._entry_set[ids], self._entry_way[ids]

    def _check_version(self, version: int) -> None:
        if not 0 <= version < self.versions:
            raise IndexError(f"version {version} out of range")

    def write_data_batch(self, entry_ids, values, version: int = 0) -> None:
        """Store one computed result per entry id and set its VD bit."""
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        self._data[sets, ways, version] = values
        self._valid_data[sets, ways, version] = True
        self.stats.data_writes += len(sets)

    def read_data_batch(self, entry_ids, version: int = 0) -> np.ndarray:
        """Fetch previously stored results; raises if any VD bit is unset."""
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        valid = self._valid_data[sets, ways, version]
        if not valid.all():
            bad = np.atleast_1d(np.asarray(entry_ids))[~valid][0]
            raise LookupError(
                f"entry {int(bad)} version {version} has no valid data")
        self.stats.data_reads += len(sets)
        return self._data[sets, ways, version]

    def has_data_batch(self, entry_ids, version: int = 0) -> np.ndarray:
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        return self._valid_data[sets, ways, version]

    def write_data(self, entry_id: int, value, version: int = 0) -> None:
        self._check_version(version)
        sets, ways = self._locate([entry_id])
        self._data[sets[0], ways[0], version] = value
        self._valid_data[sets[0], ways[0], version] = True
        self.stats.data_writes += 1

    def read_data(self, entry_id: int, version: int = 0):
        return self.read_data_batch([entry_id], version=version)[0]

    def has_data(self, entry_id: int, version: int = 0) -> bool:
        return bool(self.has_data_batch([entry_id], version=version)[0])

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_data(self, version: int | None = None) -> None:
        """Flash-clear VD bits (tags stay valid) — synchronous design."""
        if version is None:
            self._valid_data[:] = False
            self._data[:] = None
        else:
            self._check_version(version)
            self._valid_data[:, :, version] = False
            self._data[:, :, version] = None

    def clear(self) -> None:
        """Full reset (new channel / new set of input vectors)."""
        self._valid_tag[:] = False
        self._line_entry[:] = -1
        self._occupancy[:] = 0
        self._valid_data[:] = False
        self._data[:] = None
        self._entry_set = np.empty(0, dtype=np.int64)
        self._entry_way = np.empty(0, dtype=np.int64)
        self._next_entry_id = 0

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of lines with a valid tag."""
        return int(self._valid_tag.sum())

    def utilization(self) -> float:
        return self.occupancy() / self.entries

    def __repr__(self) -> str:  # pragma: no cover
        return (f"VectorizedMCache(entries={self.entries}, ways={self.ways}, "
                f"versions={self.versions}, occupancy={self.occupancy()})")
