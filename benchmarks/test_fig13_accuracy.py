"""Figure 13: validation accuracy of MERCURY vs the baseline, 12 models.

Paper: an average 0.7% drop in validation accuracy — i.e. MERCURY trains
to essentially the same accuracy as exact training.  Here both systems
train the scaled models on the synthetic datasets for the same number of
epochs and the per-model accuracies are compared.
"""

import pytest

from benchmarks.harness import print_header, train_model
from repro import MercuryConfig, ReuseEngine
from repro.analysis import format_table
from repro.models import MODEL_NAMES
from repro.training import bleu_score


def run_experiment():
    rows = {}
    for name in MODEL_NAMES:
        baseline_result, _, _ = train_model(name)
        engine = ReuseEngine(MercuryConfig(signature_bits=20))
        mercury_result, mercury_model, validation = train_model(name,
                                                                engine=engine)
        rows[name] = {
            "baseline": baseline_result.final_validation_accuracy,
            "mercury": mercury_result.final_validation_accuracy,
            "hit_fraction": engine.stats.overall_hit_fraction,
        }
        if name == "transformer":
            inputs, targets = validation
            predictions = mercury_model.predict(inputs)
            rows[name]["bleu"] = bleu_score(list(targets), list(predictions))
    return rows


def test_fig13_validation_accuracy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 13 — validation accuracy, baseline vs MERCURY "
                 "(paper: average 0.7% drop)")
    table = [[name, values["baseline"] * 100, values["mercury"] * 100,
              values["hit_fraction"] * 100] for name, values in rows.items()]
    print(format_table(["model", "baseline acc (%)", "MERCURY acc (%)",
                        "hit rate (%)"], table, "{:.1f}"))
    if "bleu" in rows["transformer"]:
        print(f"transformer BLEU (MERCURY): {rows['transformer']['bleu']:.2f}"
              " (paper reports 33.52 at full scale)")

    baseline_mean = sum(v["baseline"] for v in rows.values()) / len(rows)
    mercury_mean = sum(v["mercury"] for v in rows.values()) / len(rows)
    # Average accuracy stays comparable.  The miniature validation sets
    # put every model within +/- a couple of samples of its baseline, so
    # the mean delta swings by ~0.05 whenever the RPQ projection draw
    # changes (it is a function of the signature scheme, not of model
    # quality); 0.3 absolute is the same slack the golden-run suite uses
    # for single-model reuse accuracy.
    assert mercury_mean >= baseline_mean - 0.30
    # A catastrophic reuse bug (e.g. copying the wrong rows' results)
    # collapses *every* model towards chance; per-model luck does not.
    # Require most models to stay within two validation samples of
    # their baseline, a gate the mean-level slack alone cannot provide.
    deltas = [v["mercury"] - v["baseline"] for v in rows.values()]
    assert sum(delta >= -0.34 for delta in deltas) > len(deltas) // 2
    # Reuse actually happened during MERCURY training.
    assert any(v["hit_fraction"] > 0.05 for v in rows.values())
    assert len(rows) == 12


if __name__ == "__main__":  # pragma: no cover
    for name, values in run_experiment().items():
        print(name, values)
