"""The sharded inference-serving front end.

:class:`InferenceServer` is a routing front end over ``shards`` worker
shards.  Each shard owns a full copy of the serving machinery — its own
request-granularity :class:`~repro.serving.engine.SignatureResultCache`,
its own per-layer :class:`~repro.serving.engine.ServingReuseEngine` and
its own :class:`~repro.serving.batcher.MicroBatcher` — and requests are
routed to shards by deterministic signature hashing on a consistent
ring (:mod:`repro.serving.router`), so all repeats of a payload land on
the shard that caches it.  ``shards=1`` degenerates to the original
single-backend facade, batch for batch.

Three ways to drive the server:

* :meth:`serve_trace` — push a load-generator trace through the real
  asyncio queues (optionally in real time), measuring wall-clock
  latency;
* :meth:`replay` — a deterministic replay of the same batching
  discipline on a simulated clock: requests are partitioned onto their
  shards, each shard's batches form exactly as its collector would
  form them, and execution is serialised in (close-time, shard) order —
  so batch compositions (and therefore every cache decision) depend
  only on the trace and the shard count, which is what the sweep grid
  and the golden suite need.  Each shard is modelled as its own
  backend worker, so the report's ``simulated_makespan_s`` shows the
  scale-out win that one in-process replay cannot show in wall clock;
* :meth:`serve_http` — a stdlib HTTP front end (JSON in/out) for
  driving the server from outside the process.

Cache state survives restarts: :meth:`snapshot` writes every shard's
caches as a versioned JSON manifest plus one ``.npz`` array payload,
and :meth:`restore` rebuilds an identically configured server into the
donor's exact cache state (same placements, ages and counters), so a
warm-started server reproduces the donor's hit behaviour on subsequent
traffic — the golden warm-start suite pins this.

:meth:`oracle_outputs` provides the exactness reference: the same
weights, engines detached, every request forwarded alone.  With the
request cache in ``exact_check`` mode and ``compute="per_request"``,
served outputs are byte-identical to that oracle *at any shard count* —
reuse only ever copies an output the oracle computation produced for an
identical payload.  (Batched compute trades that guarantee for
throughput: BLAS reduction orders vary with batch shape, so outputs
match the oracle only to ~1e-13; the sweep records the measured
deviation.)
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.rpq import RPQHasher
from repro.core.session import CacheCounters
from repro.obs.metrics import LogHistogram
from repro.serving.batcher import (BatcherConfig, BatcherTelemetry,
                                   MicroBatcher)
from repro.serving.engine import (ServingPolicy, ServingReuseEngine,
                                  SignatureResultCache)
from repro.serving.loadgen import Request
from repro.serving.router import (ConsistentHashRing, HotKeyTracker,
                                  signature_key)

SNAPSHOT_FORMAT = "repro-serving-snapshot"
# Version 2: the session state layout gained the eviction metadata
# (repro.core.session.STATE_VERSION 2).
SNAPSHOT_VERSION = 2
SNAPSHOT_MANIFEST = "manifest.json"
SNAPSHOT_ARRAYS = "state.npz"


@dataclass
class ServingReport:
    """Aggregate telemetry of one served trace."""

    requests: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    request_cache: dict = field(default_factory=dict)
    vector_cache: dict = field(default_factory=dict)
    layer_stats: list = field(default_factory=list)
    hit_rate: float = 0.0
    shards: int = 1
    shard_stats: list = field(default_factory=list)
    # Simulated busy-until time of the slowest shard worker in replay
    # (0.0 for wall-clock paths): the scale-out makespan.
    simulated_makespan_s: float = 0.0
    # Wall-clock time to drain the whole replay across real worker
    # processes (0.0 for in-process paths): the measured counterpart of
    # ``simulated_makespan_s``.
    measured_makespan_s: float = 0.0
    # Worker respawns the parallel supervisor performed during the run.
    recoveries: int = 0
    # Shared-L2 telemetry (empty when no L2 tier is attached).
    l2: dict = field(default_factory=dict)
    # Streaming log-bucket percentile reads: exact in rank, within one
    # bucket (<10% relative) in value at any stream length — the
    # reservoir-based latency_p* fields above remain the differential
    # oracle the regression suite compares against.
    latency_hist_p50_ms: float = 0.0
    latency_hist_p99_ms: float = 0.0
    # Event-bus digest (empty when telemetry is off): emitted/dropped
    # event counts and applied controller decisions.
    telemetry: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests, "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "request_cache": self.request_cache,
            "vector_cache": self.vector_cache,
            "layer_stats": self.layer_stats,
            "hit_rate": self.hit_rate,
            "shards": self.shards,
            "shard_stats": self.shard_stats,
            "simulated_makespan_s": self.simulated_makespan_s,
            "measured_makespan_s": self.measured_makespan_s,
            "recoveries": self.recoveries,
            "l2": self.l2,
            "latency_hist_p50_ms": self.latency_hist_p50_ms,
            "latency_hist_p99_ms": self.latency_hist_p99_ms,
            "telemetry": self.telemetry,
        }


#: Cache-counter fields shipped as per-batch deltas on ``serve.batch``
#: events (everything on CacheCounters except the derived rates).
_DELTA_KEYS = ("requests", "cross_hits", "intra_hits", "computed",
               "inserted", "rejected", "expired", "collisions",
               "evicted", "replicated")


def _counter_values(counters: CacheCounters) -> tuple:
    return tuple(getattr(counters, key) for key in _DELTA_KEYS)


def _percentiles_ms(latencies_s) -> dict:
    if not len(latencies_s):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e3
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean())}


class _Shard:
    """One serving worker: caches, vector engine and micro-batcher."""

    def __init__(self, index: int, server: "InferenceServer"):
        self.index = index
        policy = server.policy
        self.request_cache = SignatureResultCache(policy) \
            if policy.request_cache else None
        self.vector_engine = ServingReuseEngine(policy) \
            if policy.vector_cache else None
        self.batcher = MicroBatcher(
            lambda payloads, _shard=self:
                server._process_shard_batch(_shard, payloads),
            server.batcher_config)
        self.batch_index = 0
        self.batch_count = 0

    def stats_row(self) -> dict:
        counters = CacheCounters()
        occupancy = 0
        if self.request_cache is not None:
            counters.merge(self.request_cache.counters)
            occupancy += self.request_cache.occupancy()
        if self.vector_engine is not None:
            counters.merge(self.vector_engine.counters())
            occupancy += sum(self.vector_engine.occupancy().values())
        # ``requests`` counts what the router actually sent here (the
        # exact row total across this shard's batches), so balance is
        # meaningful for every cache policy — including cache-less
        # ones, where the row-level cache counters stay at zero.
        # ``hits``/``hit_rate`` are the cache-lifetime row counters
        # (vector granularity counts per-layer rows, not requests).
        return {"shard": self.index,
                "requests": self.batcher.telemetry.rows,
                "hits": counters.hits, "hit_rate": counters.hit_rate,
                "batches": self.batch_count, "occupancy": occupancy}


class InferenceServer:
    """Serve a trained model with sharded cross-request reuse."""

    def __init__(self, model, policy: ServingPolicy | None = None,
                 batcher: BatcherConfig | None = None, shards: int = 1,
                 l2=None, telemetry=None):
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.model = model
        self.policy = policy or ServingPolicy()
        self.batcher_config = batcher or BatcherConfig()
        self.num_shards = shards
        # Observability is strictly opt-in: with ``telemetry=None``
        # (a repro.obs.Telemetry bundle otherwise) every emission site
        # below is a single ``is not None`` check — provably inert.
        self.telemetry = telemetry
        self.bus = telemetry.bus if telemetry is not None else None
        model.eval()

        self._ring = ConsistentHashRing(shards)
        # Routing hashes with the same RPQ stream the caches use, so
        # the shard split is a pure function of (payload, policy).
        self._route_hasher = RPQHasher(seed=self.policy.rpq_seed)
        # Hot-key replication: the tracker promotes the hottest
        # signatures, routing spreads them round-robin, and each served
        # batch pushes their rows to the peer shards' caches.
        self._hot = HotKeyTracker(
            self.policy.replicate_top,
            min_count=self.policy.replicate_min_count) \
            if self.policy.replicate_top > 0 else None
        # The shared second tier behind the per-shard request caches.
        if l2 is not None and not self.policy.request_cache:
            raise ValueError("the shared L2 backs the request cache; "
                             "enable request_cache to attach one")
        self.l2 = l2
        self.shards = [_Shard(index, self) for index in range(shards)]
        model.set_engine(self.shards[0].vector_engine)

        if self.bus is not None:
            for shard in self.shards:
                shard.batcher.telemetry.bus = self.bus
                shard.batcher.telemetry.source = f"shard{shard.index}"
                if shard.vector_engine is not None:
                    shard.vector_engine.bus = self.bus
                    shard.vector_engine.source = f"shard{shard.index}"
            if self._hot is not None:
                self._hot.bus = self.bus
            if l2 is not None:
                l2.bus = self.bus
        # Controller/audit window accumulation (telemetry-only state).
        self._window_index = 0
        self._window_batches = 0
        self._window_delta: dict[str, int] = {}
        self._clears_applied = 0

        self._output_tail: tuple | None = None
        self._compute_time_s = 0.0
        self._started_at = time.perf_counter()
        if l2 is not None:
            # Cached rows are only valid for the weights that computed
            # them; binding refuses a persisted store from another model.
            l2.bind_model(self._model_fingerprint())

    # -- single-shard-era conveniences ---------------------------------
    @property
    def request_cache(self):
        """Shard 0's request cache (the only one when ``shards=1``)."""
        return self.shards[0].request_cache

    @property
    def vector_engine(self):
        return self.shards[0].vector_engine

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, payload) -> int:
        """The shard serving a payload.

        The ring owner by default; replicated hot keys take the
        tracker's round-robin turn across all shards instead.
        """
        if self.num_shards == 1:
            return 0
        key = self._signature_key(payload)
        home = self._ring.route(key)
        if self._hot is not None and self._hot.observe(key):
            return self._hot.spread(key, home, self.num_shards)
        return home

    def _signature_key(self, payload) -> bytes:
        """The ring key of one payload (per-row RPQ hashing).

        Signatures are computed one payload at a time on purpose:
        batching the projection would change BLAS reduction order and
        could flip knife-edge quantisations, i.e. change routing.
        """
        flat = np.asarray(payload, dtype=np.float64).reshape(1, -1)
        signatures = self._route_hasher.signatures(
            flat, self.policy.signature_bits)
        return signature_key(signatures[0])

    def _shards_for_trace(self, trace: list[Request],
                          pool: np.ndarray) -> np.ndarray:
        if self.num_shards == 1:
            return np.zeros(len(trace), dtype=np.int64)
        unique = sorted({request.pool_index for request in trace})
        keys = {index: self._signature_key(pool[index])
                for index in unique}
        routed = self._ring.route_many([keys[index] for index in unique])
        owners = dict(zip(unique, (int(shard) for shard in routed)))
        if self._hot is None:
            return np.array([owners[request.pool_index]
                             for request in trace], dtype=np.int64)
        # Replication routes online, in arrival order: the tracker's
        # counts, promotions and round-robin turns see the requests
        # exactly as the async front door would.
        shard_of = np.empty(len(trace), dtype=np.int64)
        arrivals = np.array([request.arrival_s for request in trace])
        for k in np.argsort(arrivals, kind="stable"):
            index = trace[k].pool_index
            key = keys[index]
            if self._hot.observe(key):
                shard_of[k] = self._hot.spread(key, owners[index],
                                               self.num_shards)
            else:
                shard_of[k] = owners[index]
        return shard_of

    # ------------------------------------------------------------------
    # Synchronous batch path
    # ------------------------------------------------------------------
    def _forward_rows(self, payloads: np.ndarray) -> np.ndarray:
        """Model outputs for a stack of payloads, flattened per request."""
        start = time.perf_counter()
        if self.policy.compute == "per_request":
            outputs = np.stack([self.model(payload[None])[0]
                                for payload in payloads]) \
                if len(payloads) else np.empty((0,))
        else:
            outputs = self.model(payloads)
        self._compute_time_s += time.perf_counter() - start
        outputs = np.asarray(outputs, dtype=np.float64)
        self._output_tail = outputs.shape[1:]
        return outputs.reshape(len(payloads), -1)

    def _process_shard_batch(self, shard: _Shard, payloads: list) -> list:
        """One micro-batch through one shard's caches and the model."""
        if shard.vector_engine is not None:
            # The model is shared; batches execute one at a time (the
            # asyncio loop / the replay scheduler serialise them), so
            # attaching the owning shard's engine per batch keeps each
            # shard's per-layer caches private.
            self.model.set_engine(shard.vector_engine)
        stacked = np.stack([np.asarray(p) for p in payloads])
        observing = self.bus is not None
        if observing:
            counters_before = _counter_values(shard.request_cache.counters) \
                if shard.request_cache is not None else None
            l2_before = (self.l2.hits, self.l2.misses, self.l2.inserts) \
                if self.l2 is not None else None
        if shard.request_cache is not None:
            flat = np.asarray(stacked, dtype=np.float64).reshape(
                len(stacked), -1)
            if self.l2 is not None:
                compute = lambda indices: self._compute_rows_l2(  # noqa: E731
                    stacked, flat, indices)
            else:
                compute = lambda indices: self._forward_rows(  # noqa: E731
                    stacked[indices])
            rows, _ = shard.request_cache.serve(flat, compute,
                                                shard.batch_index)
            if self._hot is not None and self.num_shards > 1:
                self._push_replicas(shard, flat, rows)
        else:
            rows = self._forward_rows(stacked)
        if shard.vector_engine is not None:
            shard.vector_engine.end_batch()
        shard.batch_index += 1
        shard.batch_count += 1
        if observing:
            self._observe_batch(shard, len(payloads), counters_before,
                                l2_before)
        tail = self._output_tail or (rows.shape[1],)
        return [row.reshape(tail) for row in rows]

    # ------------------------------------------------------------------
    # Telemetry emission + window/controller loop (bus-enabled only)
    # ------------------------------------------------------------------
    def _observe_batch(self, shard: _Shard, rows: int, counters_before,
                       l2_before) -> None:
        """Emit this batch's events and advance the telemetry window.

        Runs strictly *after* every cache decision of the batch — the
        emissions cannot perturb them, which is what keeps telemetry-on
        replays byte-identical to the oracle.
        """
        payload: dict = {"shard": shard.index,
                         "batch": shard.batch_index - 1, "rows": rows}
        if counters_before is not None:
            after = _counter_values(shard.request_cache.counters)
            payload["counters"] = {
                key: int(now - before) for key, now, before
                in zip(_DELTA_KEYS, after, counters_before)}
        if l2_before is not None:
            payload["l2_hits"] = self.l2.hits - l2_before[0]
            payload["l2_misses"] = self.l2.misses - l2_before[1]
            payload["l2_inserts"] = self.l2.inserts - l2_before[2]
        self.bus.emit("serve.batch", source=f"shard{shard.index}",
                      **payload)

        delta = payload.get("counters")
        if delta is not None:
            window = self._window_delta
            for key, value in delta.items():
                window[key] = window.get(key, 0) + value
        self._window_batches += 1
        if self._window_batches >= self.telemetry.window_batches:
            self._close_window()

    def _active_policy(self):
        """The policy live on the caches (the controller may have
        retuned it past the constructor-time ``self.policy``)."""
        if self.shards[0].request_cache is not None:
            return self.shards[0].request_cache.policy
        return self.policy

    def _close_window(self) -> None:
        delta = self._window_delta
        rows = delta.get("requests", 0)
        hits = delta.get("cross_hits", 0) + delta.get("intra_hits", 0)
        policy = self._active_policy()
        window = {
            "window": self._window_index,
            "batches": self._window_batches,
            "rows": rows,
            "hits": hits,
            "hit_rate": hits / rows if rows else 0.0,
            "computed": delta.get("computed", 0),
            "inserted": delta.get("inserted", 0),
            "rejected": delta.get("rejected", 0),
            "expired": delta.get("expired", 0),
            "evicted": delta.get("evicted", 0),
            "ttl_batches": policy.ttl_batches,
            "admission": policy.admission,
            "eviction": policy.eviction,
            "signature_bits": policy.signature_bits,
        }
        self._window_index += 1
        self._window_batches = 0
        self._window_delta = {}
        self.bus.emit("serve.window", source="server", **window)
        telemetry = self.telemetry
        if telemetry.recorder is not None:
            telemetry.recorder.record_window(window)
        if telemetry.controller is not None:
            for decision in telemetry.controller.observe_window(window):
                self._apply_decision(decision)
                self.bus.emit("controller.decision", source="controller",
                              **decision)
                if telemetry.recorder is not None:
                    telemetry.recorder.record_decision(decision)
        telemetry.pump()

    def _apply_decision(self, decision: dict) -> None:
        """Retune the live caches per one controller decision.

        Under ``request_exact``+``per_request`` none of these actions
        can break byte-identity: they only move which rows are cached,
        and the exact check verifies payload bytes before any reuse.
        """
        action = decision["action"]
        caches = [shard.request_cache for shard in self.shards
                  if shard.request_cache is not None]
        if action == "flash_clear":
            for cache in caches:
                cache.clear()
            self._clears_applied += len(caches)
            self.bus.emit("session.clear", source="controller",
                          clears=len(caches))
        elif action == "ttl":
            for cache in caches:
                cache.policy = cache.policy.replace(
                    ttl_batches=decision["ttl_batches"])
        elif action == "admission":
            for cache in caches:
                cache.policy = cache.policy.replace(
                    admission=decision["admission"])
        elif action == "signature_bits":
            # New signature length invalidates every stored signature:
            # swap the policy and clear (the session hashes with
            # ``policy.signature_bits`` per call, so the next batch
            # probes at the new length).  Routing keeps the original
            # bits — it only distributes load.
            for cache in caches:
                cache.policy = cache.policy.replace(
                    signature_bits=decision["signature_bits"])
                cache.clear()
            self.bus.emit("session.clear", source="controller",
                          clears=len(caches))
        else:  # pragma: no cover — controller and server move together
            raise ValueError(f"unknown controller action {action!r}")

    def _begin_run(self, kind: str, **extra) -> None:
        """Open one audited run (replay / serve_trace) on the recorder.

        Resets the window accumulators and the controller so every run
        observes windows from a clean state — which is what makes the
        recorded decision stream reproducible from the manifest alone
        (``repro.obs.controller.replay_decisions``).  No-op when
        telemetry is off.
        """
        if self.telemetry is None:
            return
        self._window_index = 0
        self._window_batches = 0
        self._window_delta = {}
        controller = self.telemetry.controller
        if controller is not None:
            controller.reset()
        recorder = self.telemetry.recorder
        if recorder is not None:
            header = {
                "kind": kind,
                "config": {
                    "policy": self._policy_fingerprint(),
                    "model": self._model_fingerprint(),
                    "shards": self.num_shards,
                    "batcher": {
                        "max_batch_size":
                            self.batcher_config.max_batch_size,
                        "max_wait_s": self.batcher_config.max_wait_s,
                    },
                    "window_batches": self.telemetry.window_batches,
                },
                "seeds": self.telemetry.seeds,
            }
            if controller is not None:
                header["controller"] = controller.describe()
            header.update(extra)
            recorder.begin_run(**header)

    def _finalize_run(self, report: "ServingReport") -> None:
        """Close the audited run: drain the bus and commit the manifest."""
        if self.telemetry is None:
            return
        self.telemetry.pump()
        recorder = self.telemetry.recorder
        if recorder is not None:
            recorder.finalize({
                "requests": report.requests,
                "batches": report.batches,
                "hit_rate": report.hit_rate,
                **self.telemetry.summary(),
            })

    def _compute_rows_l2(self, stacked: np.ndarray, flat: np.ndarray,
                         indices) -> np.ndarray:
        """L1-missing rows via the shared L2: hit rows come from the
        store, truly missing ones from the model (written through)."""
        indices = np.asarray(indices, dtype=np.int64)
        cached = [self.l2.lookup(flat[index]) for index in indices]
        missing = [slot for slot, row in enumerate(cached) if row is None]
        if missing:
            computed = self._forward_rows(stacked[indices[missing]])
            width = computed.shape[1]
        else:
            # Every row came from L2: the store also remembers the
            # unflattened output shape the model never got to set.
            width = len(cached[0])
            if self.l2.output_tail is not None:
                self._output_tail = tuple(self.l2.output_tail)
        out = np.empty((len(indices), width), dtype=np.float64)
        for slot, row in enumerate(cached):
            if row is not None:
                out[slot] = row
        for position, slot in enumerate(missing):
            out[slot] = computed[position]
            self.l2.insert(flat[indices[slot]], computed[position],
                           self._output_tail)
        return out

    def _push_replicas(self, shard: _Shard, flat: np.ndarray,
                       rows: np.ndarray) -> None:
        """Push this batch's replicated hot rows to the peer shards.

        Every served row whose signature is in the tracker's replicated
        set is admitted into each peer's request cache (insert, or
        refresh in place), stamped with the *peer's* batch clock — so
        replicas age out under the peer's own TTL and the next push
        re-validates them.  Under ``request_exact``+``per_request`` the
        pushed row is the per-request oracle's bytes, so replication
        cannot perturb the byte-identity contract.
        """
        pushed: set[bytes] = set()
        for position in range(len(flat)):
            payload_bytes = flat[position].tobytes()
            if payload_bytes in pushed:
                continue
            pushed.add(payload_bytes)
            if not self._hot.is_replicated(
                    self._signature_key(flat[position])):
                continue
            for peer in self.shards:
                if peer is shard or peer.request_cache is None:
                    continue
                peer.request_cache.admit_external(
                    flat[position], rows[position], peer.batch_index)

    # ------------------------------------------------------------------
    # Async front door
    # ------------------------------------------------------------------
    async def start(self) -> None:
        for shard in self.shards:
            await shard.batcher.start()

    async def stop(self) -> None:
        for shard in self.shards:
            await shard.batcher.stop()

    async def infer(self, payload):
        """Serve one request through its shard's micro-batching queue."""
        shard = self.shards[self.shard_for(payload)]
        return await shard.batcher.submit(payload)

    def serve_trace(self, trace: list[Request], pool: np.ndarray,
                    realtime: bool = False, time_scale: float = 1.0
                    ) -> tuple[list, ServingReport]:
        """Drive a load-generator trace through the asyncio queues.

        With ``realtime`` each request is submitted at its (scaled)
        arrival offset, exercising the max-wait path of the batchers;
        otherwise everything is enqueued as fast as the bounded queues
        admit it (the saturation regime).  Returns the per-request
        outputs in trace order plus a wall-clock report.
        """
        self._begin_run("serve_trace", requests=len(trace))
        start = time.perf_counter()
        marks = [shard.batcher.telemetry.latency_mark()
                 for shard in self.shards]

        async def _drive():
            await self.start()
            try:
                origin = asyncio.get_running_loop().time()

                async def one(request: Request):
                    if realtime:
                        offset = request.arrival_s * time_scale
                        delay = offset - (asyncio.get_running_loop().time()
                                          - origin)
                        if delay > 0:
                            await asyncio.sleep(delay)
                    return await self.infer(pool[request.pool_index])

                return await asyncio.gather(*(one(r) for r in trace))
            finally:
                await self.stop()

        outputs = asyncio.run(_drive())
        duration = time.perf_counter() - start
        latencies = np.concatenate(
            [shard.batcher.telemetry.latencies_since(mark)
             for shard, mark in zip(self.shards, marks)]) \
            if self.shards else np.empty(0)
        report = self._report(len(trace), duration, latencies)
        self._finalize_run(report)
        return outputs, report

    # ------------------------------------------------------------------
    # Deterministic replay (simulated clock, same batching discipline)
    # ------------------------------------------------------------------
    def _form_batches(self, arrivals: np.ndarray, member_order: np.ndarray
                      ) -> list[tuple[float, np.ndarray]]:
        """Collector-equivalent batches over one shard's request stream.

        A batch opens at its oldest request and closes when full or
        when ``max_wait_s`` elapses — membership depends only on the
        arrival times and the batcher config (the collector is
        modelled as always available).
        """
        config = self.batcher_config
        batches = []
        i = 0
        while i < len(member_order):
            first_arrival = arrivals[member_order[i]]
            deadline = first_arrival + config.max_wait_s
            j = i + 1
            while (j < len(member_order) and j - i < config.max_batch_size
                   and arrivals[member_order[j]] <= deadline):
                j += 1
            close_time = arrivals[member_order[j - 1]] \
                if j - i == config.max_batch_size else deadline
            batches.append((float(close_time), member_order[i:j]))
            i = j
        return batches

    def replay(self, trace: list[Request], pool: np.ndarray
               ) -> tuple[list, ServingReport]:
        """Replay a trace with deterministic shard and batch composition.

        Requests are partitioned onto their shards by signature
        routing, each shard's batches form exactly as its collector
        would form them on the trace's own clock, and the batches
        execute serially in (close-time, shard, sequence) order — so
        membership and every cache decision depend *only* on the trace,
        the batcher config and the shard count (unlike the wall-clock
        :meth:`serve_trace` path, where service time feeds back into
        composition).  Latency combines the simulated queue wait with
        measured compute time; each shard is its own backend worker, so
        shards drain their queues in parallel on the simulated clock.
        """
        self._begin_run("replay", requests=len(trace))
        arrivals = np.array([request.arrival_s for request in trace])
        order = np.argsort(arrivals, kind="stable")
        shard_of = self._shards_for_trace(trace, pool)
        outputs: list = [None] * len(trace)
        latencies = np.zeros(len(trace))
        wall_start = time.perf_counter()

        scheduled = []
        for shard in self.shards:
            member_order = order[shard_of[order] == shard.index] \
                if self.num_shards > 1 else order
            for sequence, (close_time, members) in enumerate(
                    self._form_batches(arrivals, member_order)):
                scheduled.append((close_time, shard.index, sequence,
                                  members))
        scheduled.sort(key=lambda entry: entry[:3])

        free_at = [0.0] * self.num_shards
        for close_time, shard_index, _sequence, members in scheduled:
            shard = self.shards[shard_index]
            compute_start = time.perf_counter()
            batch_outputs = self._process_shard_batch(
                shard, [pool[trace[k].pool_index] for k in members])
            compute_s = time.perf_counter() - compute_start
            service_start = max(close_time, free_at[shard_index])
            service_end = service_start + compute_s
            free_at[shard_index] = service_end
            for position, k in enumerate(members):
                outputs[k] = batch_outputs[position]
                latencies[k] = service_end - arrivals[k]
            shard.batcher.telemetry.record_batch(len(members))

        duration = time.perf_counter() - wall_start
        report = self._report(
            len(trace), duration, latencies,
            simulated_makespan_s=max(free_at) if len(trace) else 0.0)
        self._finalize_run(report)
        return outputs, report

    # ------------------------------------------------------------------
    # Exactness oracle
    # ------------------------------------------------------------------
    def oracle_outputs(self, payloads: np.ndarray) -> np.ndarray:
        """Engine-less per-request forwards of the same weights.

        Every payload is forwarded alone, so each oracle output depends
        only on its own payload — the canonical reference the exact
        serving configuration reproduces byte for byte, at any shard
        count.
        """
        self.model.set_engine(None)
        try:
            self.model.eval()
            outputs = [np.asarray(self.model(payload[None])[0],
                                  dtype=np.float64)
                       for payload in payloads]
        finally:
            self.model.set_engine(self.shards[0].vector_engine)
        return np.stack(outputs) if outputs else np.empty((0,))

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _policy_fingerprint(self) -> dict:
        fingerprint = self.policy.fingerprint()
        fingerprint.update({
            "request_cache": self.policy.request_cache,
            "vector_cache": self.policy.vector_cache,
            "compute": self.policy.compute,
            # Vector-cache scope: a mismatch would strand restored
            # streams (never probed, or probed at other vector lengths).
            "layers": list(self.policy.layers)
            if self.policy.layers is not None else None,
            "conv_channel_group": self.policy.conv_channel_group,
            "replicate_top": self.policy.replicate_top,
            "replicate_min_count": self.policy.replicate_min_count,
        })
        return fingerprint

    def _model_fingerprint(self) -> str:
        """SHA-256 over the model's parameter bytes.

        Cached outputs are only valid for the weights that produced
        them — ``exact_check`` verifies input payloads, never weights —
        so :meth:`restore` refuses a snapshot taken under different
        parameters instead of silently serving stale outputs.
        """
        import hashlib
        digest = hashlib.sha256()
        for parameter in self.model.parameters():
            array = np.ascontiguousarray(parameter.value)
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        return digest.hexdigest()

    def snapshot(self, path) -> dict:
        """Persist every shard's cache state under ``path`` (a directory).

        Writes a versioned JSON manifest plus one ``.npz`` holding the
        plain-array payloads of every request- and vector-granularity
        cache; :meth:`restore` on an identically configured server
        rebuilds the donor's exact cache state.  Returns the manifest.

        The write is torn-proof: both files land in temp names first
        and are committed with :func:`os.replace`, manifest last, so a
        crash at any instant leaves either the previous complete
        snapshot or the new one — never a manifest pointing at partial
        arrays.  The arrays file carries a per-snapshot generation
        suffix so that overwriting an existing snapshot can never pair
        an old manifest with new arrays (or vice versa); stale
        generations are cleaned up after the manifest commits.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        caches = []
        arrays: dict[str, np.ndarray] = {}

        def _add(kind: str, shard_index: int, cache, **identity):
            prefix = f"c{len(caches)}"
            meta, cache_arrays = cache.state_dict()
            caches.append({"prefix": prefix, "kind": kind,
                           "shard": shard_index, "meta": meta, **identity})
            for name, value in cache_arrays.items():
                arrays[f"{prefix}.{name}"] = value

        for shard in self.shards:
            if shard.request_cache is not None:
                _add("request", shard.index, shard.request_cache)
            if shard.vector_engine is not None:
                for layer, length, cache in \
                        shard.vector_engine.cache_streams():
                    _add("vector", shard.index, cache, layer=layer,
                         vector_length=length)

        # The generation makes the arrays filename unique per snapshot
        # of this directory, so a new manifest can never resolve to an
        # older (or half-written) arrays file.
        generation = sum(shard.batch_count for shard in self.shards)
        arrays_name = f"state-{generation}.npz"
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "shards": self.num_shards,
            "policy": self._policy_fingerprint(),
            "model": self._model_fingerprint(),
            "shard_batch_indices": [shard.batch_index
                                    for shard in self.shards],
            "shard_batch_counts": [shard.batch_count
                                   for shard in self.shards],
            "arrays": arrays_name,
            "caches": caches,
        }
        # Temp names keep the .npz suffix (np.savez appends it
        # otherwise) but never match the committed-arrays glob below.
        arrays_tmp = path / (".tmp-" + arrays_name)
        manifest_tmp = path / (".tmp-" + SNAPSHOT_MANIFEST)
        np.savez(arrays_tmp, **arrays)
        os.replace(arrays_tmp, path / arrays_name)
        manifest_tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        # Manifest commits last: its presence implies complete arrays.
        os.replace(manifest_tmp, path / SNAPSHOT_MANIFEST)
        for stale in path.glob("state*.npz"):
            if stale.name != arrays_name:
                stale.unlink(missing_ok=True)
        for stale in path.glob(".tmp-*"):
            stale.unlink(missing_ok=True)
        if self.telemetry is not None:
            self.bus.emit("snapshot.write", source="server",
                          caches=len(caches), generation=generation)
            if self.telemetry.recorder is not None:
                self.telemetry.recorder.record_event(
                    "snapshot.write", path=str(path), caches=len(caches),
                    generation=generation)
        return manifest

    def restore(self, path) -> dict:
        """Warm-start this server from a :meth:`snapshot` directory.

        Validates the manifest (format, version, shard count and the
        full serving-policy fingerprint must match) and rebuilds every
        cache into the donor's exact state — placements, stored data,
        TTL ages and counters — so subsequent traffic sees the donor's
        hit behaviour.  Returns the manifest.
        """
        path = Path(path)
        manifest_path = path / SNAPSHOT_MANIFEST
        if not manifest_path.exists():
            # snapshot() commits the manifest last, so its absence means
            # no complete snapshot exists here (e.g. a crash mid-write).
            raise ValueError(f"{path} holds no complete snapshot "
                             f"(missing {SNAPSHOT_MANIFEST})")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(f"{path} is not a serving snapshot")
        if manifest.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {manifest.get('version')!r} is not "
                f"supported (expected {SNAPSHOT_VERSION})")
        if manifest.get("shards") != self.num_shards:
            raise ValueError(
                f"snapshot was taken with {manifest.get('shards')} shards; "
                f"this server has {self.num_shards} (signature routing "
                f"would scatter the restored keys)")
        if manifest.get("policy") != self._policy_fingerprint():
            raise ValueError("snapshot was taken under a different "
                             "serving policy; refusing to restore")
        if manifest.get("model") != self._model_fingerprint():
            raise ValueError("snapshot was taken under different model "
                             "weights; its cached outputs would be stale "
                             "— refusing to restore")

        arrays_name = manifest.get("arrays", SNAPSHOT_ARRAYS)
        with np.load(path / arrays_name) as payload:
            for record in manifest["caches"]:
                shard = self.shards[record["shard"]]
                if record["kind"] == "request":
                    cache = shard.request_cache
                    if cache is None:
                        raise ValueError("snapshot holds a request cache "
                                         "but the policy disables it")
                else:
                    cache = shard.vector_engine.cache_for(
                        record["layer"], int(record["vector_length"]))
                prefix = record["prefix"] + "."
                cache_arrays = {name[len(prefix):]: payload[name]
                                for name in payload.files
                                if name.startswith(prefix)}
                cache.load_state_dict(record["meta"], cache_arrays)

        for shard, batch_index, batch_count in zip(
                self.shards, manifest["shard_batch_indices"],
                manifest["shard_batch_counts"]):
            shard.batch_index = int(batch_index)
            shard.batch_count = int(batch_count)
            if shard.vector_engine is not None:
                shard.vector_engine.batch_index = int(batch_index)
        if self.telemetry is not None:
            self.bus.emit("snapshot.restore", source="server",
                          caches=len(manifest["caches"]))
            if self.telemetry.recorder is not None:
                self.telemetry.recorder.record_event(
                    "snapshot.restore", path=str(path),
                    caches=len(manifest["caches"]))
        return manifest

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def cache_counters(self) -> CacheCounters:
        """Aggregate cache-lifetime counters across every shard.

        Counters survive :meth:`restore`, so on a warm-started server
        they cover the donor's traffic too; diff two calls to measure
        one run (the CLI's warm-start gate does).
        """
        if self.policy.request_cache:
            return CacheCounters.aggregate(
                shard.request_cache.counters for shard in self.shards)
        if self.policy.vector_cache:
            return CacheCounters.aggregate(
                shard.vector_engine.counters() for shard in self.shards)
        return CacheCounters()

    def _report(self, requests: int, duration_s: float, latencies_s,
                simulated_makespan_s: float = 0.0) -> ServingReport:
        quantiles = _percentiles_ms(latencies_s)
        telemetry = BatcherTelemetry.aggregate(
            shard.batcher.telemetry for shard in self.shards)
        request_counters = CacheCounters.aggregate(
            shard.request_cache.counters for shard in self.shards
            if shard.request_cache is not None).to_dict() \
            if self.policy.request_cache else {}
        vector_counters = CacheCounters.aggregate(
            shard.vector_engine.counters() for shard in self.shards
            if shard.vector_engine is not None).to_dict() \
            if self.policy.vector_cache else {}
        layer_stats = [dict(row, shard=shard.index)
                       for shard in self.shards
                       if shard.vector_engine is not None
                       for row in shard.vector_engine.layer_summary()]
        if request_counters:
            hit_rate = request_counters["hit_rate"]
        elif vector_counters:
            hit_rate = vector_counters["hit_rate"]
        else:
            hit_rate = 0.0
        # Streaming percentile reads: the batchers' merged log-bucket
        # histogram where latencies flowed through record_latency (the
        # asyncio path); the simulated-clock replay path never does, so
        # fold its latency array into a transient histogram instead.
        latency_hist = telemetry.latency_hist
        if latency_hist.count == 0 and len(latencies_s):
            latency_hist = LogHistogram()
            latency_hist.record_many(latencies_s)
        hist_p50_ms = latency_hist.percentile(50) * 1e3 \
            if latency_hist.count else 0.0
        hist_p99_ms = latency_hist.percentile(99) * 1e3 \
            if latency_hist.count else 0.0
        return ServingReport(
            requests=requests,
            batches=sum(shard.batch_count for shard in self.shards),
            mean_batch_size=telemetry.mean_batch_size,
            duration_s=duration_s,
            throughput_rps=requests / duration_s if duration_s else 0.0,
            latency_p50_ms=quantiles["p50"],
            latency_p95_ms=quantiles["p95"],
            latency_p99_ms=quantiles["p99"],
            latency_mean_ms=quantiles["mean"],
            request_cache=request_counters,
            vector_cache=vector_counters,
            layer_stats=layer_stats,
            hit_rate=hit_rate,
            shards=self.num_shards,
            shard_stats=[shard.stats_row() for shard in self.shards],
            simulated_makespan_s=simulated_makespan_s,
            l2=self.l2.stats_dict() if self.l2 is not None else {},
            latency_hist_p50_ms=hist_p50_ms,
            latency_hist_p99_ms=hist_p99_ms,
            telemetry=self.telemetry.summary()
            if self.telemetry is not None else {})

    def stats(self) -> dict:
        """Live snapshot (the HTTP ``/stats`` payload).

        ``duration_s``/``throughput_rps`` are wall clock since the
        server was built; ``compute_time_s`` is the model time inside
        that.
        """
        telemetry = BatcherTelemetry.aggregate(
            shard.batcher.telemetry for shard in self.shards)
        report = self._report(telemetry.completed,
                              time.perf_counter() - self._started_at,
                              telemetry.latency_values())
        payload = report.to_dict()
        payload["queue_depth"] = sum(shard.batcher.depth
                                     for shard in self.shards)
        payload["compute_time_s"] = self._compute_time_s
        return payload

    def metrics_text(self) -> str:
        """The Prometheus text exposition (the HTTP ``/metrics`` body).

        Drains the bus into the metrics registry first, so a scrape
        always reflects every batch served before it.  Requires a
        telemetry bundle (the HTTP front end answers 404 otherwise).
        """
        if self.telemetry is None:
            raise RuntimeError("telemetry is off; build the server with "
                               "a repro.obs.Telemetry to scrape metrics")
        return self.telemetry.render_prometheus()

    # ------------------------------------------------------------------
    # HTTP front end (stdlib only)
    # ------------------------------------------------------------------
    def serve_http(self, host: str = "127.0.0.1", port: int = 0
                   ) -> "HttpFrontEnd":
        """Start the HTTP front end; returns a handle with ``.port``."""
        front = HttpFrontEnd(self, host, port)
        front.start()
        return front


class HttpFrontEnd:
    """JSON-over-HTTP adapter around an :class:`InferenceServer`.

    ``POST /infer`` with ``{"inputs": <nested list>}`` returns
    ``{"outputs": <nested list>}``; ``GET /stats`` and ``GET /healthz``
    report telemetry and liveness.  The asyncio loop (and the
    micro-batchers of every shard) runs on a dedicated thread; HTTP
    handler threads submit into it and block on the result — so
    concurrent HTTP clients still share micro-batches.
    """

    def __init__(self, server: InferenceServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = server
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._http = None
        self._http_thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        ready = threading.Event()
        startup_errors: list[BaseException] = []

        def run_loop():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 — report below
                startup_errors.append(error)
                ready.set()
                return
            ready.set()
            loop.run_forever()

        self._loop_thread = threading.Thread(target=run_loop, daemon=True)
        self._loop_thread.start()
        # Fail loudly instead of binding HTTP to a dead event loop.
        if not ready.wait(timeout=10):
            raise RuntimeError("serving loop did not start within 10s")
        if startup_errors:
            self._loop = None
            raise RuntimeError("serving loop failed to start") \
                from startup_errors[0]

        front = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # pragma: no cover — quiet
                pass

            def _send(self, status: int, payload: dict) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path == "/healthz":
                    self._send(200, {"ok": True})
                elif self.path == "/stats":
                    self._send(200, front.server.stats())
                elif self.path == "/metrics":
                    if front.server.telemetry is None:
                        self._send(404, {"error": "telemetry is off"})
                        return
                    body = front.server.metrics_text().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type",
                                     "text/plain; version=0.0.4")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self._send(404, {"error": f"unknown path {self.path}"})

            def do_POST(self):
                if self.path != "/infer":
                    self._send(404, {"error": f"unknown path {self.path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length))
                    inputs = np.asarray(payload["inputs"])
                    started = time.perf_counter()
                    outputs = front.submit(inputs)
                    latency_ms = (time.perf_counter() - started) * 1e3
                except Exception as error:  # noqa: BLE001 — report to client
                    self._send(400, {"error": str(error)})
                    return
                self._send(200, {"outputs": np.asarray(outputs).tolist(),
                                 "latency_ms": latency_ms})

        self._http = ThreadingHTTPServer((self.host, self._requested_port),
                                         Handler)
        self.port = self._http.server_address[1]
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, daemon=True)
        self._http_thread.start()

    def submit(self, inputs: np.ndarray, timeout_s: float = 30.0):
        """Thread-safe inference: submit into the serving loop."""
        if self._loop is None:
            raise RuntimeError("front end is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.server.infer(inputs), self._loop)
        return future.result(timeout=timeout_s)

    def stop(self) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http_thread.join(timeout=5)
            self._http = None
        if self._loop is not None:
            stop_future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop)
            stop_future.result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5)
            self._loop = None

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "HttpFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
