"""The MERCURY reuse engine.

:class:`ReuseEngine` is the functional model of MERCURY: every dot
product a layer would perform is routed through :meth:`ReuseEngine.matmul`,
which

1. computes (or reloads) RPQ signatures for the incoming vectors,
2. probes a freshly-cleared MCACHE with each signature to build the
   Hitmap (HIT / MAU / MNU),
3. executes the dot products of MAU and MNU vectors exactly and *copies*
   the already-computed result for HIT vectors, and
4. records per-layer statistics that the accelerator cycle model and the
   adaptation policies consume.

This mirrors the paper's split: the functional effect of MERCURY (which
results are reused, and therefore how training accuracy is affected) is
independent of the hardware timing, which lives in
:mod:`repro.accelerator`.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import SignatureLengthScheduler, SimilarityStoppage
from repro.core.config import MercuryConfig
from repro.core.hitmap_sim import HitmapSimulation
from repro.core.rpq import RPQHasher
from repro.core.session import ReuseSession, SessionPolicy
from repro.core.signature import SignatureTable
from repro.core.stats import ReuseStats


class ExactCountingEngine:
    """A drop-in engine that performs exact matmuls but records layer shapes.

    Used to characterise the baseline accelerator: it sees exactly the
    same stream of (vectors, weights) calls as the reuse engine, so the
    cycle model can charge the baseline cost for each of them.
    """

    def __init__(self):
        self.stats = ReuseStats()

    def matmul(self, vectors: np.ndarray, weights: np.ndarray, *,
               layer: str, phase: str = "forward") -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        record = self.stats.record_for(layer, phase)
        record.merge_call(vectors=vectors.shape[0], hits=0, mau=0,
                          mnu=vectors.shape[0],
                          vector_length=vectors.shape[1],
                          num_filters=weights.shape[1],
                          signature_bits=0,
                          unique_signatures=vectors.shape[0],
                          detection_on=False)
        return vectors @ weights

    def end_iteration(self, loss: float | None = None) -> None:
        """No adaptation for the baseline; kept for interface parity."""


class ReuseEngine:
    """Functional MERCURY: signature-based grouping of dot products."""

    def __init__(self, config: MercuryConfig | None = None):
        self.config = config or MercuryConfig()
        self.hasher = RPQHasher(seed=self.config.rpq_seed)
        self.signature_table = SignatureTable()
        self.stats = ReuseStats()          # cumulative over the run
        self.batch_stats = ReuseStats()    # reset at every end_iteration
        self.scheduler = SignatureLengthScheduler(
            initial_bits=self.config.signature_bits,
            max_bits=self.config.max_signature_bits,
            plateau_iterations=self.config.plateau_iterations,
            tolerance=self.config.loss_plateau_tolerance)
        self.stoppage = SimilarityStoppage(
            stoppage_batches=self.config.stoppage_batches,
            pipelined_signatures=self.config.pipelined_signatures)
        self.iterations = 0
        # The shared probe/insert + cache-ride core, in flash mode: the
        # signature phase sees a freshly-cleared MCACHE per layer call,
        # matching the hardware's per-channel flush.  The serving
        # engines build on the same ReuseSession in persistent mode, so
        # the two cannot drift.  ``session.mcache`` is the one batch
        # MCACHE behind the "vectorized" backend — one persistent
        # instance so its access counters characterise the whole run
        # (Figure 15a).
        self.session = ReuseSession(
            SessionPolicy(signature_bits=self.config.signature_bits,
                          entries=self.config.mcache_entries,
                          ways=self.config.mcache_ways,
                          exact_check=False,
                          rpq_seed=self.config.rpq_seed),
            hasher=self.hasher, persistent=False,
            backend=self.config.mcache_backend,
            versions=self.config.mcache_versions)
        self.mcache = self.session.mcache
        # Last Hitmap simulation per (layer, phase), exposed for tests
        # and for the accelerator simulator (call ``.to_hitmap()`` for a
        # full Hitmap object).
        self.last_simulations: dict[tuple[str, str], HitmapSimulation] = {}

    # ------------------------------------------------------------------
    @property
    def signature_bits(self) -> int:
        """Signature length currently in force (grows via adaptation)."""
        return self.scheduler.bits

    def _detection_enabled(self, layer: str, phase: str) -> bool:
        if phase == "forward" and not self.config.reuse_forward:
            return False
        if phase == "backward" and not self.config.reuse_backward:
            return False
        if (self.config.adaptive_stoppage
                and not self.stoppage.is_enabled_for(layer, phase)):
            return False
        return True

    # ------------------------------------------------------------------
    def _signatures_for(self, vectors: np.ndarray, layer: str,
                        phase: str) -> tuple[np.ndarray, bool]:
        """Return signatures, reloading forward ones in backward if legal."""
        num_vectors, vector_length = vectors.shape
        if (phase == "backward"
                and self.config.reload_signatures_in_backward):
            record = self.signature_table.lookup(layer, vector_length,
                                                 num_vectors)
            if record is not None:
                return record.signatures, True
        # The pure hasher path: every batch reaching the engine is a
        # freshly extracted array hashed exactly once (cross-phase reuse
        # is the SignatureTable reload above, the paper's §III-C2
        # mechanism), so the identity-keyed SignaturePipeline cache
        # could never hit here — it would only add a fingerprint pass
        # and a staleness hazard for callers that mutate arrays in
        # place.  Growth sweeps that re-hash one held batch opt in via
        # ``self.hasher.pipeline(key)``.
        signatures = self.hasher.signatures(vectors, self.signature_bits)
        return signatures, False

    def _build_hitmap(self, signatures: np.ndarray) -> HitmapSimulation:
        """Simulate the MCACHE signature phase for every vector (Figure 9).

        Delegates to the flash-mode :class:`ReuseSession`, the single
        home of the backend dispatch (all three backends stay
        bit-identical — the differential suite asserts it).
        """
        return self.session.classify(signatures)

    # ------------------------------------------------------------------
    def matmul(self, vectors: np.ndarray, weights: np.ndarray, *,
               layer: str, phase: str = "forward") -> np.ndarray:
        """Multiply ``vectors`` (rows) by ``weights`` with signature reuse."""
        vectors = np.asarray(vectors, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if vectors.ndim != 2 or weights.ndim != 2:
            raise ValueError("matmul expects 2D vectors and weights")
        if vectors.shape[1] != weights.shape[0]:
            raise ValueError(
                f"shape mismatch: vectors {vectors.shape} x weights {weights.shape}")

        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]

        if not self._detection_enabled(layer, phase):
            result = vectors @ weights
            self._record(layer, phase, vectors=num_vectors, hits=0, mau=0,
                         mnu=num_vectors, vector_length=vector_length,
                         num_filters=num_filters, unique=num_vectors,
                         detection_on=False)
            return result

        signatures, reloaded = self._signatures_for(vectors, layer, phase)
        simulation = self._build_hitmap(signatures)
        result = ReuseSession.ride(vectors, weights, simulation)

        if phase == "forward":
            self.signature_table.store(layer, vector_length,
                                       self.signature_bits, signatures,
                                       simulation)
        self.last_simulations[(layer, phase)] = simulation

        self._record(layer, phase, vectors=num_vectors,
                     hits=simulation.hits, mau=simulation.mau,
                     mnu=simulation.mnu, vector_length=vector_length,
                     num_filters=num_filters,
                     unique=simulation.unique_signatures,
                     detection_on=True, signatures_reloaded=reloaded)
        return result

    # ------------------------------------------------------------------
    def matmul_groups(self, vectors_groups, weights_groups, *, layer: str,
                      phase: str = "forward") -> list[np.ndarray]:
        """Service several same-layer matmul calls in one signature phase.

        ``vectors_groups[i] @ weights_groups[i]`` with signature reuse,
        exactly as ``len(vectors_groups)`` successive :meth:`matmul`
        calls would compute it — same results, statistics, MCACHE
        counters and signature-table state, which the regression suite
        asserts — but the Hitmap classification for all groups runs as
        one multi-group group-by
        (:func:`repro.core.hitmap_sim.simulate_hitmap_grouped`), so the
        per-call overhead that dominated ``conv_channel_group=1`` runs
        is paid once per layer call instead of once per channel group.
        Each group still probes a fresh MCACHE: signatures never match,
        and never steal ways, across groups.
        """
        groups = [np.asarray(vectors, dtype=np.float64)
                  for vectors in vectors_groups]
        weights_list = [np.asarray(weights, dtype=np.float64)
                        for weights in weights_groups]
        if len(groups) != len(weights_list):
            raise ValueError("vectors_groups and weights_groups must pair up")
        if phase != "forward" or len(groups) <= 1:
            # Backward calls may reload signatures from the table, a
            # stateful per-call interaction the batched phase does not
            # model; delegate to the exact per-call path.
            return [self.matmul(vectors, weights, layer=layer, phase=phase)
                    for vectors, weights in zip(groups, weights_list)]
        for vectors, weights in zip(groups, weights_list):
            if vectors.ndim != 2 or weights.ndim != 2:
                raise ValueError("matmul_groups expects 2D groups")
            if vectors.shape[1] != weights.shape[0]:
                raise ValueError(
                    f"shape mismatch: vectors {vectors.shape} x "
                    f"weights {weights.shape}")

        if not self._detection_enabled(layer, phase):
            results = []
            for vectors, weights in zip(groups, weights_list):
                results.append(vectors @ weights)
                self._record(layer, phase, vectors=vectors.shape[0], hits=0,
                             mau=0, mnu=vectors.shape[0],
                             vector_length=vectors.shape[1],
                             num_filters=weights.shape[1],
                             unique=vectors.shape[0], detection_on=False)
            return results

        # The pure hasher path per group (identical to matmul's forward
        # signature computation — projections are per-row, but hashing
        # group by group keeps each gemm call bitwise identical to the
        # per-call oracle).
        signature_groups = [self.hasher.signatures(vectors,
                                                   self.signature_bits)
                            for vectors in groups]
        simulations = self._build_hitmaps_grouped(signature_groups)

        # The fused ride assembles all groups through one gather → block
        # GEMM → scatter; it needs one shared (length, filters) shape
        # (a ragged tail group — in_channels not divisible — falls back
        # to the per-group masked ride, which is the oracle anyway).
        uniform = all(
            weights.shape == weights_list[0].shape
            for weights in weights_list[1:])
        if self.config.fused_ride and uniform:
            results = ReuseSession.ride_groups(groups, weights_list,
                                               simulations)
        else:
            results = [ReuseSession.ride(vectors, weights, simulation)
                       for vectors, weights, simulation in
                       zip(groups, weights_list, simulations)]

        for vectors, weights, signatures, simulation in zip(
                groups, weights_list, signature_groups, simulations):
            num_vectors, vector_length = vectors.shape
            num_filters = weights.shape[1]

            # Per-group bookkeeping mirrors the per-call loop exactly:
            # the table record is overwritten per group (last group
            # wins), and statistics merge one call per group.
            self.signature_table.store(layer, vector_length,
                                       self.signature_bits, signatures,
                                       simulation)
            self.last_simulations[(layer, phase)] = simulation
            self._record(layer, phase, vectors=num_vectors,
                         hits=simulation.hits, mau=simulation.mau,
                         mnu=simulation.mnu, vector_length=vector_length,
                         num_filters=num_filters,
                         unique=simulation.unique_signatures,
                         detection_on=True, signatures_reloaded=False)
        return results

    def _build_hitmaps_grouped(self, signature_groups) -> list[HitmapSimulation]:
        """One Hitmap per group, via the session's multi-group phase."""
        return self.session.classify_groups(signature_groups,
                                            self.signature_bits)

    # ------------------------------------------------------------------
    def _record(self, layer: str, phase: str, *, vectors: int, hits: int,
                mau: int, mnu: int, vector_length: int, num_filters: int,
                unique: int, detection_on: bool,
                signatures_reloaded: bool = False) -> None:
        for stats in (self.stats, self.batch_stats):
            record = stats.record_for(layer, phase)
            record.merge_call(vectors=vectors, hits=hits, mau=mau, mnu=mnu,
                              vector_length=vector_length,
                              num_filters=num_filters,
                              signature_bits=self.signature_bits,
                              unique_signatures=unique,
                              detection_on=detection_on,
                              signatures_reloaded=signatures_reloaded)

    # ------------------------------------------------------------------
    def end_iteration(self, loss: float | None = None) -> None:
        """Close out one training iteration.

        Feeds the loss to the signature-length scheduler and the batch
        statistics to the per-layer stoppage policy, then clears the
        per-batch statistics.
        """
        self.iterations += 1
        if loss is not None and self.config.adaptive_signature_length:
            self.scheduler.observe_loss(float(loss))
        if self.config.adaptive_stoppage:
            for record in self.batch_stats.all_records():
                if record.similarity_detection_on:
                    self.stoppage.observe_batch(record)
        self.batch_stats = ReuseStats()

    # ------------------------------------------------------------------
    def disabled_layers(self) -> list[str]:
        """Layers whose similarity detection has been switched off."""
        return self.stoppage.disabled_layers()

    def reset_statistics(self) -> None:
        self.stats = ReuseStats()
        self.batch_stats = ReuseStats()
        self.mcache.stats = type(self.mcache.stats)()
        self.last_simulations.clear()
