"""im2col / col2im utilities.

The paper's accelerator operates on *input vectors* extracted from the
input matrix — exactly the columns that im2col produces.  MERCURY's
signatures are computed per extracted vector, so these helpers are the
bridge between the functional convolution and the reuse engine.

The extraction itself is the hottest data-movement path of functional
training, so it is built on :func:`numpy.lib.stride_tricks.as_strided`
views: :func:`sliding_windows` exposes every patch of the (padded)
input without copying a byte, and :func:`im2col` materialises the
``(vectors, patch)`` matrix with a *single* copy — only because the
downstream GEMM needs contiguous rows.  Other consumers (pooling, the
convolution-formulated signature path) start from the same view and pay
only whatever gather *they* need — ``MaxPool2D`` copies its
``k^2``-expanded window matrix, but no longer loop-fills it.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * pad - kernel) // stride + 1


def sliding_windows(x: np.ndarray, kernel_h: int, kernel_w: int,
                    stride: int = 1) -> np.ndarray:
    """Zero-copy view of every ``kernel_h x kernel_w`` patch of ``x``.

    Parameters
    ----------
    x:
        Array of shape ``(batch, channels, height, width)``.  Padding, if
        any, must already have been applied.
    kernel_h, kernel_w, stride:
        Patch geometry.

    Returns
    -------
    numpy.ndarray
        Read-only strided view of shape ``(batch, channels, kernel_h,
        kernel_w, out_h, out_w)`` aliasing ``x``'s memory — the same
        layout the historical loop-filled buffer used, for free.
    """
    batch, channels, height, width = x.shape
    out_h = (height - kernel_h) // stride + 1
    out_w = (width - kernel_w) // stride + 1
    stride_b, stride_c, stride_h, stride_w = x.strides
    return as_strided(
        x,
        shape=(batch, channels, kernel_h, kernel_w, out_h, out_w),
        strides=(stride_b, stride_c, stride_h, stride_w,
                 stride_h * stride, stride_w * stride),
        writeable=False)


def _pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    if pad > 0:
        return np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)],
                      mode="constant")
    return x


def im2col_view(x: np.ndarray, kernel_h: int, kernel_w: int,
                stride: int = 1, pad: int = 0) -> np.ndarray:
    """Patch view ordered like :func:`im2col` rows, without the copy.

    Returns a (generally non-contiguous) view of shape ``(batch, out_h,
    out_w, channels, kernel_h, kernel_w)``; reshaping it to 2-D is what
    :func:`im2col` does, and is the only copy in the pipeline.
    """
    x = _pad_input(x, pad)
    windows = sliding_windows(x, kernel_h, kernel_w, stride)
    return windows.transpose(0, 4, 5, 1, 2, 3)


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int,
           stride: int = 1, pad: int = 0) -> np.ndarray:
    """Convert a batch of images into a matrix of extracted input vectors.

    Parameters
    ----------
    x:
        Input of shape ``(batch, channels, height, width)``.
    kernel_h, kernel_w:
        Filter dimensions.
    stride, pad:
        Convolution stride and zero padding.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(batch * out_h * out_w, channels * kernel_h *
        kernel_w)``; each row is one input vector in the paper's sense.
        The values (and their order) are identical to the historical
        loop implementation (:func:`im2col_reference`); only the number
        of copies differs — one, forced by the contiguity the GEMM
        consuming the rows requires.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    patches = im2col_view(x, kernel_h, kernel_w, stride, pad)
    return patches.reshape(batch * out_h * out_w,
                           channels * kernel_h * kernel_w)


def im2col_reference(x: np.ndarray, kernel_h: int, kernel_w: int,
                     stride: int = 1, pad: int = 0) -> np.ndarray:
    """The pre-optimisation loop-filled im2col.

    Kept as the differential oracle for :func:`im2col` (the equivalence
    property tests compare the two bit-for-bit) and as the "before"
    implementation the perf suite (``benchmarks/perf_suite.py``) times
    the strided rewrite against.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    x = _pad_input(x, pad)

    cols = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w),
                    dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]

    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w)
    return cols


def col2im(cols: np.ndarray, input_shape: tuple, kernel_h: int, kernel_w: int,
           stride: int = 1, pad: int = 0) -> np.ndarray:
    """Inverse of :func:`im2col` accumulating overlapping contributions.

    Parameters
    ----------
    cols:
        Matrix of shape ``(batch * out_h * out_w, channels * kernel_h *
        kernel_w)``.
    input_shape:
        The original ``(batch, channels, height, width)``.

    Returns
    -------
    numpy.ndarray
        Array with the original input shape where overlapping patch
        positions have been summed (as required by convolution
        backward).

    Overlapping windows alias each other, so the scatter-add cannot be a
    single strided write; instead the patch axes are walked (``kernel_h
    * kernel_w`` vectorised slice-adds) while everything read from
    ``cols`` stays a view.
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    # Views only: reshape of the (contiguous) cols matrix, then axis
    # permutation back to (batch, channels, kernel_h, kernel_w, ...).
    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((batch, channels, height + 2 * pad + stride - 1,
                       width + 2 * pad + stride - 1), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]

    return padded[:, :, pad:pad + height, pad:pad + width]
