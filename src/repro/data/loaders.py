"""Minibatch loading utilities."""

from __future__ import annotations

import numpy as np


def train_test_split(inputs: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.25, seed: int = 0):
    """Split arrays into train and test portions.

    Returns ``(train_inputs, train_labels, test_inputs, test_labels)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(inputs) != len(labels):
        raise ValueError("inputs and labels must have the same length")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(inputs))
    split = int(round(len(inputs) * (1.0 - test_fraction)))
    if split == 0 or split == len(inputs):
        raise ValueError("split produced an empty partition")
    train_idx, test_idx = order[:split], order[split:]
    return inputs[train_idx], labels[train_idx], inputs[test_idx], labels[test_idx]


class BatchLoader:
    """Iterates minibatches, optionally reshuffling every epoch."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray,
                 batch_size: int = 8, shuffle: bool = True, seed: int = 0):
        if len(inputs) != len(labels):
            raise ValueError("inputs and labels must have the same length")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.inputs) + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = np.arange(len(self.inputs))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            yield self.inputs[batch], self.labels[batch]
