"""Shared helpers for the per-figure/per-table benchmark harness.

Every benchmark follows the same pattern: run the relevant experiment
(functional training on the scaled models and/or the cycle model on the
paper-scale workloads), print the regenerated rows next to the paper's
reported numbers, and wrap the whole thing in the ``benchmark`` fixture
so ``pytest benchmarks/ --benchmark-only`` times it.
"""

from __future__ import annotations

import numpy as np

from repro import MercuryConfig, ReuseEngine
from repro.accelerator import MercurySimulator, make_dataflow
from repro.accelerator.workloads import build_workload, workload_to_stats
from repro.baselines import CaptureEngine
from repro.data import ClusteredImageDataset, ImageDatasetConfig, \
    TranslationConfig, TranslationDataset, train_test_split
from repro.models import MODEL_NAMES, build_model, get_spec
from repro.nn import CrossEntropyLoss
from repro.training import Trainer, TrainingConfig

# Keep the functional experiments CPU-friendly: a small number of easy
# classes and a couple of epochs is enough to show both convergence and
# the MERCURY-vs-baseline comparison.
IMAGE_CONFIG = ImageDatasetConfig(num_classes=4, samples_per_class=12,
                                  image_size=32)
TEXT_CONFIG = TranslationConfig(num_samples=96, vocab_size=64)
TRAIN_CONFIG = TrainingConfig(epochs=2, batch_size=8, learning_rate=0.01,
                              optimizer="adam")


def image_data():
    dataset = ClusteredImageDataset(IMAGE_CONFIG)
    return train_test_split(dataset.images, dataset.labels,
                            test_fraction=0.25, seed=0)


def text_data():
    dataset = TranslationDataset(TEXT_CONFIG)
    return train_test_split(dataset.sources, dataset.targets,
                            test_fraction=0.25, seed=0)


def train_model(model_name: str, engine=None, train_config=None):
    """Train one scaled model; returns (TrainingResult, validation data)."""
    spec = get_spec(model_name)
    train_config = train_config or TRAIN_CONFIG
    if spec.kind == "cnn":
        xtr, ytr, xte, yte = image_data()
        model = build_model(model_name, num_classes=IMAGE_CONFIG.num_classes,
                            seed=1)
    else:
        xtr, ytr, xte, yte = text_data()
        model = build_model(model_name, seed=1)
    trainer = Trainer(model, train_config, engine=engine)
    result = trainer.fit(xtr, ytr, validation=(xte, yte))
    return result, model, (xte, yte)


def functional_stats(model_name: str, config: MercuryConfig | None = None,
                     iterations: int = 2):
    """Reuse statistics from a few training iterations of a scaled model."""
    config = config or MercuryConfig()
    spec = get_spec(model_name)
    engine = ReuseEngine(config)
    if spec.kind == "cnn":
        xtr, ytr, _, _ = image_data()
        model = build_model(model_name, num_classes=IMAGE_CONFIG.num_classes,
                            seed=1)
    else:
        xtr, ytr, _, _ = text_data()
        model = build_model(model_name, seed=1)
    model.set_engine(engine)
    loss_fn = CrossEntropyLoss()
    batch = TRAIN_CONFIG.batch_size
    for index in range(iterations):
        start = (index * batch) % max(len(xtr) - batch, 1)
        logits = model(xtr[start:start + batch])
        loss = loss_fn(logits, ytr[start:start + batch])
        model.zero_grad()
        model.backward(loss_fn.backward())
        engine.end_iteration(loss)
    return engine


def capture_model(model_name: str):
    """One forward/backward pass with a CaptureEngine attached."""
    spec = get_spec(model_name)
    engine = CaptureEngine()
    if spec.kind == "cnn":
        xtr, ytr, _, _ = image_data()
        model = build_model(model_name, num_classes=IMAGE_CONFIG.num_classes,
                            seed=1)
    else:
        xtr, ytr, _, _ = text_data()
        model = build_model(model_name, seed=1)
    model.set_engine(engine)
    loss_fn = CrossEntropyLoss()
    logits = model(xtr[:TRAIN_CONFIG.batch_size])
    loss_fn(logits, ytr[:TRAIN_CONFIG.batch_size])
    model.zero_grad()
    model.backward(loss_fn.backward())
    return engine


def paper_scale_report(model_name: str, config: MercuryConfig | None = None,
                       dataflow_name: str | None = None,
                       hit_scale: float = 1.0):
    """Cycle report for one model at the paper's layer dimensions."""
    config = config or MercuryConfig()
    workload = build_workload(model_name,
                              signature_bits=config.signature_bits,
                              hit_scale=hit_scale)
    stats = workload_to_stats(workload)
    dataflow = make_dataflow(dataflow_name or config.dataflow)
    simulator = MercurySimulator(config, dataflow=dataflow)
    return simulator.simulate(stats, model_name, apply_analytic_stoppage=True)


def all_model_speedups(config: MercuryConfig | None = None,
                       dataflow_name: str | None = None,
                       models=None) -> dict:
    """Speedup per model at paper scale (the Figure 14c / 18 sweep)."""
    models = models or MODEL_NAMES
    return {name: paper_scale_report(name, config, dataflow_name).speedup
            for name in models}


def scenario_sweep(models=None, dataflows=("row_stationary",),
                   organizations=((1024, 16),), processes: int | None = None):
    """Grid sweep over models x dataflows x MCACHE organisations.

    Thin wrapper over :mod:`repro.analysis.sweep` so benchmarks and
    ad-hoc scripts share one executor; returns a
    :class:`repro.analysis.sweep.SweepResults`.
    """
    from repro.analysis.sweep import build_grid, run_sweep
    points = build_grid(models or MODEL_NAMES, dataflows=dataflows,
                        organizations=organizations)
    return run_sweep(points, processes=processes)


def functional_sweep(models=("squeezenet", "transformer"),
                     dataset_scales=("tiny",), adaptations=("full",),
                     signature_bits=(20,), processes: int | None = None,
                     share_baselines: bool = True, **training):
    """Training-accuracy sweep companion to :func:`scenario_sweep`.

    Every point trains a baseline/reuse pair end-to-end with shared
    seeds; the exact-baseline half is memoized per (model, scale,
    training config, seed) group unless ``share_baselines=False``.
    Returns a
    :class:`repro.analysis.functional_sweep.FunctionalSweepResults`.
    """
    from repro.analysis.functional_sweep import (build_functional_grid,
                                                 run_functional_sweep)
    points = build_functional_grid(models, dataset_scales=dataset_scales,
                                   adaptations=adaptations,
                                   signature_bits=signature_bits, **training)
    return run_functional_sweep(points, processes=processes,
                                share_baselines=share_baselines)


def serving_sweep(models=("squeezenet",), traffics=("uniform", "bursty",
                                                    "zipfian"),
                  cache_policies=("none", "request_exact", "vector_trust"),
                  batch_sizes=(8,), shard_counts=(1,),
                  admissions=("always",), num_requests: int = 200,
                  processes: int | None = None):
    """Inference-serving sweep companion to the other two grids.

    Each point replays a deterministic load-generator trace through a
    (possibly sharded) :class:`repro.serving.InferenceServer` and
    records throughput, latency percentiles, hit rates, per-shard
    balance and exactness against the engine-less forward oracle.
    Returns a :class:`repro.analysis.serving_sweep.ServingSweepResults`.
    """
    from repro.analysis.serving_sweep import (build_serving_grid,
                                              run_serving_sweep)
    points = build_serving_grid(models=models, traffics=traffics,
                                cache_policies=cache_policies,
                                batch_sizes=batch_sizes,
                                shard_counts=shard_counts,
                                admissions=admissions,
                                num_requests=num_requests)
    return run_serving_sweep(points, processes=processes)


def perf_suite(quick: bool = True, repeats: int | None = None) -> dict:
    """Hot-path segment timings (see :mod:`benchmarks.perf_suite`).

    Returns the ``BENCH_perf.json`` artifact payload: before/after wall
    clocks and speedups for im2col, RPQ projection growth, the
    multi-word Hitmap path, a full train step, baseline memoization and
    the reference functional sweep.
    """
    from benchmarks.perf_suite import run_suite
    return run_suite(quick=quick, repeats=repeats)


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
