"""Smoke tests for the hot-path perf suite.

The timing magnitudes themselves are CI-noise territory — the dedicated
perf-smoke job gates them via ``perf_suite.py --quick --check`` — so
these tests pin the artifact contract instead: every segment reports
before/after wall clocks, the seed replays are faithful, and the floor
checker actually fails when a floor is not met.
"""

from __future__ import annotations

import numpy as np

import repro.core.rpq as rpq_module
import repro.nn.layers.conv as conv_module
from benchmarks.perf_suite import (SCHEMA, check_floors, seed_mode,
                                   seed_pack_bits, segment_im2col)
from repro.core.rpq import pack_bits, signatures_to_ints
from repro.nn.im2col import im2col_reference


def test_seed_pack_bits_matches_current_values():
    rng = np.random.default_rng(0)
    narrow = rng.integers(0, 2, size=(20, 20))
    np.testing.assert_array_equal(seed_pack_bits(narrow), pack_bits(narrow))
    wide = rng.integers(0, 2, size=(8, 70))
    seed_values = seed_pack_bits(wide)
    assert seed_values.dtype == object
    np.testing.assert_array_equal(seed_values,
                                  signatures_to_ints(pack_bits(wide)))


def test_seed_mode_swaps_and_restores_implementations():
    original_im2col = conv_module.im2col
    original_pack = rpq_module.pack_bits
    with seed_mode():
        assert conv_module.im2col is im2col_reference
        assert rpq_module.pack_bits is seed_pack_bits
    assert conv_module.im2col is original_im2col
    assert rpq_module.pack_bits is original_pack


def test_segment_payload_shape():
    segment = segment_im2col(quick=True, repeats=1)
    assert segment["before_s"] > 0.0
    assert segment["after_s"] > 0.0
    assert segment["speedup"] == segment["before_s"] / segment["after_s"]


def test_check_floors_flags_misses():
    payload = {"speedups": {"im2col": 2.0, "baseline_memoization": 1.2,
                            "serving_sharded": 2.0,
                            "functional_sweep": 3.0}}
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "baseline_memoization" in failures[0]
    assert check_floors(payload, floor=1.1) == []


def test_check_floors_gates_sharded_serving():
    payload = {"speedups": {"im2col": 2.0, "baseline_memoization": 2.0,
                            "serving_sharded": 1.1}}
    failures = check_floors(payload, floor=1.5, sharded_floor=1.2)
    assert len(failures) == 1 and "serving_sharded" in failures[0]
    assert check_floors(payload, floor=1.5, sharded_floor=1.05) == []


def test_check_floors_fails_on_missing_gated_segment():
    # A gated segment disappearing from the payload must not silently
    # disable the gate.
    payload = {"speedups": {"im2col": 2.0, "serving_sharded": 2.0}}
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "baseline_memoization" in failures[0]
    assert "missing" in failures[0]


def test_run_suite_artifact_contract():
    """One fastest-possible full pass: schema, segments and speedups."""
    from benchmarks.perf_suite import run_suite
    payload = run_suite(quick=True, repeats=1)
    assert payload["schema"] == SCHEMA
    expected = {"im2col", "rpq_projection_growth", "hitmap_multiword",
                "train_step", "conv_group_batching", "serving_reuse",
                "serving_sharded", "baseline_memoization",
                "functional_sweep"}
    assert set(payload["segments"]) == expected
    assert set(payload["speedups"]) == expected
    for segment in payload["segments"].values():
        assert segment["before_s"] > 0.0 and segment["after_s"] > 0.0
        assert segment["speedup"] > 0.0
    # The artifact is JSON-safe.
    import json
    json.dumps(payload)
