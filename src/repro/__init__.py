"""repro — a reproduction of MERCURY (HPCA 2023).

MERCURY accelerates DNN training by detecting similarity among input
(and gradient) vectors with Random Projection with Quantization (RPQ)
and reusing already-computed dot products through a signature-indexed
cache (MCACHE).

The package is organised as:

* :mod:`repro.nn` — a from-scratch numpy DNN training framework
  (convolution, linear, attention, pooling, normalisation layers with
  explicit forward/backward, losses and optimizers).
* :mod:`repro.core` — the MERCURY contribution: RPQ signatures, the
  signature table, MCACHE, the Hitmap and the reuse engine that skips
  similar dot products during training, plus the adaptation policies.
* :mod:`repro.accelerator` — a cycle cost model of an Eyeriss-style
  accelerator (row-, weight- and input-stationary dataflows), the
  pipelined signature datapath and an FPGA resource/power model.
* :mod:`repro.models` — scaled versions of the twelve networks the
  paper evaluates.
* :mod:`repro.data` — synthetic datasets standing in for ImageNet-80
  and Multi30k.
* :mod:`repro.baselines` — UCNN, unlimited zero pruning, unlimited
  similarity detection and a Bloom-filter similarity detector.
* :mod:`repro.training` — training harnesses and metrics.
* :mod:`repro.analysis` — similarity characterisation and reporting.
"""

from repro.core.config import MercuryConfig
from repro.core.reuse import ReuseEngine
from repro.core.rpq import RPQHasher

__all__ = ["MercuryConfig", "ReuseEngine", "RPQHasher"]

__version__ = "1.0.0"
