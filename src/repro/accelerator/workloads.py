"""Paper-scale layer workloads.

The model zoo is width/depth-scaled so the functional experiments run on
a CPU, but cycle-level conclusions depend on the *real* layer
dimensions: at paper scale a convolution layer has 64-512 filters, so
the RPQ signature cost (signature_bits MACs per input vector and
channel) is a few percent of the layer's work, whereas in the scaled
models it can rival the layer itself.  To keep the performance figures
faithful, the accelerator benchmarks evaluate the cycle model on the
original architectures' layer shapes, combined with per-layer
similarity (hit-rate) profiles measured on the scaled functional runs.

``ARCHITECTURES`` describes each network as a list of stages
(spatial size, input channels, output channels, kernel size, layer
count) at the paper's input resolution (224x224 ImageNet crops;
sequence length 32 for the transformer).  ``build_workload`` expands the
stages into per-layer :class:`LayerWorkload` records with hit rates
taken from a measured profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import LayerReuseStats, ReuseStats


@dataclass(frozen=True)
class ConvStage:
    """One stage of equally-shaped convolution layers."""

    spatial: int          # output feature-map side length
    in_channels: int
    out_channels: int
    kernel: int
    repeat: int


@dataclass
class LayerWorkload:
    """Per-layer workload consumed by the cycle model."""

    layer: str
    num_vectors: int          # extracted input vectors (per channel)
    vector_length: int        # kernel*kernel elements per vector
    num_filters: int
    channels: int             # signature passes per layer (one per channel)
    hit_rate_forward: float
    hit_rate_backward: float
    signature_bits: int = 20


# ----------------------------------------------------------------------
# Stage descriptions of the original architectures (224x224 inputs).
# Channel counts and repeats follow the published configurations; only
# convolution stages are listed because they dominate both the baseline
# cycles and the reuse opportunity.
# ----------------------------------------------------------------------
ARCHITECTURES: dict[str, list[ConvStage]] = {
    "alexnet": [
        ConvStage(55, 3, 64, 11, 1),
        ConvStage(27, 64, 192, 5, 1),
        ConvStage(13, 192, 384, 3, 1),
        ConvStage(13, 384, 256, 3, 1),
        ConvStage(13, 256, 256, 3, 1),
    ],
    "vgg13": [
        ConvStage(224, 3, 64, 3, 1), ConvStage(224, 64, 64, 3, 1),
        ConvStage(112, 64, 128, 3, 1), ConvStage(112, 128, 128, 3, 1),
        ConvStage(56, 128, 256, 3, 1), ConvStage(56, 256, 256, 3, 1),
        ConvStage(28, 256, 512, 3, 1), ConvStage(28, 512, 512, 3, 1),
        ConvStage(14, 512, 512, 3, 1), ConvStage(14, 512, 512, 3, 1),
    ],
    "vgg16": [
        ConvStage(224, 3, 64, 3, 1), ConvStage(224, 64, 64, 3, 1),
        ConvStage(112, 64, 128, 3, 1), ConvStage(112, 128, 128, 3, 1),
        ConvStage(56, 128, 256, 3, 3),
        ConvStage(28, 256, 512, 3, 1), ConvStage(28, 512, 512, 3, 2),
        ConvStage(14, 512, 512, 3, 3),
    ],
    "vgg19": [
        ConvStage(224, 3, 64, 3, 1), ConvStage(224, 64, 64, 3, 1),
        ConvStage(112, 64, 128, 3, 1), ConvStage(112, 128, 128, 3, 1),
        ConvStage(56, 128, 256, 3, 4),
        ConvStage(28, 256, 512, 3, 1), ConvStage(28, 512, 512, 3, 3),
        ConvStage(14, 512, 512, 3, 4),
    ],
    "googlenet": [
        ConvStage(112, 3, 64, 7, 1),
        ConvStage(56, 64, 192, 3, 1),
        ConvStage(28, 192, 256, 3, 2),
        ConvStage(14, 256, 512, 3, 5),
        ConvStage(7, 512, 832, 3, 2),
    ],
    "resnet50": [
        ConvStage(112, 3, 64, 7, 1),
        ConvStage(56, 64, 64, 3, 6),
        ConvStage(28, 128, 128, 3, 8),
        ConvStage(14, 256, 256, 3, 12),
        ConvStage(7, 512, 512, 3, 6),
    ],
    "resnet101": [
        ConvStage(112, 3, 64, 7, 1),
        ConvStage(56, 64, 64, 3, 6),
        ConvStage(28, 128, 128, 3, 8),
        ConvStage(14, 256, 256, 3, 46),
        ConvStage(7, 512, 512, 3, 6),
    ],
    "resnet152": [
        ConvStage(112, 3, 64, 7, 1),
        ConvStage(56, 64, 64, 3, 6),
        ConvStage(28, 128, 128, 3, 16),
        ConvStage(14, 256, 256, 3, 72),
        ConvStage(7, 512, 512, 3, 6),
    ],
    "inception_v4": [
        ConvStage(149, 3, 32, 3, 1), ConvStage(147, 32, 64, 3, 2),
        ConvStage(73, 64, 96, 3, 2),
        ConvStage(35, 192, 384, 3, 4),
        ConvStage(17, 384, 1024, 3, 7),
        ConvStage(8, 1024, 1536, 3, 3),
    ],
    "mobilenet_v2": [
        ConvStage(112, 3, 32, 3, 1),
        ConvStage(112, 32, 96, 3, 1),
        ConvStage(56, 96, 144, 3, 2),
        ConvStage(28, 144, 192, 3, 3),
        ConvStage(14, 192, 384, 3, 4),
        ConvStage(14, 384, 576, 3, 3),
        ConvStage(7, 576, 960, 3, 3),
    ],
    "squeezenet": [
        ConvStage(111, 3, 96, 7, 1),
        ConvStage(55, 96, 128, 3, 2),
        ConvStage(55, 128, 256, 3, 1),
        ConvStage(27, 256, 256, 3, 1),
        ConvStage(27, 256, 384, 3, 2),
        ConvStage(13, 384, 512, 3, 2),
    ],
    # The transformer is expressed as attention/FC stages: "spatial" is
    # the sequence length, kernel 1, and channels are the model width.
    "transformer": [
        ConvStage(32, 512, 512, 1, 6),      # self-attention projections
        ConvStage(32, 512, 2048, 1, 6),     # feed-forward expand
        ConvStage(32, 2048, 512, 1, 6),     # feed-forward contract
    ],
}


def default_hit_profile(relative_depth: float) -> float:
    """Forward similarity as a function of relative depth.

    Matches the measured VGG-13 profile (and the paper's Figure 1):
    early layers see the most input similarity (~75-80%), falling to
    roughly 45-50% in the deepest layers.
    """
    if not 0.0 <= relative_depth <= 1.0:
        raise ValueError("relative_depth must be in [0, 1]")
    return 0.78 - 0.30 * relative_depth


def default_backward_hit_profile(relative_depth: float) -> float:
    """Gradient similarity by depth (lower than forward, as measured)."""
    if not 0.0 <= relative_depth <= 1.0:
        raise ValueError("relative_depth must be in [0, 1]")
    return 0.60 - 0.45 * relative_depth


def build_workload(model_name: str, signature_bits: int = 20,
                   hit_profile=None, backward_hit_profile=None,
                   hit_scale: float = 1.0) -> list[LayerWorkload]:
    """Expand a model's stages into per-layer workloads.

    ``hit_scale`` uniformly scales both hit-rate profiles, which lets the
    benchmarks derive per-model similarity from measurements on the
    scaled functional models (bigger networks measure more similarity,
    reproducing the paper's "bigger networks save more" trend).
    """
    if model_name not in ARCHITECTURES:
        raise ValueError(f"unknown architecture {model_name!r}")
    hit_profile = hit_profile or default_hit_profile
    backward_hit_profile = backward_hit_profile or default_backward_hit_profile

    stages = ARCHITECTURES[model_name]
    total_layers = sum(stage.repeat for stage in stages)
    workloads = []
    layer_index = 0
    for stage in stages:
        for _ in range(stage.repeat):
            depth = layer_index / max(total_layers - 1, 1)
            forward_hit = float(np.clip(hit_profile(depth) * hit_scale, 0.0, 0.98))
            backward_hit = float(np.clip(backward_hit_profile(depth) * hit_scale,
                                         0.0, 0.98))
            workloads.append(LayerWorkload(
                layer=f"{model_name}:conv{layer_index}",
                num_vectors=stage.spatial * stage.spatial,
                vector_length=stage.kernel * stage.kernel,
                num_filters=stage.out_channels,
                channels=stage.in_channels,
                hit_rate_forward=forward_hit,
                hit_rate_backward=backward_hit,
                signature_bits=signature_bits))
            layer_index += 1
    return workloads


def workload_to_stats(workloads: list[LayerWorkload],
                      include_backward: bool = True) -> ReuseStats:
    """Convert workloads into the ReuseStats records the cycle model uses.

    Forward records describe one signature pass and one dot-product pass
    per input channel; backward records describe the input-gradient
    computation, whose vectors are gradient rows of length
    ``num_filters`` multiplied against ``channels * vector_length``
    weight columns (§II-C / §III-C2).
    """
    stats = ReuseStats()
    for workload in workloads:
        forward = stats.record_for(workload.layer, "forward")
        vectors = workload.num_vectors * workload.channels
        hits = int(round(vectors * workload.hit_rate_forward))
        forward.merge_call(
            vectors=vectors, hits=hits, mau=vectors - hits, mnu=0,
            vector_length=workload.vector_length,
            num_filters=workload.num_filters,
            signature_bits=workload.signature_bits,
            unique_signatures=vectors - hits, detection_on=True)

        if include_backward:
            backward = stats.record_for(workload.layer, "backward")
            grad_vectors = workload.num_vectors
            grad_hits = int(round(grad_vectors * workload.hit_rate_backward))
            backward.merge_call(
                vectors=grad_vectors, hits=grad_hits,
                mau=grad_vectors - grad_hits, mnu=0,
                vector_length=workload.num_filters,
                num_filters=workload.channels * workload.vector_length,
                signature_bits=workload.signature_bits,
                unique_signatures=grad_vectors - grad_hits, detection_on=True)
    return stats
