"""Train the transformer on the synthetic translation task with MERCURY.

Exercises the attention-layer reuse path (§III-C4 of the paper) and
reports accuracy, BLEU and the reuse statistics.  Run with:

    python examples/transformer_translation.py
"""

from repro import MercuryConfig, ReuseEngine
from repro.accelerator import MercurySimulator
from repro.data import TranslationConfig, TranslationDataset, train_test_split
from repro.models import build_model
from repro.training import Trainer, TrainingConfig, bleu_score


def main() -> None:
    dataset = TranslationDataset(TranslationConfig(num_samples=160,
                                                   vocab_size=64))
    xtr, ytr, xte, yte = train_test_split(dataset.sources, dataset.targets,
                                          test_fraction=0.2, seed=0)

    config = MercuryConfig(signature_bits=20)
    engine = ReuseEngine(config)
    model = build_model("transformer", seed=1)
    trainer = Trainer(model,
                      TrainingConfig(epochs=6, batch_size=16,
                                     learning_rate=0.01, optimizer="adam"),
                      engine=engine)
    result = trainer.fit(xtr, ytr, validation=(xte, yte))

    predictions = model.predict(xte)
    score = bleu_score(list(yte), list(predictions))

    print("epoch losses:", [round(loss, 2) for loss in result.epoch_losses])
    print(f"token accuracy (validation): {result.final_validation_accuracy:.2%}")
    print(f"BLEU: {score:.2f}   (the paper reports 33.52 on Multi30k)")
    print(f"hit fraction during training: "
          f"{engine.stats.overall_hit_fraction:.2%}")

    report = MercurySimulator(config).simulate(engine.stats, "transformer")
    print(f"cycle-model speedup on this workload: {report.speedup:.2f}x")


if __name__ == "__main__":
    main()
