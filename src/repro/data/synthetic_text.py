"""Synthetic translation dataset (Multi30k surrogate).

The transformer experiment needs (source, target) token sequences with a
learnable mapping and enough repetition for attention-layer reuse.  The
generator draws source sentences from a small set of templates with
random slot fillers; the target is a deterministic token-wise mapping of
the source (a fixed permutation of the vocabulary plus a positional
rotation), so a small model can learn it and BLEU is a meaningful score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TranslationConfig:
    """Parameters of the synthetic translation task."""

    vocab_size: int = 64
    sequence_length: int = 12
    num_templates: int = 10
    num_samples: int = 192
    # Number of template positions replaced by random filler tokens.
    slots_per_sentence: int = 3
    seed: int = 11

    def __post_init__(self):
        if self.vocab_size < 8:
            raise ValueError("vocab_size must be at least 8")
        if self.sequence_length < 4:
            raise ValueError("sequence_length must be at least 4")
        if self.slots_per_sentence >= self.sequence_length:
            raise ValueError("slots_per_sentence must be < sequence_length")


class TranslationDataset:
    """Source/target token sequences with a deterministic mapping."""

    PAD = 0

    def __init__(self, config: TranslationConfig | None = None):
        self.config = config or TranslationConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # Target mapping: a fixed random permutation of the vocabulary
        # (identity on PAD).
        permutation = self._rng.permutation(self.config.vocab_size - 1) + 1
        self.token_mapping = np.concatenate(([self.PAD], permutation))
        self.templates = self._build_templates()
        self.sources, self.targets = self._build_samples()

    # ------------------------------------------------------------------
    def _build_templates(self) -> np.ndarray:
        cfg = self.config
        return self._rng.integers(1, cfg.vocab_size,
                                  size=(cfg.num_templates, cfg.sequence_length))

    def _build_samples(self) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        sources = np.zeros((cfg.num_samples, cfg.sequence_length), dtype=np.int64)
        for index in range(cfg.num_samples):
            template = self.templates[self._rng.integers(0, cfg.num_templates)]
            sentence = template.copy()
            slots = self._rng.choice(cfg.sequence_length,
                                     size=cfg.slots_per_sentence, replace=False)
            sentence[slots] = self._rng.integers(1, cfg.vocab_size,
                                                 size=cfg.slots_per_sentence)
            sources[index] = sentence
        targets = self.translate(sources)
        return sources, targets

    # ------------------------------------------------------------------
    def translate(self, sources: np.ndarray) -> np.ndarray:
        """The ground-truth mapping from source to target tokens."""
        return self.token_mapping[np.asarray(sources, dtype=np.int64)]

    def __len__(self) -> int:
        return len(self.sources)

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        return self.sources[index], self.targets[index]

    @property
    def vocab_size(self) -> int:
        return self.config.vocab_size

    @property
    def sequence_length(self) -> int:
        return self.config.sequence_length
