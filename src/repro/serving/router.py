"""Deterministic signature-hash routing for the sharded serving stack.

The sharded :class:`~repro.serving.server.InferenceServer` replicates
its compute/cache unit — the same scale-out move accelerator designs
make in hardware — and shards the persistent reuse state by *request
signature*: every request is hashed with the same RPQ machinery the
caches use, and the signature is placed on a consistent-hash ring.  Two
properties follow:

* **affinity** — all repeats of a payload (and any signature-colliding
  near-twins) land on the same shard, so the per-shard
  ``SignatureResultCache`` sees the full repeat stream of every key it
  owns and the aggregate hit rate matches the single-shard cache;
* **stability** — ring points are SHA-256 digests of ``(shard,
  replica)`` labels, so the mapping is a pure function of the shard
  count: the same trace shards identically across runs, machines and
  Python versions (no ``hash()`` randomisation), and growing the ring
  by one shard remaps only ~1/N of the key space.
"""

from __future__ import annotations

import hashlib

import numpy as np


def signature_key(signature) -> bytes:
    """Stable byte identity of one packed signature.

    Accepts the int64 scalar representation or a multi-word ``uint64``
    row (:mod:`repro.core.rpq`); both map injectively to bytes.
    """
    value = np.asarray(signature)
    if value.ndim == 0:
        return b"i" + int(value).to_bytes(8, "big", signed=True)
    return b"w" + value.astype(np.uint64, copy=False).tobytes()


class ConsistentHashRing:
    """A fixed ring of shard points with binary-search routing.

    ``replicas`` virtual points per shard smooth the key-space split;
    at the default 64 the heaviest shard of a uniform key set carries
    within a few percent of its fair share.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.shards = shards
        self.replicas = replicas
        points = []
        for shard in range(shards):
            for replica in range(replicas):
                label = f"shard:{shard}:replica:{replica}".encode()
                digest = hashlib.sha256(label).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = np.array([point for point, _ in points],
                                dtype=np.uint64)
        self._owners = np.array([owner for _, owner in points],
                                dtype=np.int64)

    def route(self, key: bytes) -> int:
        """The shard owning ``key`` (first ring point at or after it)."""
        if self.shards == 1:
            return 0
        point = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        index = int(np.searchsorted(self._hashes, point, side="left"))
        return int(self._owners[index % len(self._owners)])

    def route_many(self, keys) -> np.ndarray:
        """Vectorized :meth:`route` over a batch of keys.

        Digests still come from :func:`hashlib.sha256` per key (that is
        the routing contract), but the ring lookup — the hot part on
        the replay path — is a single :func:`np.searchsorted` over all
        key points at once.  Bit-identical to the scalar loop.
        """
        keys = list(keys)
        if not keys:
            return np.empty(0, dtype=np.int64)
        if self.shards == 1:
            return np.zeros(len(keys), dtype=np.int64)
        points = np.frombuffer(
            b"".join(hashlib.sha256(key).digest()[:8] for key in keys),
            dtype=">u8").astype(np.uint64)
        indices = np.searchsorted(self._hashes, points, side="left")
        return self._owners[indices % len(self._owners)]
