"""FPGA resource and power model (Tables II, III and IV).

The paper implements MERCURY on a Virtex-7 FPGA and reports Vivado
post-synthesis resource usage (slice LUTs, slice registers, block RAM,
DSP48E1 blocks) and on-chip power for several MCACHE organisations.
Synthesis is not reproducible offline, so this module provides a
*calibrated parametric model*:

* every configuration published in the paper is stored verbatim and
  returned exactly;
* any other configuration is estimated by a least-squares linear model
  (in sets, ways and entries) fitted to the published points, which is
  sufficient to answer "what does growing the cache cost" questions and
  to preserve the scaling trends the paper highlights (quadrupling the
  sets costs ~6.5% power, 2 -> 16 ways costs ~4% power, MERCURY is
  ~1.13x the baseline's power).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ResourceUsage:
    """Post-synthesis resource counts."""

    slice_luts: float
    slice_registers: float
    block_ram: float
    dsp48: float

    def as_dict(self) -> dict:
        return {"slice_luts": self.slice_luts,
                "slice_registers": self.slice_registers,
                "block_ram": self.block_ram,
                "dsp48": self.dsp48}


@dataclass(frozen=True)
class PowerBreakdown:
    """On-chip power in watts, by component.

    ``other`` covers components the paper's tables do not itemise
    (I/O, MMCM, ...): the published totals exceed the sum of the listed
    columns by a near-constant ~0.107 W in every row, so that residual
    is carried explicitly to reproduce the totals exactly.
    """

    clocks: float
    logic: float
    signals: float
    block_ram: float
    dsps: float
    static: float
    other: float = 0.107

    @property
    def total(self) -> float:
        return round(self.clocks + self.logic + self.signals + self.block_ram
                     + self.dsps + self.static + self.other, 3)

    def as_dict(self) -> dict:
        return {"clocks": self.clocks, "logic": self.logic,
                "signals": self.signals, "block_ram": self.block_ram,
                "dsps": self.dsps, "static": self.static, "total": self.total}


# ----------------------------------------------------------------------
# Calibration data straight from the paper's tables.
# Keys are (sets, ways); entries = sets * ways.
# ----------------------------------------------------------------------
_BASELINE_RESOURCES = ResourceUsage(56910, 48735, 1161.5, 198)
_BASELINE_POWER = PowerBreakdown(0.112, 0.07, 0.138, 0.511, 0.087, 0.678, other=0.107)

_MERCURY_RESOURCES = {
    # Table II: ways = 16, sets swept.
    (16, 16): ResourceUsage(140597, 62620, 1177.5, 198),
    (32, 16): ResourceUsage(211437, 69536, 1193.5, 198),
    (48, 16): ResourceUsage(216544, 74925, 1209.5, 198),
    (64, 16): ResourceUsage(216918, 81332, 1225.5, 198),
    # Table III: sets = 64, ways swept (the (64, 16) point is shared).
    (64, 2): ResourceUsage(216777, 65727, 1225.5, 198),
    (64, 4): ResourceUsage(216618, 67897, 1225.5, 198),
    (64, 8): ResourceUsage(216758, 71999, 1225.5, 198),
}

_MERCURY_POWER = {
    # The per-row `other` residual makes each total match the paper
    # exactly (published totals: 1.811, 1.833, 1.884, 1.929, 1.855,
    # 1.874, 1.876).
    (16, 16): PowerBreakdown(0.138, 0.102, 0.180, 0.516, 0.087, 0.681, other=0.107),
    (32, 16): PowerBreakdown(0.154, 0.104, 0.175, 0.524, 0.087, 0.683, other=0.106),
    (48, 16): PowerBreakdown(0.155, 0.103, 0.201, 0.548, 0.087, 0.685, other=0.105),
    (64, 16): PowerBreakdown(0.166, 0.105, 0.216, 0.561, 0.087, 0.687, other=0.107),
    (64, 2): PowerBreakdown(0.146, 0.100, 0.176, 0.555, 0.087, 0.686, other=0.105),
    (64, 4): PowerBreakdown(0.151, 0.104, 0.197, 0.543, 0.087, 0.686, other=0.106),
    (64, 8): PowerBreakdown(0.157, 0.101, 0.180, 0.559, 0.087, 0.686, other=0.106),
}


class FPGAModel:
    """Calibrated Virtex-7 resource/power model for MERCURY and baseline."""

    def __init__(self):
        self._resource_fit = self._fit(_MERCURY_RESOURCES, 4)
        self._power_fit = self._fit(_MERCURY_POWER, 6)

    # ------------------------------------------------------------------
    @staticmethod
    def _features(sets: int, ways: int) -> np.ndarray:
        return np.array([1.0, sets, ways, sets * ways], dtype=np.float64)

    def _fit(self, table: dict, num_outputs: int) -> np.ndarray:
        rows = []
        targets = []
        for (sets, ways), value in table.items():
            rows.append(self._features(sets, ways))
            values = list(value.as_dict().values())[:num_outputs]
            targets.append(values)
        design = np.array(rows)
        observed = np.array(targets)
        coeffs, *_ = np.linalg.lstsq(design, observed, rcond=None)
        return coeffs

    # ------------------------------------------------------------------
    def baseline_resources(self) -> ResourceUsage:
        """Resource usage of the accelerator without MERCURY (Table IV)."""
        return _BASELINE_RESOURCES

    def baseline_power(self) -> PowerBreakdown:
        """On-chip power of the baseline accelerator (Table IV)."""
        return _BASELINE_POWER

    def mercury_resources(self, sets: int = 64, ways: int = 16) -> ResourceUsage:
        """Resource usage of MERCURY for an MCACHE organisation."""
        self._validate(sets, ways)
        if (sets, ways) in _MERCURY_RESOURCES:
            return _MERCURY_RESOURCES[(sets, ways)]
        predicted = self._features(sets, ways) @ self._resource_fit
        luts, registers, bram, dsp = predicted
        return ResourceUsage(float(max(luts, 0.0)), float(max(registers, 0.0)),
                             float(max(bram, _BASELINE_RESOURCES.block_ram)),
                             float(_BASELINE_RESOURCES.dsp48))

    def mercury_power(self, sets: int = 64, ways: int = 16) -> PowerBreakdown:
        """On-chip power of MERCURY for an MCACHE organisation."""
        self._validate(sets, ways)
        if (sets, ways) in _MERCURY_POWER:
            return _MERCURY_POWER[(sets, ways)]
        predicted = self._features(sets, ways) @ self._power_fit
        clocks, logic, signals, bram, dsps, static = (float(v) for v in predicted)
        return PowerBreakdown(max(clocks, 0.0), max(logic, 0.0),
                              max(signals, 0.0), max(bram, 0.0),
                              _BASELINE_POWER.dsps, max(static, 0.0))

    @staticmethod
    def _validate(sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")

    # ------------------------------------------------------------------
    def power_overhead(self, sets: int = 64, ways: int = 16) -> float:
        """MERCURY total power relative to the baseline (paper: ~1.13x)."""
        return self.mercury_power(sets, ways).total / self.baseline_power().total

    def resource_overhead(self, sets: int = 64, ways: int = 16) -> dict:
        """Per-resource ratios of MERCURY over the baseline."""
        mercury = self.mercury_resources(sets, ways)
        baseline = self.baseline_resources()
        return {
            "slice_luts": mercury.slice_luts / baseline.slice_luts,
            "slice_registers": mercury.slice_registers / baseline.slice_registers,
            "block_ram": mercury.block_ram / baseline.block_ram,
            "dsp48": mercury.dsp48 / baseline.dsp48,
        }

    # ------------------------------------------------------------------
    def table2_rows(self) -> list[dict]:
        """Table II: ways fixed at 16, sets swept over 16/32/48/64."""
        rows = []
        for sets in (16, 32, 48, 64):
            resources = self.mercury_resources(sets, 16)
            power = self.mercury_power(sets, 16)
            rows.append({"cache_size": sets * 16, "sets": sets, "ways": 16,
                         **resources.as_dict(), **power.as_dict()})
        return rows

    def table3_rows(self) -> list[dict]:
        """Table III: sets fixed at 64, ways swept over 2/4/8/16."""
        rows = []
        for ways in (2, 4, 8, 16):
            resources = self.mercury_resources(64, ways)
            power = self.mercury_power(64, ways)
            rows.append({"cache_size": 64 * ways, "sets": 64, "ways": ways,
                         **resources.as_dict(), **power.as_dict()})
        return rows

    def table4_rows(self) -> list[dict]:
        """Table IV: MERCURY (1024 entries, 16 ways) vs the baseline."""
        rows = []
        for name, resources, power in (
                ("Baseline", self.baseline_resources(), self.baseline_power()),
                ("MERCURY", self.mercury_resources(64, 16),
                 self.mercury_power(64, 16))):
            rows.append({"method": name, **resources.as_dict(),
                         **power.as_dict()})
        return rows
