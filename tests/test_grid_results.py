"""Tests for the shared grid machinery and results JSON round-trips.

Covers the contracts both sweep families rely on: deterministic grid
expansion, pool/in-process equivalence of the executor, and
``save() -> load -> summary()`` equality for :class:`SweepResults` and
:class:`FunctionalSweepResults`, including the schema marker that keeps
the two file families apart.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.functional_sweep import (
    FUNCTIONAL_RESULT_KEYS,
    FunctionalPoint,
    FunctionalSweepResults,
    build_functional_grid,
    run_functional_sweep,
)
from repro.analysis.grid import GridResults, expand_grid, run_grid
from repro.analysis.sweep import RESULT_KEYS, SweepResults, build_grid, \
    run_sweep


def test_expand_grid_order_and_size():
    combos = expand_grid({"a": [1, 2], "b": "xy", "c": [True]})
    assert len(combos) == 4
    # First axis varies slowest, and ordering is fully deterministic.
    assert combos == [{"a": 1, "b": "x", "c": True},
                      {"a": 1, "b": "y", "c": True},
                      {"a": 2, "b": "x", "c": True},
                      {"a": 2, "b": "y", "c": True}]
    assert expand_grid({}) == [{}]


def _square(value: int) -> dict:
    return {"value": value, "square": value * value}


def test_run_grid_pool_matches_in_process():
    points = list(range(5))
    serial_rows, serial_elapsed = run_grid(points, _square, processes=0)
    pooled_rows, pooled_elapsed = run_grid(points, _square, processes=2)
    assert serial_rows == pooled_rows
    assert [row["value"] for row in serial_rows] == points
    assert serial_elapsed >= 0.0 and pooled_elapsed >= 0.0


def test_grid_results_filters_and_geomean():
    results = GridResults(rows=[{"kind": "a", "speed": 2.0},
                                {"kind": "a", "speed": 8.0},
                                {"kind": "b", "speed": 3.0}])
    assert len(results.matching_rows(kind="a")) == 2
    assert results.geomean("speed", kind="a") == pytest.approx(4.0)
    with pytest.raises(ValueError):
        results.geomean("speed", kind="missing")


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cycle_results() -> SweepResults:
    points = build_grid(["vgg13"], organizations=[(512, 8), (1024, 16)])
    return run_sweep(points, processes=0)


@pytest.fixture(scope="module")
def functional_results() -> FunctionalSweepResults:
    points = build_functional_grid(["squeezenet"], signature_bits=(12, 20),
                                   epochs=1)
    return run_functional_sweep(points, processes=0)


def test_cycle_round_trip_summary_equality(cycle_results, tmp_path):
    path = tmp_path / "cycle.json"
    cycle_results.save(path)
    reloaded = SweepResults.load(path)
    assert reloaded.rows == cycle_results.rows
    assert reloaded.summary() == cycle_results.summary()
    assert json.loads(path.read_text())["schema"] == "cycle-sweep"


def test_functional_round_trip_summary_equality(functional_results, tmp_path):
    path = tmp_path / "functional.json"
    functional_results.save(path)
    reloaded = FunctionalSweepResults.load(path)
    assert reloaded.rows == functional_results.rows
    assert reloaded.summary() == functional_results.summary()
    assert json.loads(path.read_text())["schema"] == "functional-sweep"


def test_schema_marker_rejects_wrong_family(cycle_results, functional_results,
                                            tmp_path):
    cycle_path = tmp_path / "cycle.json"
    functional_path = tmp_path / "functional.json"
    cycle_results.save(cycle_path)
    functional_results.save(functional_path)
    with pytest.raises(ValueError, match="cycle-sweep"):
        FunctionalSweepResults.load(cycle_path)
    with pytest.raises(ValueError, match="functional-sweep"):
        SweepResults.load(functional_path)


def test_legacy_payload_without_schema_still_loads(cycle_results, tmp_path):
    payload = json.loads(cycle_results.to_json())
    del payload["schema"]
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(payload))
    assert SweepResults.load(path).rows == cycle_results.rows


def test_result_keys_contract(cycle_results, functional_results):
    assert all(not missing for missing in cycle_results.missing_keys())
    assert all(not missing for missing in functional_results.missing_keys())
    # The two schema families stay aligned on the shared metric names.
    shared = RESULT_KEYS & FUNCTIONAL_RESULT_KEYS
    assert {"model", "speedup", "signature_fraction", "baseline_cycles",
            "mercury_cycles", "elapsed_s"} <= shared


def test_functional_point_validates_axes():
    with pytest.raises(ValueError, match="dataset_scale"):
        FunctionalPoint(model="squeezenet", dataset_scale="huge")
    with pytest.raises(ValueError, match="adaptation"):
        FunctionalPoint(model="squeezenet", adaptation="sometimes")
    with pytest.raises(ValueError, match="seed"):
        FunctionalPoint(model="squeezenet", seed=-1)
