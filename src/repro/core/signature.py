"""The Signature Table.

The Signature Table stores one signature per extracted input vector,
indexed by the vector's position, so the dot-product phase can find the
signature of the vector it is about to process (§III-B3).  MERCURY also
*saves* the signatures (and the Hitmap) produced during the forward
propagation of a layer so that the backward propagation of the previous
layer can reuse them when the filter dimensions match (§III-C2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

@dataclass
class SignatureRecord:
    """Signatures + Hitmap of one layer's set of input vectors.

    ``hitmap`` holds whichever Hitmap representation the producer used —
    a full :class:`~repro.core.hitmap.Hitmap` or the vectorised
    :class:`~repro.core.hitmap_sim.HitmapSimulation`.
    """

    layer: str
    vector_length: int
    signature_bits: int
    signatures: np.ndarray
    hitmap: object

    @property
    def num_vectors(self) -> int:
        return len(self.signatures)


class SignatureTable:
    """Per-layer store of signatures produced during forward propagation."""

    def __init__(self):
        self._records: dict[str, SignatureRecord] = {}

    def store(self, layer: str, vector_length: int, signature_bits: int,
              signatures: np.ndarray, hitmap: object = None) -> SignatureRecord:
        """Save the signatures and Hitmap computed for ``layer``."""
        record = SignatureRecord(layer=layer, vector_length=vector_length,
                                 signature_bits=signature_bits,
                                 signatures=np.asarray(signatures),
                                 hitmap=hitmap)
        self._records[layer] = record
        return record

    def lookup(self, layer: str, vector_length: int,
               num_vectors: int) -> SignatureRecord | None:
        """Return a saved record if it is reusable for the given shape.

        The paper reloads forward signatures during backward propagation
        only when the filter dimensions (and therefore the extracted
        vector length and count) match; otherwise signatures are
        recalculated.
        """
        record = self._records.get(layer)
        if record is None:
            return None
        if record.vector_length != vector_length:
            return None
        if record.num_vectors != num_vectors:
            return None
        return record

    def get(self, layer: str) -> SignatureRecord | None:
        return self._records.get(layer)

    def discard(self, layer: str) -> None:
        self._records.pop(layer, None)

    def clear(self) -> None:
        self._records.clear()

    def layers(self) -> list[str]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, layer: str) -> bool:
        return layer in self._records
