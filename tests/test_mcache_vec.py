"""Unit tests for the vectorized batch MCACHE."""

import numpy as np
import pytest

from repro.core.hitmap import CODE_TO_STATE, HitState
from repro.core.hitmap_sim import simulate_hitmap
from repro.core.mcache_vec import VectorizedMCache


def test_geometry_validation():
    with pytest.raises(ValueError):
        VectorizedMCache(entries=100, ways=16)
    with pytest.raises(ValueError):
        VectorizedMCache(entries=0, ways=1)
    with pytest.raises(ValueError):
        VectorizedMCache(entries=8, ways=2, versions=0)
    cache = VectorizedMCache(entries=1024, ways=16)
    assert cache.num_sets == 64


def test_first_lookup_is_mau_then_hit():
    cache = VectorizedMCache(entries=16, ways=4)
    state, entry = cache.lookup_or_insert(123)
    assert state is HitState.MAU and entry >= 0
    state2, entry2 = cache.lookup_or_insert(123)
    assert state2 is HitState.HIT and entry2 == entry


def test_full_set_gives_mnu_no_replacement():
    cache = VectorizedMCache(entries=4, ways=2)  # 2 sets, 2 ways
    assert cache.lookup_or_insert(0)[0] is HitState.MAU
    assert cache.lookup_or_insert(2)[0] is HitState.MAU
    state, entry = cache.lookup_or_insert(4)
    assert state is HitState.MNU and entry == -1
    assert cache.lookup_or_insert(4)[0] is HitState.MNU
    assert cache.lookup_or_insert(0)[0] is HitState.HIT


def test_batch_mixes_hits_maus_and_mnus():
    cache = VectorizedMCache(entries=2, ways=1)  # 2 sets, 1 way
    # Even signatures -> set 0, odd -> set 1.
    states, entries = cache.lookup_or_insert_batch([0, 0, 2, 1, 0, 3])
    assert states.dtype == np.int8
    assert [CODE_TO_STATE[s].value for s in states] == \
        ["MAU", "HIT", "MNU", "MAU", "HIT", "MNU"]
    assert entries[0] == entries[1] == entries[4]
    assert entries[2] == -1 and entries[5] == -1
    # Inserts persist across batches.
    states2, entries2 = cache.lookup_or_insert_batch([0, 1, 4])
    assert [CODE_TO_STATE[s].value for s in states2] == ["HIT", "HIT", "MNU"]
    assert entries2[0] == entries[0] and entries2[1] == entries[3]


def test_empty_batch():
    cache = VectorizedMCache(entries=4, ways=2)
    states, entries = cache.lookup_or_insert_batch([])
    assert len(states) == 0 and len(entries) == 0
    simulation = cache.simulate([])
    assert simulation.unique_signatures == 0


def test_probe_does_not_insert():
    cache = VectorizedMCache(entries=8, ways=2)
    assert cache.probe(5) == (False, -1)
    cache.lookup_or_insert(5)
    present, entry = cache.probe(5)
    assert present and entry >= 0
    assert cache.occupancy() == 1
    present_batch, ids = cache.probe_batch([5, 6])
    assert list(present_batch) == [True, False]
    assert ids[0] == entry and ids[1] == -1


def test_data_write_read_and_valid_bits():
    cache = VectorizedMCache(entries=8, ways=2)
    _, entry = cache.lookup_or_insert(7)
    assert not cache.has_data(entry)
    with pytest.raises(LookupError):
        cache.read_data(entry)
    cache.write_data(entry, 3.14)
    assert cache.has_data(entry)
    assert cache.read_data(entry) == 3.14


def test_batch_data_phase():
    cache = VectorizedMCache(entries=8, ways=2)
    states, entries = cache.lookup_or_insert_batch([1, 2, 3])
    cache.write_data_batch(entries, [10.0, 20.0, 30.0])
    assert list(cache.read_data_batch(entries)) == [10.0, 20.0, 30.0]
    assert cache.stats.data_writes == 3
    assert cache.stats.data_reads == 3
    with pytest.raises(KeyError):
        cache.write_data_batch([99], [1.0])
    with pytest.raises(IndexError):
        cache.write_data_batch(entries, [0.0] * 3, version=1)


def test_multi_version_data():
    cache = VectorizedMCache(entries=8, ways=2, versions=3)
    _, entry = cache.lookup_or_insert(9)
    cache.write_data(entry, "filter0", version=0)
    cache.write_data(entry, "filter2", version=2)
    assert cache.read_data(entry, version=2) == "filter2"
    assert not cache.has_data(entry, version=1)
    with pytest.raises(IndexError):
        cache.write_data(entry, "x", version=3)


def test_invalidate_data_keeps_tags():
    cache = VectorizedMCache(entries=8, ways=2, versions=2)
    _, entry = cache.lookup_or_insert(11)
    cache.write_data(entry, 1.0, version=0)
    cache.write_data(entry, 2.0, version=1)
    cache.invalidate_data(0)
    assert not cache.has_data(entry, version=0)
    assert cache.has_data(entry, version=1)
    cache.invalidate_data()
    assert not cache.has_data(entry, version=1)
    # Tag survives the flash invalidate.
    assert cache.lookup_or_insert(11)[0] is HitState.HIT


def test_clear_resets_everything():
    cache = VectorizedMCache(entries=8, ways=2)
    cache.lookup_or_insert_batch([1, 2])
    cache.clear()
    assert cache.occupancy() == 0
    assert cache.lookup_or_insert(1)[0] is HitState.MAU


def test_stats_counters():
    cache = VectorizedMCache(entries=4, ways=1)  # 4 sets, direct mapped
    cache.lookup_or_insert_batch([0, 0, 4])  # MAU, HIT, MNU (set 0 full)
    assert cache.stats.hits == 1
    assert cache.stats.mau == 1
    assert cache.stats.mnu == 1
    fractions = cache.stats.as_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_utilization():
    cache = VectorizedMCache(entries=8, ways=2)
    assert cache.utilization() == 0.0
    cache.lookup_or_insert(3)
    assert cache.utilization() == 1 / 8


def test_simulate_matches_groupby_simulation(make_trace):
    trace = make_trace(500, pool_size=80, seed=3)
    cache = VectorizedMCache(entries=64, ways=4)
    ours = cache.simulate(trace)
    reference = simulate_hitmap(trace, num_sets=16, ways=4)
    assert list(ours.states) == list(reference.states)
    assert list(ours.representative) == list(reference.representative)
    assert (ours.hits, ours.mau, ours.mnu, ours.unique_signatures) == \
        (reference.hits, reference.mau, reference.mnu,
         reference.unique_signatures)
    # simulate() clears first, so a second run is identical.
    again = cache.simulate(trace)
    assert list(again.states) == list(ours.states)


def test_simulate_to_hitmap_round_trip(make_trace):
    trace = make_trace(100, pool_size=20, seed=4)
    cache = VectorizedMCache(entries=16, ways=2)
    hitmap = cache.simulate(trace).to_hitmap()
    assert hitmap.is_complete()
    counts = hitmap.counts()
    assert counts[HitState.HIT] + counts[HitState.MAU] + \
        counts[HitState.MNU] == 100


def test_wide_signatures_promote_to_object():
    cache = VectorizedMCache(entries=4, ways=2)
    # 2 sets x 2 ways; +0/+2/+4 land in set 0, so +4 finds it full.
    wide = np.array([(1 << 70) + k for k in (0, 1, 0, 2, 4)], dtype=object)
    states, entries = cache.lookup_or_insert_batch(wide)
    assert [CODE_TO_STATE[s].value for s in states] == ["MAU", "MAU", "HIT", "MAU", "MNU"]
    # Mixed int64 batches keep working after the promotion.
    states2, _ = cache.lookup_or_insert_batch(np.array([5, 5]))
    assert [CODE_TO_STATE[s].value for s in states2] == ["MAU", "HIT"]
    assert cache.lookup_or_insert((1 << 70) + 1)[0] is HitState.HIT


def test_negative_signatures_match_python_semantics():
    # Python's floor division/modulo keep set indices non-negative.
    cache = VectorizedMCache(entries=4, ways=2)
    state, entry = cache.lookup_or_insert(-3)
    assert state is HitState.MAU
    assert cache.lookup_or_insert(-3)[0] is HitState.HIT
    assert 0 <= cache.set_index(-3) < cache.num_sets
