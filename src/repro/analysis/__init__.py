"""Characterisation utilities (similarity measurement and reporting)."""

from repro.analysis.similarity import (
    LayerSimilarity,
    measure_layer_similarity,
    measure_unique_vectors,
    rpq_unique_vector_experiment,
)
from repro.analysis.reporting import format_table, geomean

__all__ = [
    "LayerSimilarity",
    "measure_layer_similarity",
    "measure_unique_vectors",
    "rpq_unique_vector_experiment",
    "format_table",
    "geomean",
]
