"""Tests for the Hitmap and the vectorised hitmap simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hitmap import (HIT_CODE, Hitmap, HitState, MAU_CODE,
                               MNU_CODE)
from repro.core.hitmap_sim import simulate_hitmap
from repro.core.mcache import MCache


# ----------------------------------------------------------------------
# Hitmap object
# ----------------------------------------------------------------------
def test_hitmap_set_get():
    hitmap = Hitmap(3)
    hitmap.set(0, HitState.MAU)
    hitmap.set(1, HitState.HIT, source=0)
    hitmap.set(2, HitState.MNU)
    assert hitmap.get(1) is HitState.HIT
    assert hitmap.source(1) == 0
    assert hitmap.is_complete()


def test_hitmap_hit_requires_earlier_source():
    hitmap = Hitmap(3)
    with pytest.raises(ValueError):
        hitmap.set(1, HitState.HIT)          # no source
    with pytest.raises(ValueError):
        hitmap.set(1, HitState.HIT, source=2)  # source after index


def test_hitmap_counts_and_fraction():
    hitmap = Hitmap(4)
    hitmap.set(0, HitState.MAU)
    hitmap.set(1, HitState.HIT, source=0)
    hitmap.set(2, HitState.HIT, source=0)
    counts = hitmap.counts()
    assert counts[HitState.HIT] == 2
    assert counts[None] == 1
    assert hitmap.hit_fraction() == 0.5


def test_hitmap_bounds():
    hitmap = Hitmap(2)
    with pytest.raises(IndexError):
        hitmap.set(5, HitState.MAU)
    with pytest.raises(KeyError):
        hitmap.get(0)


def test_hitmap_arrays():
    hitmap = Hitmap(2)
    hitmap.set(0, HitState.MAU)
    hitmap.set(1, HitState.HIT, source=0)
    assert list(hitmap.sources_array()) == [-1, 0]
    assert hitmap.states_array()[1] is HitState.HIT


# ----------------------------------------------------------------------
# Vectorised simulation
# ----------------------------------------------------------------------
def test_simulate_basic_states():
    sim = simulate_hitmap(np.array([10, 10, 11, 10]), num_sets=4, ways=4)
    assert sim.states.dtype == np.int8
    assert sim.states[0] == MAU_CODE
    assert sim.states[1] == HIT_CODE
    assert sim.representative[1] == 0
    assert sim.states[2] == MAU_CODE
    assert sim.hits == 2 and sim.mau == 2 and sim.mnu == 0
    assert sim.unique_signatures == 2
    # The user-facing enum view converts per code.
    assert sim.state_objects()[0] is HitState.MAU
    assert sim.state_objects()[1] is HitState.HIT


def test_simulate_capacity_mnu():
    # One set, one way: only the first distinct signature is inserted.
    sim = simulate_hitmap(np.array([1, 2, 1, 2]), num_sets=1, ways=1)
    assert sim.states[0] == MAU_CODE
    assert sim.states[1] == MNU_CODE
    assert sim.states[2] == HIT_CODE
    assert sim.states[3] == MNU_CODE


def test_simulate_empty():
    sim = simulate_hitmap(np.array([], dtype=np.int64), num_sets=4, ways=2)
    assert sim.hits == sim.mau == sim.mnu == 0


def test_simulate_to_hitmap():
    sim = simulate_hitmap(np.array([5, 5, 6]), num_sets=2, ways=2)
    hitmap = sim.to_hitmap()
    assert hitmap.get(1) is HitState.HIT
    assert hitmap.source(1) == 0
    assert hitmap.hit_fraction() == pytest.approx(1 / 3)


def test_simulate_long_signatures_fall_back():
    sigs = np.array([1 << 80, (1 << 80) + 1, 1 << 80], dtype=object)
    sim = simulate_hitmap(sigs, num_sets=8, ways=2)
    assert sim.states[2] == HIT_CODE
    assert sim.unique_signatures == 2


def test_simulate_invalid_geometry():
    with pytest.raises(ValueError):
        simulate_hitmap(np.array([1]), num_sets=0, ways=1)


@settings(deadline=None, max_examples=40)
@given(signatures=st.lists(st.integers(0, 300), min_size=1, max_size=100),
       num_sets=st.sampled_from([1, 2, 4, 8]),
       ways=st.sampled_from([1, 2, 4]))
def test_simulation_matches_line_level_mcache(signatures, num_sets, ways):
    """The fast group-by simulation equals the hardware-structure model."""
    signatures = np.array(signatures, dtype=np.int64)
    sim = simulate_hitmap(signatures, num_sets=num_sets, ways=ways)

    cache = MCache(entries=num_sets * ways, ways=ways)
    owners = {}
    for index, signature in enumerate(signatures):
        state, entry = cache.lookup_or_insert(int(signature))
        assert sim.states[index] == state.code
        if state is HitState.MAU:
            owners[entry] = index
        elif state is HitState.HIT:
            assert sim.representative[index] == owners[entry]


@settings(deadline=None, max_examples=30)
@given(signatures=st.lists(st.integers(0, 50), min_size=1, max_size=60))
def test_counts_are_consistent(signatures):
    sim = simulate_hitmap(np.array(signatures), num_sets=4, ways=2)
    assert sim.hits + sim.mau + sim.mnu == len(signatures)
    assert sim.mau <= 4 * 2
    # Representatives of HIT entries always point to an earlier MAU entry.
    for index, state in enumerate(sim.states):
        if state == HIT_CODE:
            rep = sim.representative[index]
            assert rep < index
            assert sim.states[rep] == MAU_CODE
