"""Random Projection with Quantization (RPQ).

RPQ multiplies an input vector ``X`` (1 x m) with a random matrix ``R``
(m x n) whose entries are drawn from N(0, 1) and quantizes each element
of the projection by its sign, producing an ``n``-bit *signature*
(§II-A of the paper).  Two vectors that map to the same signature are
close in the original space, so their dot products with any weight
vector are approximately equal — the property MERCURY exploits.

Two hot-path properties of this module matter system-wide:

* **Prefix-stable incremental projections.**  Projection matrices are
  generated column block by column block from per-block seed streams,
  so the matrix for ``n`` bits is always a prefix of the matrix for
  ``n + k`` bits.  Growing the signature length (§III-D adaptation)
  therefore refines the existing partition instead of reshuffling it,
  and :class:`SignaturePipeline` can project only the *new* columns
  against a cached batch instead of recomputing everything.

* **Multi-word packed signatures.**  Signatures up to
  ``FAST_PACK_BITS`` bits pack into an ``int64`` vector; longer ones
  (reachable through adaptive length growth) pack into a dense
  ``(n_vectors, n_words)`` ``uint64`` matrix — most-significant word
  first — that downstream group-by code sorts lexicographically, so the
  MCACHE simulations stay vectorised at any signature length.

The module also provides :func:`signature_via_convolution`, the paper's
§III-B1 formulation where each column of ``R`` is re-organised into a
random *filter* and the signature bits fall out of 2D convolutions.
The two formulations produce identical signatures, which the test suite
verifies.
"""

from __future__ import annotations

import weakref

import numpy as np
from numpy.lib.stride_tricks import as_strided

# Longest signature packed into a plain int64 array; beyond this the
# representation switches to (n_vectors, n_words) uint64 words.  62 (not
# 63/64) keeps headroom for the MCACHE's set/tag integer arithmetic.
FAST_PACK_BITS = 62

# One 64-bit word per this many signature bits.
WORD_BITS = 64

# Projection matrices grow in column blocks of this many bits; the block
# seed stream makes every block independent of how many blocks follow.
PROJECTION_BLOCK_BITS = 16


# ----------------------------------------------------------------------
# Packed-signature representation helpers
# ----------------------------------------------------------------------
def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed for an ``n_bits`` signature."""
    return max(1, -(-int(n_bits) // WORD_BITS))


def is_multiword(signatures: np.ndarray) -> bool:
    """True when ``signatures`` is the 2-D ``(n_vectors, n_words)`` form."""
    return getattr(signatures, "ndim", 1) == 2


_BIT_WEIGHTS = (np.uint64(1) << np.arange(WORD_BITS - 1, -1, -1,
                                          dtype=np.uint64))

_FAST_PACK_WEIGHTS: dict[int, np.ndarray] = {}


def _fast_pack_weights(n_bits: int) -> np.ndarray:
    """Cached MSB-first power-of-two weights for the int64 pack path."""
    weights = _FAST_PACK_WEIGHTS.get(n_bits)
    if weights is None:
        weights = (1 << np.arange(n_bits - 1, -1, -1, dtype=np.int64))
        _FAST_PACK_WEIGHTS[n_bits] = weights
    return weights


def pack_bits_words(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 rows into the multi-word ``(n_vectors, n_words)`` form.

    Words are most-significant first and the bit string is left-padded
    with zeros to a whole number of words, so the integer value of a row
    equals ``int("".join(bits), 2)`` regardless of width.
    """
    bits = np.asarray(bits)
    n_vectors, n_bits = bits.shape
    n_words = words_for_bits(n_bits)
    padded = np.zeros((n_vectors, n_words * WORD_BITS), dtype=np.uint64)
    padded[:, n_words * WORD_BITS - n_bits:] = bits
    grouped = padded.reshape(n_vectors, n_words, WORD_BITS)
    return (grouped * _BIT_WEIGHTS).sum(axis=2, dtype=np.uint64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack rows of 0/1 bits into integer signatures.

    Signatures of up to ``FAST_PACK_BITS`` bits (the common case) come
    back as an ``int64`` array so downstream group-by operations stay
    vectorised; longer signatures — reachable through the adaptive
    length growth — come back as the multi-word ``(n_vectors, n_words)``
    ``uint64`` representation, which the group-by code handles with a
    lexicographic row sort.  (The historical object-dtype fallback of
    exact Python ints is gone; :func:`signatures_to_ints` converts when
    a scalar consumer needs real integers.)

    Parameters
    ----------
    bits:
        Array of shape ``(n_vectors, n_bits)`` containing 0/1 values.

    Returns
    -------
    numpy.ndarray
        ``(n_vectors,)`` int64 array, or ``(n_vectors, n_words)`` uint64
        array for signatures longer than ``FAST_PACK_BITS`` bits.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("pack_bits expects a 2D (n_vectors, n_bits) array")
    n_vectors, n_bits = bits.shape

    if n_bits <= FAST_PACK_BITS:
        # Fast vectorised path for the common case: an integer matvec,
        # with the weight vector cached per bit count.
        weights = _fast_pack_weights(n_bits)
        return bits.astype(np.int64, copy=False) @ weights
    return pack_bits_words(bits)


def words_to_ints(words: np.ndarray) -> np.ndarray:
    """Exact Python integers (object array) for multi-word signatures.

    A scalar-consumer boundary (the differential oracle expands batches
    here to probe the line-level model); the vectorized engines never
    leave the packed representations.  One ``int.from_bytes`` per row on
    a single big-endian serialisation of the batch replaces the old
    per-word Python shift loop.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    out = np.empty(len(words), dtype=object)
    # Words are most-significant first, so each row's big-endian bytes
    # concatenate directly into its integer value.
    data = words.astype(">u8", copy=False).tobytes()
    stride = words.shape[1] * 8 if words.ndim == 2 else 8
    for index in range(len(words)):
        out[index] = int.from_bytes(data[index * stride:(index + 1) * stride],
                                    "big")
    return out


def ints_to_words(values, num_words: int | None = None) -> np.ndarray:
    """Multi-word form of a sequence of non-negative integers.

    Values must be exactly integral: truncating (e.g. a float ``0.5``
    to ``0``) would merge distinct signatures and silently diverge from
    the scalar oracle's exact-value keying.
    """
    raw = list(values)
    values = [int(v) for v in raw]
    for original, converted in zip(raw, values):
        if original != converted:
            raise ValueError(
                f"signature {original!r} is not an exact integer")
    if any(v < 0 for v in values):
        raise ValueError("signatures must be non-negative")
    needed = max((v.bit_length() for v in values), default=1)
    n_words = max(words_for_bits(needed), num_words or 1)
    out = np.zeros((len(values), n_words), dtype=np.uint64)
    mask = (1 << WORD_BITS) - 1
    for index, value in enumerate(values):
        for col in range(n_words - 1, -1, -1):
            if value == 0:
                break
            out[index, col] = value & mask
            value >>= WORD_BITS
    return out


def pad_words(words: np.ndarray, num_words: int) -> np.ndarray:
    """Left-pad (most-significant side) to ``num_words`` columns."""
    words = np.asarray(words, dtype=np.uint64)
    if words.shape[1] >= num_words:
        return words
    padding = np.zeros((len(words), num_words - words.shape[1]),
                       dtype=np.uint64)
    return np.hstack([padding, words])


def signature_words(signatures, num_words: int | None = None) -> np.ndarray:
    """Normalise any packed-signature representation to multi-word form."""
    arr = np.atleast_1d(np.asarray(signatures))
    if arr.ndim == 2:
        words = arr if arr.dtype == np.uint64 else arr.astype(np.uint64)
    elif arr.dtype == object:
        words = ints_to_words(arr)
    else:
        ints = arr.astype(np.int64)
        if (ints < 0).any():
            raise ValueError("signatures must be non-negative")
        words = ints.astype(np.uint64)[:, None]
    if num_words is not None:
        words = pad_words(words, num_words)
    return words


def coerce_packed(signatures) -> tuple[np.ndarray, bool]:
    """Normalise a packed-signature argument to ``(array, wide)``.

    The single place the accepted-dtype contract lives, shared by the
    insert, probe and stateless-simulation paths so they cannot drift:
    2-D arrays are *wide*; 1-D arrays of any dtype (object included)
    are accepted as int64 whenever every value round-trips exactly, and
    become wide object arrays otherwise (uint64 values >= 2^63,
    arbitrary-precision Python ints, non-integral floats) instead of
    silently wrapping or truncating.
    """
    arr = np.atleast_1d(np.asarray(signatures))
    if arr.ndim != 1:
        return arr, True
    if arr.dtype == np.int64:
        return arr, False
    try:
        as_int64 = arr.astype(np.int64)
        if np.array_equal(as_int64.astype(object), arr.astype(object)):
            return as_int64, False
    except (OverflowError, TypeError, ValueError):
        pass
    return arr.astype(object), True


def signatures_to_ints(signatures) -> np.ndarray:
    """Object array of exact Python ints for any representation."""
    arr = np.atleast_1d(np.asarray(signatures))
    if arr.ndim == 2:
        return words_to_ints(arr)
    return arr.astype(object)


def words_mod(words: np.ndarray, modulus: int) -> np.ndarray:
    """``value % modulus`` per multi-word row, without big-int overhead.

    Folds the words most-significant first (``acc = (acc * 2^64 + word)
    % m``) entirely in uint64 arithmetic; exact because ``m < 2^31``
    bounds every intermediate below 2^64.  Larger moduli (no MCACHE is
    ever that big) fall back to exact Python integers.
    """
    words = np.asarray(words, dtype=np.uint64)
    m = int(modulus)
    if m <= 0:
        raise ValueError("modulus must be positive")
    if m == 1:
        return np.zeros(len(words), dtype=np.int64)
    if m >= (1 << 31):
        return np.array([value % m for value in words_to_ints(words)],
                        dtype=np.int64)
    shift = np.uint64((1 << WORD_BITS) % m)
    mod = np.uint64(m)
    acc = np.zeros(len(words), dtype=np.uint64)
    for col in range(words.shape[1]):
        acc = (acc * shift + words[:, col] % mod) % mod
    return acc.astype(np.int64)


def _unique_words(words: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
    """Lexicographic row group-by: (uniques, first_index, inverse).

    A stable multi-key sort over the word columns followed by run
    detection — substantially faster than ``np.unique(axis=0)``'s
    void-view sort, and the stability guarantees ``first_index`` is
    each value's first occurrence in arrival order.
    """
    num_rows = len(words)
    # lexsort's last key is primary, so feed columns least-significant
    # first; the result orders rows by integer value, ties in arrival
    # order (lexsort is stable).
    order = np.lexsort(tuple(words[:, col]
                             for col in range(words.shape[1] - 1, -1, -1)))
    sorted_words = words[order]
    new_group = np.ones(num_rows, dtype=bool)
    new_group[1:] = (sorted_words[1:] != sorted_words[:-1]).any(axis=1)
    group_ids = np.cumsum(new_group) - 1
    inverse = np.empty(num_rows, dtype=np.int64)
    inverse[order] = group_ids
    first_index = order[new_group]
    uniques = sorted_words[new_group]
    return uniques, first_index, inverse


def unique_signatures(signatures) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group-by for any packed representation.

    Returns ``(unique_values, first_index, inverse)`` exactly like
    ``np.unique(..., return_index=True, return_inverse=True)``; the
    multi-word form groups by lexicographic row sort, so nothing drops
    to Python loops past 62 bits.
    """
    arr = np.atleast_1d(np.asarray(signatures))
    if arr.ndim == 2:
        return _unique_words(arr)
    uniques, first_index, inverse = np.unique(
        arr, return_index=True, return_inverse=True)
    return uniques, first_index, inverse.reshape(-1)


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------
class SignaturePipeline:
    """Incremental signature stream for one (layer, shape) consumer.

    The pipeline keeps the raw (pre-quantization) projection of the most
    recent batch.  When the same batch is projected again with a longer
    signature — the adaptive-growth pattern, and the bits sweeps of the
    Figure 1/3 experiments — only the *new* columns of the prefix-stable
    projection matrix are multiplied; the cached columns are reused.
    Re-hashing the same batch at the same or shorter length costs no
    arithmetic at all.

    **Contract:** a pipeline caches by array identity, so callers must
    not mutate a batch in place between hashes — pass a fresh array (or
    a copy) instead.  A single-pass fingerprint (sum, endpoints) is a
    tripwire that invalidates most accidental in-place edits, but
    sum-preserving rewrites (e.g. an in-place row permutation) are not
    detectable at this cost; the pure :class:`RPQHasher` methods carry
    no such caveat.  The reuse engine honours the contract by
    construction — every batch it hashes is a freshly extracted array —
    so cross-call hits occur only where the same array object really is
    re-hashed (signature-length sweeps over one batch, mid-run growth
    on a held batch).  The pipeline holds only a *weak* reference to
    the cached batch (it never extends the batch's lifetime) plus the
    projection buffer; the cache lookup itself is a pointer compare.
    """

    def __init__(self, hasher: "RPQHasher"):
        self.hasher = hasher
        # Weak reference: the pipeline must not keep a batch alive once
        # its producer releases it — only the (smaller) projection
        # buffer is retained between batches.
        self._vectors_ref = None
        self._fingerprint: tuple | None = None
        # Projection buffer: capacity grows geometrically so repeated
        # signature growth appends new columns in place instead of
        # reconcatenating the cached ones every step.
        self._projection: np.ndarray | None = None
        self._valid_bits = 0
        # Column-count accounting, reported by the perf suite.
        self.projected_columns = 0
        self.reused_columns = 0

    @staticmethod
    def _make_fingerprint(vectors: np.ndarray) -> tuple:
        flat = vectors.reshape(-1)
        if flat.shape[0] == 0:
            return (vectors.shape,)
        # One full pass (~1/signature_bits of the projection cost the
        # caller pays anyway): any mutation that changes the total or
        # the endpoints is caught; only exactly sum-preserving rewrites
        # could slip through.
        return (vectors.shape, float(flat.sum()),
                float(flat[0]), float(flat[-1]))

    def _reserve(self, num_vectors: int, signature_bits: int) -> None:
        """Grow buffer capacity geometrically, keeping valid columns."""
        capacity = 0 if self._projection is None else \
            self._projection.shape[1]
        if capacity < signature_bits:
            new_capacity = max(signature_bits, 2 * capacity)
            buffer = np.empty((num_vectors, new_capacity), dtype=np.float64)
            if self._valid_bits:
                buffer[:, :self._valid_bits] = \
                    self._projection[:, :self._valid_bits]
            self._projection = buffer

    def _is_cached(self, vectors: np.ndarray) -> bool:
        """Same live batch object, with the mutation tripwire applied.

        The identity check is a weakref pointer compare, so on a miss
        (the training hot path — every step's batch is a fresh array)
        nothing but the fill-time fingerprint is paid, a single summing
        pass of ~1/signature_bits the cost of the projection the fill
        performs anyway.
        """
        if self._projection is None or self._vectors_ref is None \
                or self._vectors_ref() is not vectors:
            return False
        return self._make_fingerprint(vectors) == self._fingerprint

    def projection(self, vectors: np.ndarray,
                   signature_bits: int) -> np.ndarray:
        """``vectors @ R[:, :signature_bits]``, incrementally cached."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if self._is_cached(vectors):
            if self._valid_bits < signature_bits:
                start = self._valid_bits
                self._reserve(len(vectors), signature_bits)
                self._projection[:, start:signature_bits] = \
                    self.hasher.project_block(vectors, start, signature_bits)
                self._valid_bits = signature_bits
                self.projected_columns += signature_bits - start
                self.reused_columns += start
            else:
                self.reused_columns += signature_bits
            return self._projection[:, :signature_bits]

        self._vectors_ref = weakref.ref(vectors)
        self._fingerprint = self._make_fingerprint(vectors)
        self._projection = self.hasher.project(vectors, signature_bits)
        self._valid_bits = signature_bits
        self.projected_columns += signature_bits
        return self._projection

    def signature_bits_matrix(self, vectors: np.ndarray,
                              signature_bits: int) -> np.ndarray:
        """0/1 bit matrix (sign quantization of the projection)."""
        return (self.projection(vectors, signature_bits) >= 0.0).astype(
            np.uint8)

    def signatures(self, vectors: np.ndarray,
                   signature_bits: int) -> np.ndarray:
        """One packed signature per row of ``vectors``."""
        return pack_bits(self.signature_bits_matrix(vectors, signature_bits))


class RPQHasher:
    """Generates RPQ signatures for batches of vectors.

    Projection matrices are generated lazily per vector length, in
    column blocks of :data:`PROJECTION_BLOCK_BITS` bits seeded per
    (hasher seed, vector length, block index).  Growing the signature
    length therefore *appends* columns and never changes the earlier
    ones: signatures for ``n`` bits are a bitwise prefix of signatures
    for ``n + k`` bits, and forward/backward passes of the same layer —
    and repeated runs — see the same projections.
    """

    def __init__(self, seed: int = 1234):
        self.seed = seed
        # vector_length -> (L, n_generated) column bank, grown in blocks.
        self._column_banks: dict[int, np.ndarray] = {}
        # (vector_length, signature_bits) -> cached prefix view.
        self._matrices: dict[tuple[int, int], np.ndarray] = {}
        # consumer key -> incremental pipeline.
        self._pipelines: dict[object, SignaturePipeline] = {}

    # ------------------------------------------------------------------
    def _column_bank(self, vector_length: int, signature_bits: int) -> np.ndarray:
        """The widest matrix generated so far, grown to cover the request."""
        bank = self._column_banks.get(vector_length)
        have = 0 if bank is None else bank.shape[1]
        if have < signature_bits:
            blocks = [] if bank is None else [bank]
            first_block = have // PROJECTION_BLOCK_BITS
            last_block = (signature_bits - 1) // PROJECTION_BLOCK_BITS
            for block in range(first_block, last_block + 1):
                rng = np.random.default_rng(
                    (self.seed, vector_length, block))
                blocks.append(rng.normal(
                    0.0, 1.0,
                    size=(vector_length, PROJECTION_BLOCK_BITS)))
            bank = np.concatenate(blocks, axis=1) if len(blocks) > 1 \
                else blocks[0]
            self._column_banks[vector_length] = bank
            # Cached prefix views alias the superseded bank via .base
            # and would pin it for the hasher's lifetime; drop them —
            # the next request re-slices the grown bank, whose prefix
            # columns are identical by construction.
            self._matrices = {key: view
                              for key, view in self._matrices.items()
                              if key[0] != vector_length}
        return bank

    def projection_matrix(self, vector_length: int,
                          signature_bits: int) -> np.ndarray:
        """Return (and cache) the m x n random projection matrix.

        The matrix for ``n`` bits is a zero-copy column-prefix view of
        the widest matrix generated for this vector length, so growing
        the signature keeps the first bits' filters stable — the
        regression tests assert the prefix property directly.
        """
        key = (vector_length, signature_bits)
        if key not in self._matrices:
            bank = self._column_bank(vector_length, signature_bits)
            self._matrices[key] = bank[:, :signature_bits]
        return self._matrices[key]

    def project_block(self, vectors: np.ndarray, start_bit: int,
                      stop_bit: int) -> np.ndarray:
        """Projection against columns ``[start_bit, stop_bit)`` only."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        bank = self._column_bank(vectors.shape[1], stop_bit)
        return vectors @ bank[:, start_bit:stop_bit]

    def project(self, vectors: np.ndarray, signature_bits: int) -> np.ndarray:
        """Random projection without quantization: ``X @ R``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        matrix = self.projection_matrix(vectors.shape[1], signature_bits)
        return vectors @ matrix

    # ------------------------------------------------------------------
    def pipeline(self, key: object) -> SignaturePipeline:
        """The incremental signature pipeline for one consumer key.

        The reuse engine keys pipelines by (layer, phase); analyses that
        sweep signature lengths over one batch share a per-shape key.
        """
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = SignaturePipeline(self)
            self._pipelines[key] = pipeline
        return pipeline

    def signature_bits_matrix(self, vectors: np.ndarray,
                              signature_bits: int) -> np.ndarray:
        """Return the 0/1 bit matrix (sign quantization of the projection).

        Pure (no batch caching): callers that re-hash one held batch at
        growing lengths should use :meth:`pipeline` explicitly.
        """
        projected = self.project(vectors, signature_bits)
        return (projected >= 0.0).astype(np.uint8)

    def signatures(self, vectors: np.ndarray, signature_bits: int) -> np.ndarray:
        """Return one packed integer signature per row of ``vectors``."""
        return pack_bits(self.signature_bits_matrix(vectors, signature_bits))

    # ------------------------------------------------------------------
    def similarity_fraction(self, vectors: np.ndarray,
                            signature_bits: int) -> float:
        """Fraction of vectors whose signature repeats an earlier one.

        This is the quantity plotted per layer in Figure 1 of the paper
        ("input similarity"): a vector is *similar* if at least one
        earlier vector produced the same signature.  Exactly the number
        of non-first occurrences, computed with one ``np.unique``
        group-by for either packed representation.
        """
        sigs = self.signatures(vectors, signature_bits)
        total = len(sigs)
        if total == 0:
            return 0.0
        uniques, _, _ = unique_signatures(sigs)
        return (total - len(uniques)) / total

    def unique_vector_count(self, vectors: np.ndarray,
                            signature_bits: int) -> int:
        """Number of distinct signatures (Figure 3 / Figure 15c)."""
        sigs = self.signatures(vectors, signature_bits)
        uniques, _, _ = unique_signatures(sigs)
        return len(uniques)


def signature_via_convolution(image: np.ndarray, kernel_size: int,
                              random_filters: np.ndarray,
                              stride: int = 1) -> np.ndarray:
    """Compute signatures using the paper's convolution formulation.

    Each column of the random projection matrix is reshaped into a
    ``kernel_size x kernel_size`` random filter; sliding each filter over
    the image produces one bit of every input vector's signature
    (§III-B1).  The sliding is a zero-copy strided window view and all
    filters are applied in a single matrix product, so the result is
    bit-identical to hashing the im2col rows directly — which the test
    suite asserts.

    Parameters
    ----------
    image:
        2D input matrix of shape ``(H, W)`` (single channel).
    kernel_size:
        Side length of the extracted input vectors.
    random_filters:
        Projection matrix of shape ``(kernel_size * kernel_size, n_bits)``.

    Returns
    -------
    numpy.ndarray
        Packed integer signature per input vector, ordered row-major
        over the output positions.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("signature_via_convolution expects a 2D image")
    height, width = image.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1

    stride_h, stride_w = image.strides
    windows = as_strided(
        image,
        shape=(out_h, out_w, kernel_size, kernel_size),
        strides=(stride_h * stride, stride_w * stride, stride_h, stride_w),
        writeable=False)
    patches = windows.reshape(out_h * out_w, kernel_size * kernel_size)
    projected = patches @ np.asarray(random_filters, dtype=np.float64)
    return pack_bits((projected >= 0.0).astype(np.uint8))
