"""Scaled VGG-13 / VGG-16 / VGG-19.

The original VGG configurations (2x64, 2x128, 2x256, 2x512, 2x512 for
VGG-13, with 3- and 4-convolution stages for VGG-16/19) are kept
structurally intact with channel widths divided by eight, so VGG-13
still has the ten convolution layers the paper's Figure 1 / Figure 15
case study analyses.
"""

from __future__ import annotations

from repro.nn import (BatchNorm2D, Conv2D, GlobalAvgPool2D, Linear, MaxPool2D,
                      ReLU, Sequential)
from repro.nn.module import assign_unique_layer_names

# Channel configurations; "P" is a 2x2 max pool.
_VGG_CONFIGS = {
    "vgg13": [8, 8, "P", 16, 16, "P", 32, 32, "P", 64, 64, "P", 64, 64],
    "vgg16": [8, 8, "P", 16, 16, "P", 32, 32, 32, "P", 64, 64, 64, "P",
              64, 64, 64],
    "vgg19": [8, 8, "P", 16, 16, "P", 32, 32, 32, 32, "P", 64, 64, 64, 64,
              "P", 64, 64, 64, 64],
}


def conv_layer_count(variant: str) -> int:
    """Number of convolution layers in a VGG variant."""
    return sum(1 for item in _VGG_CONFIGS[variant] if item != "P")


def build_vgg(variant: str, num_classes: int = 8, in_channels: int = 3,
              seed: int = 0) -> Sequential:
    """Build one of the three VGG variants."""
    if variant not in _VGG_CONFIGS:
        raise ValueError(f"unknown VGG variant {variant!r}")
    layers = []
    channels = in_channels
    conv_seed = seed
    for item in _VGG_CONFIGS[variant]:
        if item == "P":
            layers.append(MaxPool2D(2))
        else:
            # Batch-normalised variant (VGG-BN); the plain configuration
            # does not train reliably at this reduced width.
            layers.append(Conv2D(channels, item, 3, padding=1, seed=conv_seed))
            layers.append(BatchNorm2D(item))
            layers.append(ReLU())
            channels = item
            conv_seed += 1
    layers.append(GlobalAvgPool2D())
    layers.append(Linear(channels, 32, seed=conv_seed))
    layers.append(ReLU())
    layers.append(Linear(32, num_classes, seed=conv_seed + 1))
    model = Sequential(*layers)
    return assign_unique_layer_names(model, prefix=variant)


def build_vgg13(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> Sequential:
    return build_vgg("vgg13", num_classes, in_channels, seed)


def build_vgg16(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> Sequential:
    return build_vgg("vgg16", num_classes, in_channels, seed)


def build_vgg19(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> Sequential:
    return build_vgg("vgg19", num_classes, in_channels, seed)
