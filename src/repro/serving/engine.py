"""Cross-request reuse engines for inference serving.

Training batches are single-use: the reuse engine flash-clears its
MCACHE for every layer call, so similarity is only exploited *within* a
batch.  Serving traffic is the opposite regime — many requests repeat
(hot keys, retries, shared prefixes) — so here the
signature-indexed result cache is *persistent*: its tags, data and
access counters survive across micro-batches, and admission/eviction is
governed by an explicit :class:`ServingPolicy`.

Two granularities share one implementation
(:class:`SignatureResultCache`, built on the batch probe/insert and
data-phase machinery of
:class:`~repro.core.mcache_vec.VectorizedMCache`):

* **request** — the whole input is one vector; a hit serves the cached
  network output without touching the model.  With ``exact_check`` the
  stored payload is compared bit-for-bit, so a hit can only reuse the
  output of an *identical* request: reuse is exact and the served
  output is byte-identical to what the model would have produced for
  that request (the golden determinism suite pins this).
* **vector** — every layer routed through
  :class:`ServingReuseEngine.matmul` probes a per-layer persistent
  cache with its RPQ signatures, the serving analogue of the training
  engine's Hitmap phase.  Hits copy dot-product rows computed in
  *earlier* batches; telemetry mirrors the training
  :class:`~repro.core.stats.ReuseStats` per layer.

A note on exactness: copying a row that an identical vector produced in
an earlier batch is numerically exact reuse, but BLAS kernels choose
different reduction orders for different matrix shapes, so a reused row
and a freshly computed row in a *differently shaped* batch may differ
in the last bits (~1e-16 relative).  The serving sweep therefore
measures output deviation against an engine-less oracle per scenario;
bit-identity is guaranteed (and regression-tested) for the
request-granularity exact configuration with per-request compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hitmap import HitState
from repro.core.mcache_vec import VectorizedMCache
from repro.core.rpq import RPQHasher, unique_signatures
from repro.core.stats import ReuseStats


@dataclass(frozen=True)
class ServingPolicy:
    """Admission/eviction policy of the serving caches.

    ``entries``/``ways`` give the MCACHE geometry: capacity is enforced
    the paper's way — no replacement; a signature whose set is full is
    computed every time (MNU).  ``ttl_batches`` bounds entry age: a hit
    on an entry inserted more than that many micro-batches ago is
    *refreshed* — recomputed and rewritten in place with its age reset —
    so stale traffic cannot pin results forever.  ``layers`` restricts
    vector-granularity reuse to layers whose name contains one of the
    given substrings (``None`` = every routed layer).
    """

    # Which caches are active.
    request_cache: bool = True
    vector_cache: bool = False
    # Signature / capacity knobs (shared by both granularities).
    signature_bits: int = 32
    entries: int = 4096
    ways: int = 16
    ttl_batches: int | None = None
    # Collision safety: verify the stored payload equals the incoming
    # one before serving a hit; mismatches are demoted to computes.
    exact_check: bool = True
    # Vector-granularity scope.
    layers: tuple[str, ...] | None = None
    # Convolution signature granularity for the vector cache (``None``
    # hashes the whole cross-channel patch — the natural serving choice,
    # where whole-input repeats dominate).
    conv_channel_group: int | None = None
    # How cache misses are computed by the server: "batched" forwards
    # all missing requests of a micro-batch in one stacked call (fast);
    # "per_request" forwards them one by one, which makes every output
    # independent of micro-batch composition and therefore bitwise
    # reproducible against the per-request oracle.
    compute: str = "batched"
    rpq_seed: int = 1234

    def __post_init__(self):
        if self.signature_bits <= 0:
            raise ValueError("signature_bits must be positive")
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ValueError("entries must be divisible by ways")
        if self.ttl_batches is not None and self.ttl_batches <= 0:
            raise ValueError("ttl_batches must be positive (or None)")
        if self.compute not in ("batched", "per_request"):
            raise ValueError(f"unknown compute mode {self.compute!r}")

    def replace(self, **changes) -> "ServingPolicy":
        from dataclasses import replace as dc_replace
        return dc_replace(self, **changes)


@dataclass
class CacheCounters:
    """Row-level outcome counters of one :class:`SignatureResultCache`."""

    requests: int = 0          # rows probed
    cross_hits: int = 0        # rows served from an earlier batch's entry
    intra_hits: int = 0        # duplicate rows within one batch
    computed: int = 0          # rows actually multiplied/forwarded
    inserted: int = 0          # computed rows admitted into the cache
    rejected: int = 0          # computed rows whose set was full (MNU)
    expired: int = 0           # hits demoted by TTL (entry refreshed)
    collisions: int = 0        # exact-check demotions (signature aliasing)

    @property
    def hits(self) -> int:
        return self.cross_hits + self.intra_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {"requests": self.requests, "cross_hits": self.cross_hits,
                "intra_hits": self.intra_hits, "computed": self.computed,
                "inserted": self.inserted, "rejected": self.rejected,
                "expired": self.expired, "collisions": self.collisions,
                "hit_rate": self.hit_rate}


class SignatureResultCache:
    """Persistent signature→result store shared across micro-batches.

    One instance serves one stream of equal-length vectors (a request
    payload shape, or one layer's input vectors).  Probing, admission
    and the result store ride on the persistent batch machinery of
    :class:`~repro.core.mcache_vec.VectorizedMCache`
    (``lookup_or_insert_batch`` + the data phase), so capacity behaves
    exactly like the hardware structure: set-associative, no
    replacement.
    """

    def __init__(self, policy: ServingPolicy, hasher: RPQHasher | None = None):
        self.policy = policy
        self.hasher = hasher or RPQHasher(seed=policy.rpq_seed)
        self.mcache = VectorizedMCache(entries=policy.entries,
                                       ways=policy.ways)
        self.counters = CacheCounters()
        # entry id -> micro-batch index of (re)insertion, densely grown
        # alongside the MCACHE's entry ids.
        self._entry_batch = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _grow_entry_batches(self, batch_index: int) -> None:
        missing = self.mcache._next_entry_id - len(self._entry_batch)
        if missing > 0:
            self._entry_batch = np.concatenate(
                [self._entry_batch,
                 np.full(missing, batch_index, dtype=np.int64)])

    def serve(self, vectors: np.ndarray, compute, batch_index: int
              ) -> tuple[np.ndarray, "ServeOutcome"]:
        """Return one result row per input row, reusing where possible.

        ``compute(first_indices)`` receives the row indices (into
        ``vectors``) of the unique inputs that need computing and must
        return one result row per index, in order.  Cached rows are
        served without calling it; duplicates within the batch share
        one computation.  Returns ``(rows, outcome)`` where ``outcome``
        details this call's reuse decisions.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("serve expects 2D (rows, features) vectors")
        num_rows = len(vectors)
        counters = self.counters
        counters.requests += num_rows
        if num_rows == 0:
            return np.empty((0, 0)), ServeOutcome()

        signatures = self.hasher.signatures(vectors,
                                            self.policy.signature_bits)
        uniques, first_index, inverse = unique_signatures(signatures)
        num_unique = len(uniques)
        states, entry_ids = self.mcache.lookup_or_insert_batch(uniques)
        self._grow_entry_batches(batch_index)

        # Intra-batch aliasing: with ``exact_check`` a row may only
        # share its signature group's result if it *equals* the group's
        # first occurrence — a colliding (similar-but-different) row is
        # computed on its own instead.  Without the check, signature
        # trust applies within the batch exactly as it does across
        # batches: that is MERCURY's approximate-reuse semantics.
        if self.policy.exact_check:
            aliased = ~(vectors == vectors[first_index[inverse]]).all(axis=1)
            counters.collisions += int(aliased.sum())
        else:
            aliased = np.zeros(num_rows, dtype=bool)

        resident = states == HitState.HIT          # existed before batch
        inserted = states == HitState.MAU          # claimed a line now
        rejected = states == HitState.MNU          # set full, no entry

        # Which resident entries may serve their stored result?
        reusable = resident.copy()
        refresh = np.zeros(num_unique, dtype=bool)
        if resident.any():
            res_idx = np.flatnonzero(resident)
            res_entries = entry_ids[res_idx]
            valid = self.mcache.has_data_batch(res_entries)
            if self.policy.ttl_batches is not None:
                age = batch_index - self._entry_batch[res_entries]
                expired = age > self.policy.ttl_batches
                counters.expired += int(expired.sum())
                valid &= ~expired
            stale = res_idx[~valid]
            reusable[stale] = False
            refresh[stale] = True
            if self.policy.exact_check and valid.any():
                live = res_idx[valid]
                stored = self.mcache.read_data_batch(entry_ids[live])
                match = np.fromiter(
                    (np.array_equal(payload, vectors[row])
                     for (payload, _), row in zip(stored,
                                                  first_index[live])),
                    dtype=bool, count=len(live))
                collided = live[~match]
                counters.collisions += len(collided)
                reusable[collided] = False

        needs_compute = ~reusable
        aliased_rows = np.flatnonzero(aliased)
        group_rows = first_index[needs_compute]
        compute_rows = np.concatenate([group_rows, aliased_rows]) \
            if len(aliased_rows) else group_rows
        computed = None
        if len(compute_rows):
            computed = np.asarray(compute(compute_rows), dtype=np.float64)
            if computed.ndim != 2 or len(computed) != len(compute_rows):
                raise ValueError("compute must return one row per index")

        # Assemble per-unique results: reused rows from the store,
        # computed rows from the caller.
        width = computed.shape[1] if computed is not None else \
            self._stored_width(entry_ids, reusable)
        unique_rows = np.empty((num_unique, width), dtype=np.float64)
        if reusable.any():
            reuse_idx = np.flatnonzero(reusable)
            stored = self.mcache.read_data_batch(entry_ids[reuse_idx])
            for position, value in zip(reuse_idx, stored):
                unique_rows[position] = value[1] if self.policy.exact_check \
                    else value
        if computed is not None:
            unique_rows[needs_compute] = computed[:len(group_rows)]

        # Admit fresh computations: newly claimed lines and refreshed
        # (expired / data-invalidated) residents.  Collisions keep the
        # original owner's payload (first-writer-wins); rejected
        # signatures have no line to write.
        admit = np.flatnonzero(inserted | refresh)
        if len(admit):
            values = np.empty(len(admit), dtype=object)
            for slot, unique_pos in enumerate(admit):
                row = np.array(unique_rows[unique_pos], copy=True)
                if self.policy.exact_check:
                    payload = np.array(vectors[first_index[unique_pos]],
                                       copy=True)
                    values[slot] = (payload, row)
                else:
                    values[slot] = row
            self.mcache.write_data_batch(entry_ids[admit], values)
            self._entry_batch[entry_ids[admit]] = batch_index

        results = unique_rows[inverse]
        if len(aliased_rows):
            results[aliased_rows] = computed[len(group_rows):]

        # Row-level accounting (aliased rows are computes, not hits).
        is_first = np.zeros(num_rows, dtype=bool)
        is_first[first_index] = True
        row_cross = reusable[inverse] & ~aliased
        row_intra = needs_compute[inverse] & ~is_first & ~aliased
        outcome = ServeOutcome(
            rows=num_rows,
            unique=num_unique,
            cross_hit_rows=int(row_cross.sum()),
            intra_hit_rows=int(row_intra.sum()),
            aliased_rows=int(aliased.sum()),
            reused_unique=int(reusable.sum()),
            computed_unique=int(needs_compute.sum()),
            inserted_unique=int(inserted.sum()),
            rejected_unique=int(rejected.sum()))
        counters.cross_hits += outcome.cross_hit_rows
        counters.intra_hits += outcome.intra_hit_rows
        counters.computed += outcome.computed_unique + outcome.aliased_rows
        counters.inserted += outcome.inserted_unique
        counters.rejected += outcome.rejected_unique

        return results, outcome

    def _stored_width(self, entry_ids, reusable) -> int:
        reuse_idx = np.flatnonzero(reusable)
        if not len(reuse_idx):
            return 0
        first = self.mcache.read_data_batch(entry_ids[reuse_idx[:1]])[0]
        return len(first[1]) if self.policy.exact_check else len(first)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return self.mcache.occupancy()

    def clear(self) -> None:
        self.mcache.clear()
        self._entry_batch = np.empty(0, dtype=np.int64)


@dataclass
class ServeOutcome:
    """Reuse decisions of one :meth:`SignatureResultCache.serve` call."""

    rows: int = 0
    unique: int = 0
    cross_hit_rows: int = 0
    intra_hit_rows: int = 0
    aliased_rows: int = 0
    reused_unique: int = 0
    computed_unique: int = 0
    inserted_unique: int = 0
    rejected_unique: int = 0

    @property
    def hit_rows(self) -> int:
        return self.cross_hit_rows + self.intra_hit_rows


class ServingReuseEngine:
    """Per-layer cross-batch reuse engine for inference forwards.

    Drop-in for the training engine's ``matmul`` protocol (so any
    :class:`~repro.nn.module.Module` attaches it via ``set_engine``),
    but forward-only and *persistent*: each (layer, vector length)
    stream owns a :class:`SignatureResultCache` whose state survives
    across micro-batches.  Call :meth:`end_batch` once per micro-batch
    to advance the TTL clock.
    """

    def __init__(self, policy: ServingPolicy | None = None):
        self.policy = policy or ServingPolicy(vector_cache=True)
        # ``config`` mirrors the training engine's attribute so layers
        # discover the convolution signature granularity the same way.
        self.config = self.policy
        self.hasher = RPQHasher(seed=self.policy.rpq_seed)
        self.stats = ReuseStats()
        self.batch_index = 0
        self._caches: dict[tuple[str, int], SignatureResultCache] = {}
        # The weights operand each stream was populated against.  A
        # cached row is only valid while the layer multiplies by the
        # same matrix; layers that pass data-dependent weights (e.g. an
        # attention score matmul against the batch itself) present a
        # fresh array every call, which this identity check turns into
        # a permanent exact bypass instead of wrong reuse.  (In-place
        # mutation of a parameter while serving is not detectable at
        # this cost — freeze weights, or build a new engine after an
        # update.)
        self._stream_weights: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _layer_enabled(self, layer: str) -> bool:
        patterns = self.policy.layers
        if patterns is None:
            return True
        return any(pattern in layer for pattern in patterns)

    def _weights_stable(self, layer: str, vector_length: int,
                        weights: np.ndarray) -> bool:
        """Whether this stream still multiplies by its original matrix.

        The first call pins the weights array (or its base, so cached
        zero-copy views of one parameter keep matching); any later call
        with a *different* array — a data-dependent operand — empties
        the stream's cache and disables reuse for the call.
        """
        key = (layer, vector_length)
        anchor = weights if weights.base is None else weights.base
        pinned = self._stream_weights.get(key)
        if pinned is None:
            self._stream_weights[key] = anchor
            return True
        if pinned is anchor:
            return True
        cache = self._caches.get(key)
        if cache is not None:
            cache.clear()
        return False

    def cache_for(self, layer: str, vector_length: int
                  ) -> SignatureResultCache:
        key = (layer, vector_length)
        cache = self._caches.get(key)
        if cache is None:
            cache = SignatureResultCache(self.policy, hasher=self.hasher)
            self._caches[key] = cache
        return cache

    # ------------------------------------------------------------------
    def matmul(self, vectors: np.ndarray, weights: np.ndarray, *,
               layer: str, phase: str = "forward") -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if vectors.ndim != 2 or weights.ndim != 2:
            raise ValueError("matmul expects 2D vectors and weights")
        if vectors.shape[1] != weights.shape[0]:
            raise ValueError(
                f"shape mismatch: vectors {vectors.shape} x "
                f"weights {weights.shape}")
        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]
        if num_vectors == 0:
            return vectors @ weights

        if (phase != "forward" or not self._layer_enabled(layer)
                or not self._weights_stable(layer, vector_length, weights)):
            result = vectors @ weights
            record = self.stats.record_for(layer, phase)
            record.merge_call(vectors=num_vectors, hits=0, mau=0,
                              mnu=num_vectors, vector_length=vector_length,
                              num_filters=num_filters, signature_bits=0,
                              unique_signatures=num_vectors,
                              detection_on=False)
            return result

        cache = self.cache_for(layer, vector_length)
        result, outcome = cache.serve(
            vectors,
            lambda rows: vectors[rows] @ weights,
            self.batch_index)

        # Map the serving outcome onto the training-stats vocabulary:
        # every reused row (cross-batch or intra-batch duplicate) is a
        # HIT, computed-and-admitted uniques are MAU, computed uniques
        # without a line (set full / collision / refresh) are MNU.
        record = self.stats.record_for(layer, phase)
        record.merge_call(
            vectors=num_vectors,
            hits=outcome.hit_rows,
            mau=outcome.inserted_unique,
            mnu=(outcome.computed_unique - outcome.inserted_unique
                 + outcome.aliased_rows),
            vector_length=vector_length, num_filters=num_filters,
            signature_bits=self.policy.signature_bits,
            unique_signatures=outcome.unique,
            detection_on=True)
        return result

    # ------------------------------------------------------------------
    def end_batch(self) -> None:
        """Advance the TTL clock; call once per processed micro-batch."""
        self.batch_index += 1

    def end_iteration(self, loss: float | None = None) -> None:
        """Interface parity with the training engines (no adaptation)."""
        self.end_batch()

    # ------------------------------------------------------------------
    def counters(self) -> CacheCounters:
        """Aggregate row counters across every per-layer cache."""
        total = CacheCounters()
        for cache in self._caches.values():
            for name, value in vars(cache.counters).items():
                setattr(total, name, getattr(total, name) + value)
        return total

    def layer_summary(self) -> list[dict]:
        """JSON-safe per-(layer, phase) reuse telemetry."""
        rows = []
        for record in self.stats.all_records():
            rows.append({"layer": record.layer, "phase": record.phase,
                         "vectors": int(record.total_vectors),
                         "hits": int(record.hits),
                         "hit_fraction": float(record.hit_fraction),
                         "detection_on":
                             bool(record.similarity_detection_on)})
        return rows

    def occupancy(self) -> dict[str, int]:
        return {f"{layer}:{length}": cache.occupancy()
                for (layer, length), cache in self._caches.items()}
