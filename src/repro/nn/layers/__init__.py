"""Layer implementations for the numpy DNN framework."""

from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh, GELU, Softmax
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D, GlobalAvgPool2D
from repro.nn.layers.norm import BatchNorm2D, LayerNorm
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.attention import SelfAttention, MultiHeadSelfAttention

__all__ = [
    "Conv2D",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Softmax",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "LayerNorm",
    "Dropout",
    "Flatten",
    "Embedding",
    "SelfAttention",
    "MultiHeadSelfAttention",
]
