"""Online adaptive policy control over telemetry windows.

The training side adapts continuously (`core/adaptation.py` grows
signature bits on loss plateaus); this module is the serving-side
analogue: :class:`AdaptivePolicyController` consumes per-window cache
telemetry from the event bus and retunes the serving policy as traffic
drifts.

The flagship move targets the paper's no-replacement capacity model:
a set-associative cache without eviction pins whatever hot set arrived
first, so when a Zipfian head rotates (`zipf_rotate_every` traffic)
the hit rate collapses *permanently* — every new hot key is rejected
by full sets.  The controller detects the collapse (window hit rate
falling below ``collapse_ratio`` of the best window since the last
reset) and issues a ``flash_clear``: one batched invalidation that
frees the sets for the new hot set, trading one refill window for
restored steady-state hits.  TTL widening (when expiries churn the
working set) and admission tightening (when one-shot traffic floods
inserts that never hit) ride the same window loop, and an optional
:class:`~repro.core.adaptation.SignatureLengthScheduler` can grow the
signature length when the hit rate plateaus low.

Decisions are a **pure function of the window sequence**: no clocks,
no randomness, no hidden state beyond prior windows.  That makes every
run auditable — :func:`replay_decisions` re-derives the decision list
from the windows an :class:`~repro.obs.recorder.AuditRecorder`
persisted, and the test suite pins that the replayed decisions equal
the recorded ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the window-driven policy controller."""

    #: Windows smaller than this are too noisy to act on.
    min_window_rows: int = 8
    #: A window whose hit rate falls below ``collapse_ratio`` × the
    #: best window since the last reset triggers a flash clear.
    collapse_ratio: float = 0.5
    #: The best-window reference must itself clear this floor before a
    #: collapse is actionable (a cache that never hit has nothing to
    #: restore by clearing).
    min_reference_hit_rate: float = 0.05
    #: Windows to sit out after a clear (the refill window hits ~0 by
    #: construction; reacting to it would clear forever).
    cooldown_windows: int = 1
    #: Widen TTL when more than this fraction of a window's rows
    #: expired out of the cache (the TTL is churning live entries).
    ttl_expired_fraction: float = 0.25
    ttl_growth_factor: int = 2
    max_ttl_batches: int = 256
    #: Tighten admission to frequency-gating when inserts flood with
    #: almost no return (one-shot traffic polluting the sets).
    adapt_admission: bool = False
    admission_insert_fraction: float = 0.6
    admission_hit_rate_floor: float = 0.02

    def __post_init__(self):
        if self.min_window_rows < 0:
            raise ValueError("min_window_rows cannot be negative")
        if not 0.0 < self.collapse_ratio < 1.0:
            raise ValueError("collapse_ratio must be in (0, 1)")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows cannot be negative")
        if self.ttl_growth_factor < 2:
            raise ValueError("ttl_growth_factor must be at least 2")


class AdaptivePolicyController:
    """Deterministic window-in / decisions-out feedback controller.

    Feed it one window dict per telemetry window (the server does this
    at window boundaries); it returns the decisions to apply.  Window
    dicts carry the per-window cache deltas (``rows``, ``hits``,
    ``hit_rate``, ``inserted``, ``rejected``, ``expired``,
    ``evicted``) plus the policy knobs active when the window closed
    (``ttl_batches``, ``admission``, ``eviction``,
    ``signature_bits``).
    """

    def __init__(self, config: ControllerConfig | None = None,
                 scheduler=None):
        self.config = config or ControllerConfig()
        #: Optional SignatureLengthScheduler (core/adaptation.py): fed
        #: ``1 - hit_rate`` as its loss, it grows the signature length
        #: when the miss rate plateaus.
        self.scheduler = scheduler
        self.decisions: list[dict] = []
        self._reference_hit_rate = 0.0
        self._cooldown = 0
        self._windows_seen = 0

    def reset(self) -> None:
        """Forget all window state; the server calls this per run.

        The scheduler is *not* reset — it has no public rewind, which
        is why :meth:`describe` (and therefore the audit manifest)
        captures its initial state before the run starts.
        """
        self.decisions = []
        self._reference_hit_rate = 0.0
        self._cooldown = 0
        self._windows_seen = 0

    def describe(self) -> dict:
        """Manifest-ready self-description.

        Captured at run start (before any window moves the scheduler),
        so :func:`replay_decisions` can rebuild an identical controller
        from the manifest alone.
        """
        from dataclasses import asdict
        description = {"config": asdict(self.config)}
        if self.scheduler is not None:
            description["scheduler"] = {
                "initial_bits": self.scheduler.bits,
                "max_bits": self.scheduler.max_bits,
                "plateau_iterations": self.scheduler.plateau_iterations,
                "tolerance": self.scheduler.tolerance,
            }
        return description

    def observe_window(self, window: dict) -> list[dict]:
        """Consume one closed window; return the decisions it triggers."""
        self._windows_seen += 1
        config = self.config
        rows = int(window.get("rows", 0))
        if rows < config.min_window_rows:
            return []
        hit_rate = float(window.get("hit_rate", 0.0))
        index = window.get("window", self._windows_seen - 1)
        decided: list[dict] = []

        if self._cooldown > 0:
            self._cooldown -= 1
            self._reference_hit_rate = max(self._reference_hit_rate,
                                           hit_rate)
            return []

        # 1. Hit-rate collapse → flash clear (free the pinned stale
        #    hot set so the rotated head can be admitted).
        if self._reference_hit_rate >= config.min_reference_hit_rate \
                and hit_rate < config.collapse_ratio \
                * self._reference_hit_rate:
            decided.append({
                "action": "flash_clear", "window": index,
                "hit_rate": hit_rate,
                "reference_hit_rate": self._reference_hit_rate,
                "reason": "window hit rate collapsed below "
                          f"{config.collapse_ratio:g}x the best window",
            })
            self._reference_hit_rate = 0.0
            self._cooldown = config.cooldown_windows
        else:
            self._reference_hit_rate = max(self._reference_hit_rate,
                                           hit_rate)

        # 2. TTL churn → widen the TTL.
        ttl = window.get("ttl_batches")
        if ttl and int(window.get("expired", 0)) \
                > config.ttl_expired_fraction * rows:
            new_ttl = min(config.max_ttl_batches,
                          int(ttl) * config.ttl_growth_factor)
            if new_ttl > int(ttl):
                decided.append({
                    "action": "ttl", "window": index,
                    "ttl_batches": new_ttl, "previous": int(ttl),
                    "reason": "TTL expiries churned more than "
                              f"{config.ttl_expired_fraction:g} of the "
                              "window's rows",
                })

        # 3. Insert flood with no return → frequency-gate admission.
        if config.adapt_admission \
                and window.get("admission") == "always" \
                and hit_rate <= config.admission_hit_rate_floor \
                and int(window.get("inserted", 0)) \
                > config.admission_insert_fraction * rows:
            decided.append({
                "action": "admission", "window": index,
                "admission": "frequency", "previous": "always",
                "reason": "inserts flooded with almost no hits; "
                          "gating admission on repeat frequency",
            })

        # 4. Optional: grow the signature length on a low plateau.
        if self.scheduler is not None:
            bits = self.scheduler.observe_loss(1.0 - hit_rate)
            current = window.get("signature_bits")
            if current is not None and bits != int(current):
                decided.append({
                    "action": "signature_bits", "window": index,
                    "signature_bits": int(bits),
                    "previous": int(current),
                    "reason": "miss-rate plateau; growing the RPQ "
                              "signature length",
                })

        self.decisions.extend(decided)
        return decided


def replay_decisions(manifest_or_windows,
                     config: ControllerConfig | None = None,
                     scheduler=None) -> list[dict]:
    """Re-derive a run's decisions from its audited windows.

    Accepts an audit manifest dict (uses its ``windows``) or a bare
    window list.  Because the controller is a pure function of the
    window sequence, the result must equal the recorded decision list
    — the reproducibility check the audit manifest exists for.
    """
    windows = manifest_or_windows
    if isinstance(manifest_or_windows, dict):
        windows = manifest_or_windows.get("windows", [])
        recorded = manifest_or_windows.get("controller", {})
        if config is None and recorded.get("config"):
            config = ControllerConfig(**recorded["config"])
        if scheduler is None and recorded.get("scheduler"):
            from repro.core.adaptation import SignatureLengthScheduler
            scheduler = SignatureLengthScheduler(**recorded["scheduler"])
    controller = AdaptivePolicyController(config, scheduler)
    for window in windows:
        controller.observe_window(window)
    return controller.decisions
