"""Shared grid-execution machinery for the sweep runners.

Both sweep families — the analytic cycle-model sweep
(:mod:`repro.analysis.sweep`) and the functional training-accuracy
sweep (:mod:`repro.analysis.functional_sweep`) — are shaped the same
way: expand a cross product of scenario axes into frozen point records,
evaluate every point independently (optionally over a
``multiprocessing`` pool) and aggregate the JSON-safe result rows into
a persistable results object.  This module holds that common shape:

* :func:`expand_grid` — deterministic cross-product expansion;
* :func:`run_grid` — the fan-out executor with an in-process fallback;
* :class:`GridResults` — the base results container with the shared
  JSON envelope (``{"schema": ..., "elapsed_s": ..., "rows": [...]}``),
  filtering and geometric-mean helpers.

Subclasses set two class attributes: ``schema`` (the marker written
into and checked against the JSON envelope, so a cycle-sweep file is
not silently loaded as a functional sweep) and ``result_keys`` (the
minimum key set every row must carry — the contract the smoke tests
assert).
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Mapping

import numpy as np


def expand_grid(axes: Mapping[str, Iterable]) -> list[dict]:
    """Cross product of the given axes, in deterministic order.

    The first axis varies slowest (outermost loop), matching the row
    order both sweep runners have always produced.  Axis values are
    materialised once, so generators are accepted.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    return [dict(zip(names, combo)) for combo in itertools.product(*values)]


def run_grid(points, evaluate: Callable[[object], dict],
             processes: int | None = None) -> tuple[list[dict], float]:
    """Evaluate every point; returns ``(rows, elapsed_seconds)``.

    ``processes=0`` (or a single-point grid) evaluates in-process;
    otherwise a ``multiprocessing`` pool of ``processes`` workers
    (default: all cores, capped at the number of points) maps over the
    grid.  ``evaluate`` must be a picklable module-level callable and
    rows come back in grid order either way.
    """
    points = list(points)
    start = time.perf_counter()
    if processes == 0 or len(points) <= 1:
        rows = [evaluate(point) for point in points]
    else:
        workers = min(processes or multiprocessing.cpu_count(),
                      max(len(points), 1))
        with multiprocessing.Pool(processes=workers) as pool:
            rows = pool.map(evaluate, points)
    return rows, time.perf_counter() - start


@dataclass
class GridResults:
    """Aggregated sweep rows with JSON persistence and row queries."""

    rows: list[dict] = field(default_factory=list)
    elapsed_s: float = 0.0

    # Overridden by subclasses; ``load`` enforces the schema marker.
    schema: ClassVar[str] = "grid"
    result_keys: ClassVar[frozenset] = frozenset()

    def __len__(self) -> int:
        return len(self.rows)

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"schema": self.schema,
                           "elapsed_s": self.elapsed_s,
                           "rows": self.rows},
                          indent=2, sort_keys=True)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "GridResults":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        # Files written before the schema marker existed load as-is;
        # a *different* marker means the wrong results class was used.
        found = payload.get("schema", cls.schema)
        if found != cls.schema:
            raise ValueError(
                f"{path} holds {found!r} results, not {cls.schema!r}")
        return cls(rows=payload["rows"], elapsed_s=payload["elapsed_s"])

    # -- row queries ----------------------------------------------------
    def matching_rows(self, **filters) -> list[dict]:
        """Rows whose values equal every ``filters`` entry."""
        return [row for row in self.rows
                if all(row[key] == value for key, value in filters.items())]

    def geomean(self, column: str, **filters) -> float:
        """Geometric mean of ``column`` over rows matching ``filters``."""
        values = [row[column] for row in self.matching_rows(**filters)]
        if not values:
            raise ValueError(f"no rows match {filters!r}")
        return float(np.exp(np.mean(np.log(values))))

    def missing_keys(self) -> list[set]:
        """Per-row schema violations (empty sets when rows conform)."""
        return [self.result_keys - set(row) for row in self.rows]
