"""Dense int8 Hitmap state codes: bit-identity against the enum oracle.

PR "coded states" retired the ``dtype=object`` ``HitState`` arrays from
the classification and serving hot paths; the enum survives only as the
user-facing view (``HitmapSimulation.state_objects()`` /
``.to_hitmap()``) and inside the scalar ``MCache``/``Hitmap`` oracle.
These suites pin the coded representation to that oracle:

* classification codes are bit-identical across all three session
  backends and equal to an enum-by-enum scalar ``MCache`` replay,
  including >62-bit multi-word signatures;
* the serving probe paths (``_probe_and_admit`` with the frequency gate,
  ``_probe_and_admit_evicting`` with a replacement policy) emit int8
  codes whose semantics match a scalar mirror replay;
* the fused gather->GEMM->scatter ``ride_groups`` is bit-identical to
  the per-call masked ``ride`` oracle, directly and engine-to-engine
  via ``MercuryConfig(fused_ride=...)``;
* ``words_to_ints`` (the exact-Python-int expansion) never runs on the
  engine path — only the scalar/differential oracle may call it;
* ``_prune_seen``'s argpartition selection matches the old
  sort-the-whole-gate semantics, ties included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MercuryConfig
from repro.core.hitmap import CODE_TO_STATE, HIT_CODE, MAU_CODE, MNU_CODE
from repro.core.hitmap_sim import simulate_hitmap, simulate_hitmap_grouped
from repro.core.mcache import MCache
from repro.core.reuse import ReuseEngine
from repro.core.rpq import ints_to_words, unique_signatures
from repro.core.session import ReuseSession, SessionPolicy
from repro.nn.layers.conv import Conv2D

BACKENDS = ("vectorized", "groupby", "scalar")


def _enum_oracle_codes(trace, entries: int, ways: int) -> list[int]:
    """Replay through the scalar enum MCache, returning ``.code`` views."""
    cache = MCache(entries=entries, ways=ways)
    codes = []
    for signature in trace:
        state, _ = cache.lookup_or_insert(
            int(signature) if not isinstance(signature, np.ndarray)
            else signature)
        codes.append(state.code)
    return codes


# ---------------------------------------------------------------------------
# Classification: three backends vs the enum oracle
# ---------------------------------------------------------------------------
class TestCodedClassification:
    @given(st.integers(0, 2 ** 31), st.integers(1, 400),
           st.integers(1, 60), st.sampled_from([(16, 1), (16, 4), (8, 8)]))
    @settings(max_examples=20, deadline=None)
    def test_backends_match_enum_oracle(self, seed, num, pool, geometry):
        entries, ways = geometry
        rng = np.random.default_rng(seed)
        trace = rng.choice(rng.integers(0, 1 << 20, size=pool), size=num)
        expected = _enum_oracle_codes(trace, entries, ways)
        policy = SessionPolicy(entries=entries, ways=ways)
        for backend in BACKENDS:
            session = ReuseSession(policy, persistent=False,
                                   backend=backend)
            sim = session.classify(trace)
            assert sim.states.dtype == np.int8
            assert list(sim.states) == expected
            # The enum view survives as a derived representation.
            assert [s.code for s in sim.state_objects()] == expected

    @given(st.integers(0, 2 ** 31), st.integers(1, 150), st.integers(1, 25))
    @settings(max_examples=15, deadline=None)
    def test_multiword_backends_match_enum_oracle(self, seed, num, pool):
        rng = np.random.default_rng(seed)
        base = 1 << 70  # forces 2-word signatures, >62-bit territory
        values = [base + int(v) for v in rng.integers(0, pool, size=num)]
        words = ints_to_words(np.array(values, dtype=object), num_words=2)
        expected = _enum_oracle_codes(
            np.array(values, dtype=object), entries=16, ways=4)
        policy = SessionPolicy(entries=16, ways=4)
        for backend in BACKENDS:
            session = ReuseSession(policy, persistent=False,
                                   backend=backend)
            sim = session.classify(words)
            assert sim.states.dtype == np.int8
            assert list(sim.states) == expected

    def test_codes_are_the_documented_values(self):
        # HIT=0 / MAU=1 / MNU=2 is a wire format (snapshots, telemetry):
        # pin the numbers, not just the symmetry.
        sim = simulate_hitmap(np.array([7, 7, 7 + 4]), num_sets=4,
                              ways=1)
        assert (HIT_CODE, MAU_CODE, MNU_CODE) == (0, 1, 2)
        assert list(sim.states) == [MAU_CODE, HIT_CODE, MNU_CODE]
        hitmap = sim.to_hitmap()
        assert [s.code for s in hitmap.states_array()] \
            == list(sim.states)


# ---------------------------------------------------------------------------
# Serving probe paths
# ---------------------------------------------------------------------------
class TestProbePathCodes:
    @given(st.integers(0, 2 ** 31), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_frequency_admission_matches_scalar_mirror(self, seed,
                                                       min_frequency):
        """The frequency gate's codes equal a scalar enum mirror replay."""
        policy = SessionPolicy(entries=8, ways=2, signature_bits=16,
                               admission="frequency",
                               admission_min_frequency=min_frequency)
        session = ReuseSession(policy, persistent=True)
        mirror = MCache(entries=8, ways=2)
        resident: set[int] = set()
        seen: dict[int, int] = {}
        rng = np.random.default_rng(seed)
        for batch_index in range(6):
            signatures = rng.integers(0, 40, size=rng.integers(1, 30))
            uniques, first_index, inverse = unique_signatures(signatures)
            states, _ = session._probe_and_admit(
                uniques, first_index, inverse, payload_bytes=64,
                batch_index=batch_index)
            assert states.dtype == np.int8

            counts = np.bincount(inverse, minlength=len(uniques))
            expected = np.full(len(uniques), MNU_CODE, dtype=np.int8)
            admitted = []
            for position in range(len(uniques)):
                value = int(uniques[position])
                if value in resident:
                    expected[position] = HIT_CODE
                    continue
                total = seen.get(value, 0) + int(counts[position])
                if total >= min_frequency:
                    seen.pop(value, None)
                    admitted.append(position)
                else:
                    seen[value] = total
            order = sorted(admitted, key=lambda p: first_index[p])
            for position in order:
                state, _ = mirror.lookup_or_insert(int(uniques[position]))
                expected[position] = state.code
                if state.code == MAU_CODE:
                    resident.add(int(uniques[position]))
            np.testing.assert_array_equal(states, expected)

    def test_eviction_probe_never_rejects(self, rng):
        """With a replacement policy no probe outcome is ever MNU."""
        policy = SessionPolicy(entries=8, ways=2, signature_bits=16,
                               eviction="lru")
        session = ReuseSession(policy, persistent=True)
        for batch_index in range(8):
            signatures = rng.integers(0, 200, size=25)
            uniques, first_index, inverse = unique_signatures(signatures)
            states, entry_ids = session._probe_and_admit(
                uniques, first_index, inverse, payload_bytes=64,
                batch_index=batch_index)
            assert states.dtype == np.int8
            assert set(np.unique(states)) <= {HIT_CODE, MAU_CODE}
            assert (entry_ids >= 0).all()
        assert session.counters.evicted > 0

    def test_eviction_serve_stays_exact(self, rng):
        """End-to-end serve parity while lines are being recycled."""
        policy = SessionPolicy(entries=8, ways=2, signature_bits=14,
                               eviction="lru")
        session = ReuseSession(policy, persistent=True)
        weights = rng.normal(size=(6, 4))
        pool = rng.normal(size=(64, 6))
        for batch_index in range(10):
            vectors = pool[rng.integers(0, len(pool), size=20)]
            results, _ = session.serve(
                vectors, lambda rows, v=vectors: v[rows] @ weights,
                batch_index)
            np.testing.assert_array_equal(results, vectors @ weights)
        assert session.counters.cross_hits > 0
        assert session.counters.evicted > 0


# ---------------------------------------------------------------------------
# Fused gather->GEMM->scatter cache ride
# ---------------------------------------------------------------------------
class TestFusedRide:
    @given(st.integers(0, 2 ** 31), st.integers(1, 5),
           st.integers(1, 40), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_ride_groups_matches_per_group_ride(self, seed, num_groups,
                                                rows, pool):
        rng = np.random.default_rng(seed)
        groups = [rng.normal(size=(rows, 5)) for _ in range(num_groups)]
        weights = [rng.normal(size=(5, 3)) for _ in range(num_groups)]
        traces = [rng.choice(rng.integers(0, 1 << 16, size=pool),
                             size=rows) for _ in range(num_groups)]
        sims = simulate_hitmap_grouped(np.concatenate(traces),
                                       [rows] * num_groups,
                                       num_sets=4, ways=2)
        fused = ReuseSession.ride_groups(groups, weights, sims)
        for result, vectors, w, sim in zip(fused, groups, weights, sims):
            np.testing.assert_array_equal(
                result, ReuseSession.ride(vectors, w, sim))

    def test_ride_groups_all_hit_and_no_hit_groups(self, rng):
        # One group with zero hits, one fully redundant after its first
        # row — the degenerate fills of the gather/scatter bookkeeping.
        groups = [rng.normal(size=(4, 3)), rng.normal(size=(4, 3))]
        weights = [rng.normal(size=(3, 2)), rng.normal(size=(3, 2))]
        traces = [np.arange(4) * 7, np.full(4, 9)]
        sims = simulate_hitmap_grouped(np.concatenate(traces), [4, 4],
                                       num_sets=4, ways=2)
        fused = ReuseSession.ride_groups(groups, weights, sims)
        for result, vectors, w, sim in zip(fused, groups, weights, sims):
            np.testing.assert_array_equal(
                result, ReuseSession.ride(vectors, w, sim))

    @pytest.mark.parametrize("channel_group,in_channels",
                             [(1, 6), (2, 6), (3, 7)])
    def test_engine_fused_flag_bit_identity(self, rng, channel_group,
                                            in_channels):
        """``fused_ride=True`` output equals the per-group masked oracle."""
        base = dict(adaptive_signature_length=False,
                    adaptive_stoppage=False, batch_channel_groups=True,
                    conv_channel_group=channel_group, mcache_entries=64,
                    mcache_ways=4)
        x = rng.normal(size=(3, in_channels, 10, 10))
        outputs = {}
        for fused in (False, True):
            engine = ReuseEngine(MercuryConfig(fused_ride=fused, **base))
            conv = Conv2D(in_channels, 5, 3, padding=1, seed=11)
            conv.engine = engine
            outputs[fused] = conv.forward(x)
            stats = engine.mcache.stats
            outputs[fused, "stats"] = (stats.hits, stats.mau, stats.mnu)
        np.testing.assert_array_equal(outputs[False], outputs[True])
        assert outputs[False, "stats"] == outputs[True, "stats"]


# ---------------------------------------------------------------------------
# words_to_ints: vectorized, and confined to the oracle
# ---------------------------------------------------------------------------
class TestWordsToInts:
    @given(st.integers(0, 2 ** 31), st.integers(1, 30),
           st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_matches_python_reference(self, seed, num, num_words):
        from repro.core.rpq import WORD_BITS, words_to_ints
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 1 << 63, size=(num, num_words),
                             dtype=np.int64).astype(np.uint64)
        values = words_to_ints(words)
        assert values.dtype == object
        for row, value in zip(words, values):
            expected = 0
            for word in row:
                expected = (expected << WORD_BITS) | int(word)
            assert value == expected and isinstance(value, int)

    @pytest.mark.parametrize("backend", ["vectorized", "groupby"])
    def test_engine_path_never_expands_python_ints(self, monkeypatch,
                                                   backend, rng):
        """Only the scalar/differential oracle may pay the big-int cost."""
        import repro.core.rpq as rpq

        def forbidden(words):
            raise AssertionError("words_to_ints reached the engine path")

        monkeypatch.setattr(rpq, "words_to_ints", forbidden)
        # Multi-word classification through the session backends...
        values = [(1 << 70) + int(v) for v in rng.integers(0, 8, size=40)]
        words = ints_to_words(np.array(values, dtype=object), num_words=2)
        session = ReuseSession(SessionPolicy(entries=16, ways=4),
                               persistent=False, backend=backend)
        sim = session.classify(words)
        assert sim.states.dtype == np.int8
        # ... and a full >62-bit engine matmul, fused ride included.
        engine = ReuseEngine(MercuryConfig(
            signature_bits=70, max_signature_bits=80,
            adaptive_signature_length=False, adaptive_stoppage=False,
            conv_channel_group=2, mcache_entries=64, mcache_ways=4))
        conv = Conv2D(6, 4, 3, seed=5)
        conv.engine = engine
        conv.forward(rng.normal(size=(2, 6, 8, 8)))


# ---------------------------------------------------------------------------
# _prune_seen determinism
# ---------------------------------------------------------------------------
class TestPruneSeen:
    @staticmethod
    def _session() -> ReuseSession:
        return ReuseSession(SessionPolicy(entries=8, ways=2,
                                          admission="frequency"),
                            persistent=True)

    @staticmethod
    def _reference_survivors(seen: dict, capacity: int) -> list:
        """The old implementation: stable sort, drop the stalest k."""
        excess = len(seen) - capacity
        if excess <= 0:
            return list(seen)
        doomed = set(sorted(seen, key=lambda key: seen[key][1])[:excess])
        return [key for key in seen if key not in doomed]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_stable_sort_reference(self, seed):
        session = self._session()
        rng = np.random.default_rng(seed)
        capacity = session._seen_capacity
        # Heavy batch-index ties make the tie-break the interesting part.
        for key in range(capacity + 137):
            session._seen[key] = (1, int(rng.integers(0, 7)))
        expected = self._reference_survivors(dict(session._seen), capacity)
        session._prune_seen()
        assert list(session._seen) == expected
        assert len(session._seen) == capacity

    def test_all_ties_evict_in_insertion_order(self):
        session = self._session()
        capacity = session._seen_capacity
        total = capacity + 10
        for key in range(total):
            session._seen[key] = (1, 5)  # every entry the same batch
        session._prune_seen()
        assert list(session._seen) == list(range(10, total))

    def test_under_capacity_is_untouched(self):
        session = self._session()
        session._seen[1] = (1, 0)
        session._prune_seen()
        assert list(session._seen) == [1]
