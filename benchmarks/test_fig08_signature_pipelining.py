"""Figure 8: signature-calculation timing with and without pipelining.

Paper: for x-by-x input vectors a signature bit takes 2x cycles without
pipelining; with the ORg register the first bit takes 2x+1 cycles and
every further bit takes x cycles, i.e. a steady-state speedup of ~2x.
"""

from benchmarks.harness import print_header
from repro.accelerator import SignaturePipelineModel
from repro.analysis import format_table


def run_experiment():
    model = SignaturePipelineModel(vector_rows=3)
    rows = []
    for signatures in (1, 3, 10, 100, 1000):
        rows.append([signatures,
                     model.speedup_from_pipelining(signatures, 20)])
    return model, rows


def test_fig08_signature_pipelining(benchmark):
    model, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 8 — pipelined signature calculation "
                 "(3x3 vectors, 20-bit signatures)")
    print(format_table(["signatures per PE set", "speedup from pipelining"],
                       rows))
    print(f"steady-state cycles/bit (unpipelined, pipelined): "
          f"{model.steady_state_cycles_per_bit()}")

    # Matches the worked example: Sig1 bit in 7 cycles, Sig2 bit 3 later.
    from repro.accelerator import pipelined_signature_cycles
    assert pipelined_signature_cycles(1, 1, 3) == 7
    assert pipelined_signature_cycles(2, 1, 3) == 10
    # Steady state approaches 2x.
    assert rows[-1][1] > 1.9
