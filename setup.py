"""Setup shim so `pip install -e .` works without the wheel package.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`--no-use-pep517`) in offline environments
where the `wheel` package is unavailable.
"""

from setuptools import setup

setup()
