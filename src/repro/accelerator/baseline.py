"""Baseline (no-reuse) accelerator model.

The baseline is the same Eyeriss-style array with the same dataflow but
without signature generation, MCACHE or Hitmap: every dot product is
executed.  Its per-layer cycles are what Figure 14b/14c normalise
against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.cost_model import CycleCostModel
from repro.accelerator.dataflow import Dataflow, RowStationary
from repro.core.stats import ReuseStats


@dataclass
class BaselineLayerReport:
    layer: str
    phase: str
    cycles: float
    macs: int


class BaselineAccelerator:
    """Computes baseline cycle counts from per-layer workload records."""

    def __init__(self, num_pes: int = 168, dataflow: Dataflow | None = None):
        self.dataflow = dataflow or RowStationary()
        self.cost_model = CycleCostModel(num_pes=num_pes, dataflow=self.dataflow,
                                         pipelined_signatures=False,
                                         asynchronous=False)

    def layer_reports(self, stats: ReuseStats) -> list[BaselineLayerReport]:
        reports = []
        for record in stats.all_records():
            reports.append(BaselineLayerReport(
                layer=record.layer,
                phase=record.phase,
                cycles=self.cost_model.baseline_cycles(record),
                macs=record.baseline_macs))
        return reports

    def total_cycles(self, stats: ReuseStats) -> float:
        return sum(report.cycles for report in self.layer_reports(stats))

    def total_macs(self, stats: ReuseStats) -> int:
        return sum(report.macs for report in self.layer_reports(stats))
