"""2D convolution implemented via im2col.

The forward pass extracts *input vectors* (im2col rows) and multiplies
them with the filter matrix — exactly the dot products MERCURY reuses.
When a compute engine is attached (``self.engine``), both the forward
product and the input-gradient product of the backward pass are routed
through it so the reuse engine can group similar vectors by signature.
"""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.init import default_rng, he_normal
from repro.nn.module import Module, Parameter


class Conv2D(Module):
    """A standard 2D convolution layer.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of input and output feature maps.
    kernel_size:
        Square filter size ``k`` (the paper's examples use 3x3).
    stride, padding:
        Convolution stride and zero padding.
    bias:
        Whether to add a per-output-channel bias.
    seed:
        Seed for weight initialisation.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 seed: int | None = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        rng = default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        weight = he_normal((out_channels, in_channels, kernel_size, kernel_size),
                           fan_in, rng)
        self.weight = Parameter(weight, name="conv_weight")
        self.bias = Parameter(np.zeros(out_channels), name="conv_bias") if bias else None

        self._cache = None
        # (weight array, its 2-D (out_channels, features) view).  The
        # optimizers update parameter arrays in place, so the view stays
        # valid across steps; it is rebuilt only if ``weight.value`` is
        # rebound to a different array.
        self._weight_matrix_cache: tuple | None = None

    # ------------------------------------------------------------------
    def output_shape(self, height: int, width: int) -> tuple:
        """Spatial output shape for a given input height/width."""
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return out_h, out_w

    def _channel_group_size(self) -> int | None:
        """Input-channel granularity of signature computation.

        The paper recomputes signatures whenever a new channel is
        processed (§III-B); the reuse engine's configuration controls how
        many channels are hashed together.  Engines without that setting
        (exact/capture engines) see the whole cross-channel patch.
        """
        config = getattr(self.engine, "config", None)
        group = getattr(config, "conv_channel_group", None)
        if group is None:
            return None
        return max(min(int(group), self.in_channels), 1)

    def _weight_matrix(self) -> np.ndarray:
        """The filters as a cached ``(out_channels, features)`` view.

        Forward multiplies input vectors by its transpose, backward by
        the matrix itself; both orientations are zero-copy views of the
        parameter array, so no per-call reshape/transpose allocation
        remains on the hot path.
        """
        value = self.weight.value
        cache = self._weight_matrix_cache
        if cache is None or cache[0] is not value:
            flat = value.reshape(self.out_channels, -1)
            if flat.base is not value:
                # reshape copied (non-contiguous weights, e.g. rebound
                # to a transposed array): caching the copy would freeze
                # the layer against in-place optimizer updates, so
                # rebuild per call instead.
                return flat
            cache = (value, flat)
            self._weight_matrix_cache = cache
        return cache[1]

    def _engine_forward(self, cols: np.ndarray, weight_matrix: np.ndarray) -> np.ndarray:
        """Route the forward dot products through the engine, per channel group."""
        group = self._channel_group_size()
        if group is None or group >= self.in_channels:
            return self.engine.matmul(cols, weight_matrix,
                                      layer=self.layer_name, phase="forward")

        patch = self.kernel_size * self.kernel_size
        num_vectors = cols.shape[0]
        cols3d = cols.reshape(num_vectors, self.in_channels, patch)
        weights3d = weight_matrix.reshape(self.in_channels, patch,
                                          self.out_channels)
        group_cols = []
        group_weights = []
        for start in range(0, self.in_channels, group):
            stop = min(start + group, self.in_channels)
            group_cols.append(cols3d[:, start:stop].reshape(num_vectors, -1))
            group_weights.append(
                weights3d[start:stop].reshape(-1, self.out_channels))

        batched = (getattr(getattr(self.engine, "config", None),
                           "batch_channel_groups", False)
                   and hasattr(self.engine, "matmul_groups"))
        if batched:
            results = self.engine.matmul_groups(group_cols, group_weights,
                                                layer=self.layer_name,
                                                phase="forward")
        else:
            results = (self.engine.matmul(vectors, weights,
                                          layer=self.layer_name,
                                          phase="forward")
                       for vectors, weights in zip(group_cols, group_weights))
        out = np.zeros((num_vectors, self.out_channels), dtype=np.float64)
        for result in results:
            out += result
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h, out_w = self.output_shape(height, width)

        cols = im2col(x, self.kernel_size, self.kernel_size,
                      self.stride, self.padding)
        weight_matrix = self._weight_matrix().T

        if self.engine is not None:
            out = self._engine_forward(cols, weight_matrix)
        else:
            out = cols @ weight_matrix

        if self.bias is not None:
            # Both branches above return a fresh array, so the bias add
            # can be in place.
            out += self.bias.value

        self._cache = (x.shape, cols)
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, cols = self._cache
        batch = grad_output.shape[0]

        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)

        if self.bias is not None:
            self.bias.grad += grad_matrix.sum(axis=0)

        # Weight gradient: convolution of output gradients with saved inputs
        # (equation (1) in the paper).  Computed directly in the filter
        # orientation so the reshape back to 4-D is a view, not a copy.
        weight_grad = grad_matrix.T @ cols
        self.weight.grad += weight_grad.reshape(self.weight.value.shape)

        # Input gradient: each row of grad_matrix is a *gradient vector*;
        # MERCURY reuses results among similar gradient vectors during
        # backward propagation (equation (2) / §III-C2).
        weight_matrix = self._weight_matrix()
        if self.engine is not None:
            grad_cols = self.engine.matmul(grad_matrix, weight_matrix,
                                           layer=self.layer_name, phase="backward")
        else:
            grad_cols = grad_matrix @ weight_matrix

        grad_input = col2im(grad_cols, input_shape, self.kernel_size,
                            self.kernel_size, self.stride, self.padding)
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Conv2D({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")
