"""Serving sweep: model × traffic × cache policy × shards × admission grid.

The third sweep family, next to the cycle-model sweep
(:mod:`repro.analysis.sweep`) and the training-accuracy sweep
(:mod:`repro.analysis.functional_sweep`): each :class:`ServingPoint`
names a model, a traffic pattern from the load generator, a cache
configuration, a micro-batch size, a worker-shard count, an admission
policy and the tiering axes (replacement policy, hot-key replication
top-k, shared-L2 tier); evaluating it replays the deterministic trace
through a (possibly sharded)
:class:`~repro.serving.server.InferenceServer` and records

* throughput and p50/p95/p99 latency (simulated queue wait + measured
  compute),
* request- and vector-level hit statistics, plus per-shard hit rates
  and the request-balance factor of the consistent-hash routing,
* output exactness against the engine-less per-request forward oracle
  (bit-identical fraction and maximum absolute deviation).

Rows share the :class:`~repro.analysis.grid.GridResults` JSON envelope
under the ``serving-sweep`` schema marker, so serving files cannot be
mistaken for cycle or functional sweeps.  ``repro-sweep`` (the
``console_scripts`` entry) fronts :func:`main`.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.analysis.functional_sweep import derive_seed
from repro.analysis.grid import GridResults, expand_grid, point_row, run_grid
from repro.core.eviction import EVICTION_POLICIES
from repro.core.session import ADMISSION_POLICIES
from repro.models.registry import MODEL_NAMES, build_model, get_spec
from repro.serving.batcher import BatcherConfig
from repro.serving.engine import ServingPolicy
from repro.serving.loadgen import (TRAFFIC_PATTERNS, TrafficConfig,
                                   build_request_pool, generate_trace,
                                   trace_summary)
from repro.serving.server import InferenceServer
from repro.serving.tiering import SharedL2Cache

# Cache-policy presets — the sweep's policy axis.  "exact" modes verify
# payload equality before reuse; "trust" reuses on signature match
# alone (the paper's approximate semantics, measured by the exactness
# columns).
CACHE_POLICIES = {
    "none": dict(request_cache=False, vector_cache=False),
    "request_exact": dict(request_cache=True, vector_cache=False,
                          exact_check=True, compute="per_request"),
    "request_batched": dict(request_cache=True, vector_cache=False,
                            exact_check=True, compute="batched"),
    "vector_exact": dict(request_cache=False, vector_cache=True,
                         exact_check=True, compute="batched"),
    "vector_trust": dict(request_cache=False, vector_cache=True,
                         exact_check=False, compute="batched"),
    "layered": dict(request_cache=True, vector_cache=True,
                    exact_check=True, compute="batched"),
}

SERVING_RESULT_KEYS = frozenset({
    "model", "traffic", "cache_policy", "batch_size", "num_requests",
    "pool_size", "entries", "ways", "ttl_batches", "signature_bits",
    "seed",
    "throughput_rps", "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
    "hit_rate", "request_hit_rate", "vector_hit_rate",
    "batches", "mean_batch_size",
    "shards", "admission", "shard_balance", "simulated_makespan_s",
    "parallel_workers", "measured_makespan_s",
    "eviction", "replicate_top", "l2", "l2_hit_rate", "evicted",
    "replicated", "rotate_every",
    "distinct_payloads", "top_key_share",
    "bit_identical_fraction", "max_abs_deviation",
    "compute_time_s", "elapsed_s",
    "telemetry", "controller", "telemetry_events", "telemetry_dropped",
    "controller_decisions", "latency_hist_p50_ms", "latency_hist_p99_ms",
})

# Derived-seed streams (mirrors functional_sweep's convention).
MODEL_STREAM, POOL_STREAM, TRACE_STREAM = 0, 1, 2


@dataclass(frozen=True)
class ServingPoint:
    """One serving scenario."""

    model: str = "squeezenet"
    traffic: str = "zipfian"
    cache_policy: str = "request_exact"
    batch_size: int = 8
    num_requests: int = 200
    pool_size: int = 24
    entries: int = 4096
    ways: int = 16
    ttl_batches: int | None = None
    signature_bits: int = 32
    image_size: int = 12
    max_wait_ms: float = 1.0
    shards: int = 1
    admission: str = "always"
    # Replacement policy of the persistent caches ("none" = the paper's
    # no-replacement MNU behaviour).
    eviction: str = "none"
    # Hot-key replication: replicate the top-k hottest signatures'
    # cached rows across shards (0 = off; needs a request cache).
    replicate_top: int = 0
    # Back the per-shard L1 request caches with a shared in-memory L2
    # (adds the ``l2_hit_rate`` column).
    l2: bool = False
    # Zipfian hot-set churn period (0 = stationary); see
    # :class:`~repro.serving.loadgen.TrafficConfig.zipf_rotate_every`.
    rotate_every: int = 0
    # 0 = in-process replay (simulated makespan); == shards = run the
    # shards as real worker processes and measure the wall-clock
    # makespan (the ``measured_makespan_s`` column).
    parallel_workers: int = 0
    # Observability axes: ``telemetry`` attaches an event bus + metrics
    # registry to the replay (adds the telemetry_* and latency_hist_*
    # columns); ``controller`` additionally runs the online adaptive
    # policy controller over the telemetry windows.
    telemetry: bool = False
    controller: bool = False
    seed: int = 0

    def __post_init__(self):
        get_spec(self.model)  # rejects unknown models early
        if self.traffic not in TRAFFIC_PATTERNS:
            raise ValueError(f"unknown traffic {self.traffic!r}; "
                             f"choose from {TRAFFIC_PATTERNS}")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(f"unknown cache_policy {self.cache_policy!r}; "
                             f"choose from {sorted(CACHE_POLICIES)}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.num_requests <= 0 or self.pool_size <= 0:
            raise ValueError("num_requests and pool_size must be positive")
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission {self.admission!r}; "
                             f"choose from {ADMISSION_POLICIES}")
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction {self.eviction!r}; "
                             f"choose from {EVICTION_POLICIES}")
        if self.replicate_top < 0:
            raise ValueError("replicate_top must be >= 0")
        if self.rotate_every < 0:
            raise ValueError("rotate_every must be >= 0")
        if self.parallel_workers not in (0, self.shards):
            raise ValueError(
                "parallel_workers must be 0 (in-process replay) or equal "
                "to shards (each shard becomes one worker process)")
        if self.parallel_workers and (self.replicate_top or self.l2):
            raise ValueError(
                "replicate_top and l2 need shards that share memory; "
                "they cannot combine with parallel_workers")
        if (self.replicate_top or self.l2) \
                and not CACHE_POLICIES[self.cache_policy]["request_cache"]:
            raise ValueError("replicate_top and l2 act on the request "
                             "cache; pick a request-caching policy")
        if self.controller and not self.telemetry:
            raise ValueError("the adaptive controller consumes telemetry "
                             "windows; set telemetry=True")
        if self.controller and self.parallel_workers:
            raise ValueError("the adaptive controller needs the "
                             "in-process server; it cannot combine with "
                             "parallel_workers")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")


def build_serving_grid(models=("squeezenet",),
                       traffics=TRAFFIC_PATTERNS,
                       cache_policies=("none", "request_exact",
                                       "vector_trust"),
                       batch_sizes=(8,), shard_counts=(1,),
                       admissions=("always",), evictions=("none",),
                       replicate_tops=(0,), l2_modes=(False,),
                       seeds=(0,), parallel=False,
                       **fixed) -> list[ServingPoint]:
    """Cross product of the serving scenario axes.

    With ``parallel`` every multi-shard point also runs its shards as
    real worker processes (``parallel_workers == shards``), adding the
    measured-makespan column next to the simulated one.  Tiering axes
    (eviction / replication / L2) that need a request cache are skipped
    for presets without one instead of raising, so mixed grids stay
    expressible.
    """
    combos = expand_grid({"model": models, "traffic": traffics,
                          "cache_policy": cache_policies,
                          "batch_size": batch_sizes,
                          "shards": shard_counts,
                          "admission": admissions,
                          "eviction": evictions,
                          "replicate_top": replicate_tops,
                          "l2": l2_modes, "seed": seeds})
    points = []
    for combo in combos:
        tiered = combo["replicate_top"] or combo["l2"]
        if tiered and not \
                CACHE_POLICIES[combo["cache_policy"]]["request_cache"]:
            continue
        points.append(ServingPoint(
            **combo,
            parallel_workers=combo["shards"]
            if parallel and combo["shards"] > 1 and not tiered else 0,
            **fixed))
    return points


def policy_for(point: ServingPoint) -> ServingPolicy:
    return ServingPolicy(entries=point.entries, ways=point.ways,
                         ttl_batches=point.ttl_batches,
                         signature_bits=point.signature_bits,
                         admission=point.admission,
                         eviction=point.eviction,
                         replicate_top=point.replicate_top,
                         **CACHE_POLICIES[point.cache_policy])


def telemetry_for(point: ServingPoint):
    """The observability bundle a point asks for (``None`` when off)."""
    if not point.telemetry:
        return None
    from repro.obs import AdaptivePolicyController, Telemetry
    return Telemetry(
        controller=AdaptivePolicyController() if point.controller
        else None,
        seeds={"model": derive_seed(point.seed, MODEL_STREAM),
               "pool": derive_seed(point.seed, POOL_STREAM),
               "trace": derive_seed(point.seed, TRACE_STREAM)})


def serving_pieces(point: ServingPoint,
                   l2_store: SharedL2Cache | None = None,
                   telemetry=None):
    """(model, pool, trace, server) for one point, fully seed-derived.

    ``l2_store`` substitutes a caller-built L2 (e.g. a disk-backed one
    from ``repro-serve --l2 DIR``) for the in-memory tier the ``l2``
    axis would otherwise create; ``telemetry`` likewise substitutes a
    caller-built observability bundle (e.g. one with an audit
    directory) for the plain one the ``telemetry`` axis creates.
    """
    pool = build_request_pool(point.model, pool_size=point.pool_size,
                              image_size=point.image_size,
                              seed=derive_seed(point.seed, POOL_STREAM))
    trace = generate_trace(
        TrafficConfig(pattern=point.traffic,
                      num_requests=point.num_requests,
                      zipf_rotate_every=point.rotate_every,
                      seed=derive_seed(point.seed, TRACE_STREAM)),
        len(pool))
    spec = get_spec(point.model)
    num_outputs = 4 if spec.kind == "cnn" else None
    model = build_model(point.model, num_classes=num_outputs,
                        seed=derive_seed(point.seed, MODEL_STREAM))
    server = InferenceServer(
        model, policy_for(point),
        BatcherConfig(max_batch_size=point.batch_size,
                      max_wait_s=point.max_wait_ms / 1e3),
        shards=point.shards,
        l2=l2_store if l2_store is not None
        else (SharedL2Cache() if point.l2 else None),
        telemetry=telemetry if telemetry is not None
        else telemetry_for(point))
    return model, pool, trace, server


def evaluate_serving_point(point: ServingPoint) -> dict:
    """Replay one scenario and measure throughput, latency, exactness.

    Points with ``parallel_workers`` run the shards as real worker
    processes (:class:`~repro.serving.parallel.ParallelInferenceServer`)
    and record the measured wall-clock makespan next to the in-process
    replay's simulated one.  Such points must evaluate in-process
    (``processes=0``): pool children are daemonic and cannot spawn the
    worker processes themselves.
    """
    start = time.perf_counter()
    model, pool, trace, server = serving_pieces(point)

    if point.parallel_workers:
        import multiprocessing

        from repro.serving.parallel import ParallelInferenceServer
        if multiprocessing.current_process().daemon:
            raise RuntimeError(
                "parallel_workers points cannot run inside a sweep "
                "worker pool (daemonic children cannot spawn); rerun "
                "with processes=0")
        parallel = ParallelInferenceServer(
            model, policy_for(point),
            BatcherConfig(max_batch_size=point.batch_size,
                          max_wait_s=point.max_wait_ms / 1e3),
            workers=point.parallel_workers,
            telemetry=server.telemetry)
        with parallel:
            outputs, report = parallel.replay(trace, pool)
        compute_time_s = parallel._compute_time_s
    else:
        outputs, report = server.replay(trace, pool)
        compute_time_s = server._compute_time_s
    oracle = server.oracle_outputs(pool)

    identical = 0
    max_deviation = 0.0
    for request, output in zip(trace, outputs):
        reference = oracle[request.pool_index]
        if np.array_equal(output, reference):
            identical += 1
        deviation = float(np.max(np.abs(output - reference)))
        max_deviation = max(max_deviation, deviation)

    shape = trace_summary(trace)
    shard_requests = [row["requests"] for row in report.shard_stats]
    mean_share = sum(shard_requests) / len(shard_requests) \
        if shard_requests else 0.0
    row = point_row(point, {
        "throughput_rps": float(report.throughput_rps),
        "latency_p50_ms": float(report.latency_p50_ms),
        "latency_p95_ms": float(report.latency_p95_ms),
        "latency_p99_ms": float(report.latency_p99_ms),
        "hit_rate": float(report.hit_rate),
        "request_hit_rate": float(
            report.request_cache.get("hit_rate", 0.0)),
        "vector_hit_rate": float(report.vector_cache.get("hit_rate", 0.0)),
        "batches": int(report.batches),
        "mean_batch_size": float(report.mean_batch_size),
        "distinct_payloads": int(shape["distinct_payloads"]),
        "top_key_share": float(shape["top_key_share"]),
        "bit_identical_fraction": identical / len(trace),
        "max_abs_deviation": max_deviation,
        "compute_time_s": float(compute_time_s),
        "layer_stats": report.layer_stats,
        # Shard-level columns: per-shard hit rates and how evenly the
        # consistent-hash routing spread the requests (1.0 = perfectly
        # balanced; the heaviest shard's requests over the fair share).
        "shard_hit_rates": [float(row["hit_rate"])
                            for row in report.shard_stats],
        "shard_requests": [int(count) for count in shard_requests],
        "shard_balance": float(max(shard_requests) / mean_share)
        if mean_share else 1.0,
        "simulated_makespan_s": float(report.simulated_makespan_s),
        "measured_makespan_s": float(report.measured_makespan_s),
        "recoveries": int(report.recoveries),
        # Tiering columns: replacement-policy evictions, cross-shard
        # replica pushes, and the shared-L2 hit rate (0.0 without L2).
        "evicted": int(report.request_cache.get("evicted", 0)),
        "replicated": int(report.request_cache.get("replicated", 0)),
        "l2_hit_rate": float(report.l2.get("hit_rate", 0.0)),
        # Observability columns: streaming-histogram percentile reads
        # (0.0 with no latencies) and the event-bus digest (all zero
        # when the telemetry axis is off).
        "latency_hist_p50_ms": float(report.latency_hist_p50_ms),
        "latency_hist_p99_ms": float(report.latency_hist_p99_ms),
        "telemetry_events": int(report.telemetry.get("events", 0)),
        "telemetry_dropped": int(report.telemetry.get("dropped", 0)),
        "controller_decisions": int(report.telemetry.get("decisions", 0)),
    }, started=start)
    return row


@dataclass
class ServingSweepResults(GridResults):
    """Aggregated serving rows; same JSON envelope family as the others."""

    schema: ClassVar[str] = "serving-sweep"
    result_keys: ClassVar[frozenset] = SERVING_RESULT_KEYS

    # -- summaries ------------------------------------------------------
    def hit_rate_by_policy(self) -> dict[str, float]:
        return self.grouped_mean("cache_policy", "hit_rate")

    def summary(self) -> dict:
        summary = self.base_summary()
        if not self.rows:
            return summary
        summary.update({
            "mean_hit_rate": self.column_mean("hit_rate"),
            "hit_rate_by_policy": self.hit_rate_by_policy(),
            "mean_throughput_rps": self.column_mean("throughput_rps"),
            "worst_p99_ms": self.column_max("latency_p99_ms"),
            "max_abs_deviation": self.column_max("max_abs_deviation"),
            "worst_shard_balance": self.column_max("shard_balance"),
        })
        return summary


def run_serving_sweep(points, processes: int | None = None
                      ) -> ServingSweepResults:
    """Evaluate a serving grid through the shared fan-out executor."""
    rows, elapsed = run_grid(list(points), evaluate_serving_point,
                             processes=processes)
    return ServingSweepResults(rows=rows, elapsed_s=elapsed)


# ----------------------------------------------------------------------
# CLI (the ``repro-sweep`` console script)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=["squeezenet"],
                        choices=list(MODEL_NAMES), metavar="MODEL")
    parser.add_argument("--traffics", nargs="+",
                        default=list(TRAFFIC_PATTERNS),
                        choices=list(TRAFFIC_PATTERNS), metavar="PATTERN")
    parser.add_argument("--cache-policies", nargs="+",
                        default=["none", "request_exact", "vector_trust"],
                        choices=sorted(CACHE_POLICIES), metavar="POLICY")
    parser.add_argument("--batch-sizes", nargs="+", type=int, default=[8])
    parser.add_argument("--shards", nargs="+", type=int, default=[1],
                        help="worker-shard counts to sweep")
    parser.add_argument("--admissions", nargs="+", default=["always"],
                        choices=list(ADMISSION_POLICIES), metavar="POLICY",
                        help="cache admission policies to sweep")
    parser.add_argument("--evictions", nargs="+", default=["none"],
                        choices=list(EVICTION_POLICIES), metavar="POLICY",
                        help="cache replacement policies to sweep")
    parser.add_argument("--replicate-tops", nargs="+", type=int,
                        default=[0], metavar="K",
                        help="hot-key replication top-k values to sweep "
                             "(0 = off)")
    parser.add_argument("--l2", action="store_true",
                        help="also sweep request-cache points with a "
                             "shared L2 tier")
    parser.add_argument("--entries", type=int, default=4096,
                        help="cache entries per shard")
    parser.add_argument("--ways", type=int, default=16,
                        help="cache set associativity")
    parser.add_argument("--rotate-every", type=int, default=0,
                        help="zipfian hot-set churn period in requests "
                             "(0 = stationary popularity)")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach the event bus + metrics registry "
                             "to every point (fills the telemetry_* "
                             "and latency_hist_* columns)")
    parser.add_argument("--controller", action="store_true",
                        help="also run the online adaptive policy "
                             "controller per point (implies "
                             "--telemetry; needs the in-process "
                             "replay, so it rejects --parallel)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--pool-size", type=int, default=24)
    parser.add_argument("--seeds", nargs="+", type=int, default=[0])
    parser.add_argument("--parallel", action="store_true",
                        help="run multi-shard points as real worker "
                             "processes (adds measured_makespan_s)")
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (0 = in-process)")
    parser.add_argument("--output", default=None,
                        help="write the JSON envelope to this path")
    args = parser.parse_args(argv)

    if args.controller and args.parallel:
        parser.error("--controller mutates live policy state, which "
                     "needs the in-process replay; drop --parallel")
    points = build_serving_grid(models=args.models, traffics=args.traffics,
                                cache_policies=args.cache_policies,
                                batch_sizes=args.batch_sizes,
                                shard_counts=args.shards,
                                admissions=args.admissions,
                                evictions=args.evictions,
                                replicate_tops=args.replicate_tops,
                                l2_modes=(False, True) if args.l2
                                else (False,),
                                seeds=args.seeds,
                                parallel=args.parallel,
                                telemetry=args.telemetry
                                or args.controller,
                                controller=args.controller,
                                num_requests=args.requests,
                                pool_size=args.pool_size,
                                entries=args.entries, ways=args.ways,
                                rotate_every=args.rotate_every)
    print(f"serving sweep: {len(points)} points")
    processes = args.processes
    if any(point.parallel_workers for point in points):
        # Worker processes cannot be spawned from daemonic pool
        # children; parallel points force the in-process executor.
        if processes not in (None, 0):
            print("note: --parallel forces --processes 0 (sweep pool "
                  "children cannot spawn worker processes)")
        processes = 0
    results = run_serving_sweep(points, processes=processes)

    from repro.analysis.reporting import render_results
    print(render_results(results))
    summary = results.summary()
    print(f"\nmean hit rate {summary['mean_hit_rate']:.2%}, "
          f"mean throughput {summary['mean_throughput_rps']:.0f} rps, "
          f"worst p99 {summary['worst_p99_ms']:.2f} ms")
    if args.output:
        results.save(args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
