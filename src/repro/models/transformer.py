"""Scaled Transformer for the synthetic translation task.

The paper's transformer is trained on Multi30k translation; here an
encoder-only model predicts the target token at every source position
(the synthetic task is token-wise, see
:mod:`repro.data.synthetic_text`), which exercises the same layer types
— embeddings, multi-head attention and position-wise feed-forward — that
MERCURY accelerates in §III-C3/C4.
"""

from __future__ import annotations

import numpy as np

from repro.models.blocks import PositionalEncoding, TransformerEncoderBlock
from repro.nn import Embedding, Linear
from repro.nn.module import Module, assign_unique_layer_names


class TransformerModel(Module):
    """Embedding + positional encoding + encoder blocks + vocab head."""

    def __init__(self, vocab_size: int = 64, max_length: int = 16,
                 embed_dim: int = 32, num_heads: int = 4, ff_dim: int = 64,
                 num_blocks: int = 2, seed: int = 0):
        super().__init__()
        self.vocab_size = vocab_size
        self.embedding = Embedding(vocab_size, embed_dim, seed=seed)
        self.positional = PositionalEncoding(max_length, embed_dim)
        self.encoder_blocks = [
            TransformerEncoderBlock(embed_dim, num_heads, ff_dim,
                                    seed=seed + 100 * (index + 1))
            for index in range(num_blocks)
        ]
        self.head = Linear(embed_dim, vocab_size, seed=seed + 999)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        x = self.positional(self.embedding(token_ids))
        for block in self.encoder_blocks:
            x = block(x)
        return self.head(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        for block in reversed(self.encoder_blocks):
            grad = block.backward(grad)
        grad = self.positional.backward(grad)
        return self.embedding.backward(grad)

    def predict(self, token_ids: np.ndarray) -> np.ndarray:
        """Greedy per-position prediction (used for BLEU evaluation)."""
        logits = self.forward(token_ids)
        return np.argmax(logits, axis=-1)


def build_transformer(vocab_size: int = 64, max_length: int = 16,
                      seed: int = 0) -> TransformerModel:
    model = TransformerModel(vocab_size=vocab_size, max_length=max_length,
                             seed=seed)
    return assign_unique_layer_names(model, prefix="transformer")
