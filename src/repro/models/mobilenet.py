"""Scaled MobileNet-V2 (separable convolution stacks)."""

from __future__ import annotations

import numpy as np

from repro.models.blocks import ConvBNReLU, SeparableBlock
from repro.nn import GlobalAvgPool2D, Linear
from repro.nn.module import Module, assign_unique_layer_names


class MobileNetV2(Module):
    """Stem + five separable blocks + classifier."""

    def __init__(self, num_classes: int = 8, in_channels: int = 3, seed: int = 0):
        super().__init__()
        self.stem = ConvBNReLU(in_channels, 8, 3, 2, 1, seed=seed)
        self.blocks = [
            SeparableBlock(8, 12, stride=1, seed=seed + 1),
            SeparableBlock(12, 16, stride=2, seed=seed + 3),
            SeparableBlock(16, 16, stride=1, seed=seed + 5),
            SeparableBlock(16, 24, stride=2, seed=seed + 7),
            SeparableBlock(24, 32, stride=1, seed=seed + 9),
        ]
        self.pool = GlobalAvgPool2D()
        self.head = Linear(32, num_classes, seed=seed + 11)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        return self.head(self.pool(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.head.backward(grad_output))
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem.backward(grad)


def build_mobilenet_v2(num_classes: int = 8, in_channels: int = 3,
                       seed: int = 0) -> MobileNetV2:
    model = MobileNetV2(num_classes, in_channels, seed)
    return assign_unique_layer_names(model, prefix="mobilenet_v2")
