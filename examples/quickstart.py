"""Quickstart: train a small CNN with MERCURY and report the reuse.

Run with:  python examples/quickstart.py
"""

from repro import MercuryConfig, ReuseEngine
from repro.accelerator import MercurySimulator
from repro.data import ClusteredImageDataset, ImageDatasetConfig, train_test_split
from repro.models import build_model
from repro.training import Trainer, TrainingConfig


def main() -> None:
    # 1. A small labelled image dataset with the spatial similarity
    #    MERCURY exploits (a stand-in for ImageNet crops).
    dataset = ClusteredImageDataset(ImageDatasetConfig(num_classes=4,
                                                       samples_per_class=16,
                                                       image_size=24))
    xtr, ytr, xte, yte = train_test_split(dataset.images, dataset.labels,
                                          test_fraction=0.25, seed=0)

    # 2. A model from the zoo and a MERCURY reuse engine.  Attaching the
    #    engine routes every dot product through RPQ signatures, the
    #    MCACHE and the Hitmap, skipping computations for similar vectors.
    # Note: at this miniature scale the layers have few filters, so the
    # §III-D stoppage policy disables similarity detection where the RPQ
    # cost would outweigh the saving — exactly what it is for.  The
    # paper-scale projection at the end shows what the same mechanism is
    # worth at the original layer dimensions.
    model = build_model("squeezenet", num_classes=4, seed=1)
    config = MercuryConfig(signature_bits=20)
    engine = ReuseEngine(config)

    trainer = Trainer(model,
                      TrainingConfig(epochs=3, batch_size=8,
                                     learning_rate=0.01, optimizer="adam"),
                      engine=engine)
    result = trainer.fit(xtr, ytr, validation=(xte, yte))

    print("epoch losses:", [round(loss, 3) for loss in result.epoch_losses])
    print(f"validation accuracy: {result.final_validation_accuracy:.2f}")

    # 3. What did MERCURY reuse?
    summary = engine.stats.summary()
    print(f"vectors processed: {summary['total_vectors']}")
    print(f"hit fraction: {summary['hit_fraction']:.2%}")
    print(f"MAC reduction: {summary['mac_reduction']:.2%}")
    print(f"layers with detection disabled: {len(engine.disabled_layers())}")

    # 4. What would that be worth on the accelerator?  Once on the
    #    recorded (scaled) workload, and once projected onto the real
    #    SqueezeNet layer dimensions the paper evaluates.
    report = MercurySimulator(config).simulate(engine.stats, "squeezenet")
    print(f"cycle-model speedup on this scaled workload: {report.speedup:.2f}x "
          f"(signature share {report.signature_fraction:.1%})")

    from repro.accelerator.workloads import build_workload, workload_to_stats
    paper_scale = MercurySimulator(config).simulate(
        workload_to_stats(build_workload("squeezenet")), "squeezenet",
        apply_analytic_stoppage=True)
    print(f"paper-scale SqueezeNet projection: {paper_scale.speedup:.2f}x "
          f"(paper geomean across 12 models: 1.97x)")


if __name__ == "__main__":
    main()
