"""Cycle cost model.

The cost model converts one :class:`~repro.core.stats.LayerReuseStats`
record (what the functional engine did for one layer and phase) into
cycle counts:

* **baseline** — every dot product executed on the plain accelerator;
* **MERCURY layer computation** — dot products of MAU/MNU vectors plus
  the per-vector Hitmap-check overhead and, for the synchronous design,
  a load-imbalance penalty (fast PE sets waiting for the slowest);
* **MERCURY signature generation** — the convolution-formulated RPQ
  cost, pipelined or not, charged only for vectors whose signatures were
  actually generated (reloaded backward signatures are free).

All quantities are in MAC-unit cycles of the same PE array, so the
speedup of Figure 14c is simply ``baseline_total / mercury_total``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.dataflow import Dataflow, RowStationary
from repro.accelerator.signature_pipeline import (
    pipelined_signature_cycles,
    unpipelined_signature_cycles,
)
from repro.core.stats import LayerReuseStats


@dataclass
class LayerCycles:
    """Cycle breakdown of one (layer, phase)."""

    layer: str
    phase: str
    baseline_cycles: float
    compute_cycles: float
    signature_cycles: float
    detection_on: bool

    @property
    def mercury_cycles(self) -> float:
        return self.compute_cycles + self.signature_cycles

    @property
    def speedup(self) -> float:
        if self.mercury_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.mercury_cycles


class CycleCostModel:
    """Analytical cycle model for one accelerator configuration.

    Parameters
    ----------
    num_pes:
        Number of processing elements (the paper uses 168).
    dataflow:
        A :class:`~repro.accelerator.dataflow.Dataflow`; defaults to
        row-stationary.
    pipelined_signatures:
        Whether the ORg-register signature pipelining is enabled.
    asynchronous:
        Synchronous designs pay a load-imbalance penalty at every filter
        barrier; asynchronous designs avoid it at the price of a small
        coordination overhead.
    sync_imbalance_factor:
        Scale of the synchronous barrier penalty (one standard deviation
        of the per-PE-set computed-vector count).
    async_overhead:
        Fractional overhead of the asynchronous coordination (extra
        buffers, BusyMap checks, MCACHE version selection).
    """

    def __init__(self, num_pes: int = 168, dataflow: Dataflow | None = None,
                 pipelined_signatures: bool = True, asynchronous: bool = True,
                 sync_imbalance_factor: float = 1.0,
                 async_overhead: float = 0.02):
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        self.dataflow = dataflow or RowStationary()
        self.pipelined_signatures = pipelined_signatures
        self.asynchronous = asynchronous and self.dataflow.supports_async
        self.sync_imbalance_factor = sync_imbalance_factor
        self.async_overhead = async_overhead

    # ------------------------------------------------------------------
    @property
    def pe_sets(self) -> int:
        return max(self.num_pes // self.dataflow.pe_set_size, 1)

    def _dot_product_cycles(self, vector_length: int) -> float:
        """Cycles for one PE set to compute one vector x filter dot product."""
        rows = self.dataflow.pe_set_size
        return math.ceil(vector_length / rows) + (rows - 1)

    # ------------------------------------------------------------------
    def baseline_cycles(self, record: LayerReuseStats) -> float:
        """Cycles without any reuse for the work described by ``record``."""
        if record.total_vectors == 0:
            return 0.0
        vectors_per_set = math.ceil(record.total_vectors / self.pe_sets)
        per_pair = self._dot_product_cycles(record.vector_length)
        return vectors_per_set * record.num_filters * per_pair

    def signature_cycles(self, record: LayerReuseStats) -> float:
        """Cycles spent generating RPQ signatures for ``record``."""
        if not record.similarity_detection_on:
            return 0.0
        generated = record.signature_computed_vectors
        if generated == 0 or record.signature_bits == 0:
            return 0.0
        per_set = math.ceil(generated / self.pe_sets)
        rows = self.dataflow.pe_set_size
        if self.pipelined_signatures:
            return float(pipelined_signature_cycles(per_set,
                                                    record.signature_bits,
                                                    rows))
        return float(unpipelined_signature_cycles(per_set,
                                                  record.signature_bits,
                                                  rows))

    def compute_cycles(self, record: LayerReuseStats) -> float:
        """Dot-product cycles of the MERCURY run (MAU/MNU vectors only)."""
        if record.total_vectors == 0:
            return 0.0
        if not record.similarity_detection_on:
            return self.baseline_cycles(record)

        effective_hits = record.hits * self.dataflow.reuse_efficiency
        computed = record.total_vectors - effective_hits
        vectors_per_set = record.total_vectors / self.pe_sets
        computed_per_set = computed / self.pe_sets

        if not self.asynchronous and record.total_vectors > 0:
            # Synchronous barrier: the slowest PE set gates every filter.
            # Model the spread of per-set computed counts as binomial.
            hit_probability = min(max(effective_hits / record.total_vectors, 0.0), 1.0)
            spread = math.sqrt(max(hit_probability * (1.0 - hit_probability)
                                   * vectors_per_set, 0.0))
            computed_per_set += self.sync_imbalance_factor * spread

        per_pair = self._dot_product_cycles(record.vector_length)
        cycles = math.ceil(computed_per_set) * record.num_filters * per_pair

        # Hitmap check / skip-control overhead for every vector.
        cycles += (self.dataflow.per_vector_overhead
                   * math.ceil(record.total_vectors / self.pe_sets))

        if self.asynchronous:
            cycles *= (1.0 + self.async_overhead)
        return cycles

    # ------------------------------------------------------------------
    def layer_cycles(self, record: LayerReuseStats) -> LayerCycles:
        """Full cycle breakdown for one (layer, phase) record."""
        return LayerCycles(
            layer=record.layer,
            phase=record.phase,
            baseline_cycles=self.baseline_cycles(record),
            compute_cycles=self.compute_cycles(record),
            signature_cycles=self.signature_cycles(record),
            detection_on=record.similarity_detection_on,
        )
