"""Reuse-aware inference serving.

The training engine (:mod:`repro.core.reuse`) clears its MCACHE for
every layer call — single-use batches, as the paper's training flow
requires.  Serving inverts that: production traffic repeats, so the
signature machinery pays off *across* requests.  This package provides

* :class:`~repro.serving.engine.ServingPolicy` — admission/eviction
  knobs (capacity geometry, TTL by batch age, per-layer enable, exact
  collision checking) shared by both cache granularities;
* :class:`~repro.serving.engine.SignatureResultCache` — a persistent
  signature→result store on :class:`~repro.core.mcache_vec.VectorizedMCache`
  whose state survives across batches;
* :class:`~repro.serving.engine.ServingReuseEngine` — the per-layer
  vector-granularity reuse engine a :class:`~repro.nn.module.Module`
  attaches like the training engine;
* :class:`~repro.serving.batcher.MicroBatcher` — the asyncio
  micro-batching request queue with backpressure;
* :class:`~repro.serving.server.InferenceServer` — a routing front end
  over N worker shards (each with its own caches and batcher), with
  cache :meth:`~repro.serving.server.InferenceServer.snapshot` /
  :meth:`~repro.serving.server.InferenceServer.restore` persistence
  and an optional stdlib HTTP front end;
* :class:`~repro.serving.parallel.ParallelInferenceServer` — the
  hash-ring shards as real worker processes (measured wall-clock
  makespan) with supervised crash recovery
  (:class:`~repro.serving.parallel.FaultInjection` makes the recovery
  path testable);
* :mod:`~repro.serving.router` — deterministic signature-hash routing
  on a SHA-256 consistent ring, plus
  :class:`~repro.serving.router.HotKeyTracker` hot-key replication;
* :class:`~repro.serving.tiering.SharedL2Cache` — the shared
  second-tier payload→row store behind the per-shard L1 caches;
* :mod:`~repro.serving.loadgen` — deterministic traffic generators
  (uniform, bursty, hot-key/Zipfian).

Both cache granularities are persistent-mode instances of the shared
:class:`repro.core.session.ReuseSession` — the same probe/insert +
cache-ride core the training engine drives in flash mode.
"""

from repro.serving.batcher import BatcherConfig, MicroBatcher
from repro.serving.engine import (
    CacheCounters,
    ServeOutcome,
    ServingPolicy,
    ServingReuseEngine,
    SignatureResultCache,
)
from repro.serving.loadgen import (
    TRAFFIC_PATTERNS,
    Request,
    TrafficConfig,
    build_request_pool,
    generate_trace,
)
from repro.serving.parallel import FaultInjection, ParallelInferenceServer
from repro.serving.router import (ConsistentHashRing, HotKeyTracker,
                                  signature_key)
from repro.serving.server import InferenceServer, ServingReport
from repro.serving.tiering import SharedL2Cache

__all__ = [
    "BatcherConfig",
    "ConsistentHashRing",
    "HotKeyTracker",
    "signature_key",
    "CacheCounters",
    "FaultInjection",
    "InferenceServer",
    "MicroBatcher",
    "ParallelInferenceServer",
    "Request",
    "ServeOutcome",
    "ServingPolicy",
    "ServingReport",
    "ServingReuseEngine",
    "SharedL2Cache",
    "SignatureResultCache",
    "TRAFFIC_PATTERNS",
    "TrafficConfig",
    "build_request_pool",
    "generate_trace",
]
