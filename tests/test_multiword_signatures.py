"""End-to-end coverage of the >62-bit (multi-word) signature path.

Signatures longer than 62 bits pack into ``(n_vectors, n_words)``
``uint64`` rows (:mod:`repro.core.rpq`).  These tests drive that
representation through every Hitmap backend — the stateless group-by
simulation, the persistent batch MCACHE and the line-level scalar
oracle — and assert bit-identity throughout, then smoke a real training
run whose signature length crosses the multi-word boundary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MercuryConfig
from repro.core.differential import run_differential, \
    scalar_reference_simulation
from repro.core.hitmap import CODE_TO_STATE
from repro.core.hitmap_sim import simulate_hitmap
from repro.core.mcache_vec import VectorizedMCache
from repro.core.reuse import ReuseEngine
from repro.core.rpq import (RPQHasher, ints_to_words, signature_words,
                            signatures_to_ints, words_mod)

GEOMETRIES = [(8, 1), (8, 2), (16, 4), (64, 16), (4, 4)]

# Pools of signature values that exercise 1..3-word rows and collide in
# both the set index and the full value.
wide_values = st.integers(0, (1 << 100) - 1)


def wide_trace(draw_values, picks):
    pool = np.array(draw_values, dtype=object)
    return pool[np.array(picks) % len(pool)]


@settings(deadline=None)
@given(values=st.lists(wide_values, min_size=1, max_size=25),
       picks=st.lists(st.integers(0, 10_000), min_size=1, max_size=80),
       geometry=st.sampled_from(GEOMETRIES))
def test_multiword_simulations_match_oracle(values, picks, geometry):
    """Fresh-cache Hitmaps agree across all three backends."""
    entries, ways = geometry
    trace_ints = wide_trace(values, picks)
    trace_words = ints_to_words(trace_ints)

    oracle = scalar_reference_simulation(trace_ints,
                                         num_sets=entries // ways, ways=ways)
    groupby = simulate_hitmap(trace_words, num_sets=entries // ways,
                              ways=ways)
    vectorized = VectorizedMCache(entries=entries, ways=ways).simulate(
        trace_words)

    for simulation in (groupby, vectorized):
        assert list(simulation.states) == list(oracle.states)
        assert list(simulation.representative) == list(oracle.representative)
        assert (simulation.hits, simulation.mau, simulation.mnu,
                simulation.unique_signatures) == \
            (oracle.hits, oracle.mau, oracle.mnu, oracle.unique_signatures)


@settings(deadline=None)
@given(values=st.lists(wide_values, min_size=1, max_size=15),
       picks=st.lists(st.integers(0, 10_000), min_size=1, max_size=60),
       chunks=st.lists(st.integers(1, 13), min_size=1, max_size=4),
       geometry=st.sampled_from(GEOMETRIES))
def test_multiword_persistent_replay_property(values, picks, chunks,
                                              geometry):
    """Chunked replay against persistent state, data phase included."""
    entries, ways = geometry
    trace_words = ints_to_words(wide_trace(values, picks))
    report = run_differential(trace_words, entries=entries, ways=ways,
                              chunk_sizes=chunks, data_phase=True)
    assert report.identical, report.describe()


@settings(deadline=None)
@given(narrow=st.lists(st.integers(0, 1 << 40), min_size=1, max_size=40),
       wide=st.lists(wide_values, min_size=1, max_size=40),
       geometry=st.sampled_from(GEOMETRIES))
def test_mixed_width_trace_promotes_tag_store(narrow, wide, geometry):
    """int64 batches followed by multi-word batches (the adaptive-growth
    transition) keep matching resident lines by full value."""
    entries, ways = geometry
    cache = VectorizedMCache(entries=entries, ways=ways)
    scalar_trace = list(narrow) + list(wide) + list(narrow)

    # Replay: one narrow int64 batch, one wide multi-word batch, then
    # the narrow values again (now against the promoted words store).
    results = []
    results.append(cache.lookup_or_insert_batch(
        np.array(narrow, dtype=np.int64)))
    results.append(cache.lookup_or_insert_batch(ints_to_words(wide)))
    results.append(cache.lookup_or_insert_batch(
        np.array(narrow, dtype=np.int64)))

    from repro.core.mcache import MCache
    oracle = MCache(entries=entries, ways=ways)
    position = 0
    for states, entry_ids in results:
        for offset in range(len(states)):
            state, entry_id = oracle.lookup_or_insert(
                int(scalar_trace[position]))
            assert state.code == states[offset]
            assert entry_id == int(entry_ids[offset])
            position += 1


def test_uint64_signatures_beyond_int63_stay_exact():
    """A uint64 batch with values >= 2^63 must not wrap through int64:
    the engine promotes to words and keeps oracle bit-identity."""
    values = [(1 << 63) + 7, 5, (1 << 64) - 1, 5, (1 << 63) + 7]
    cache = VectorizedMCache(entries=8, ways=2)
    states, entry_ids = cache.lookup_or_insert_batch(
        np.array(values, dtype=np.uint64))

    from repro.core.mcache import MCache
    oracle = MCache(entries=8, ways=2)
    for offset, value in enumerate(values):
        state, entry_id = oracle.lookup_or_insert(value)
        assert state.code == states[offset]
        assert entry_id == int(entry_ids[offset])


def test_non_integral_float_signatures_are_rejected():
    """Float batches that do not round-trip through int64 must fail
    loudly instead of truncating 0.5 and 0.0 into the same signature."""
    with pytest.raises(ValueError, match="not an exact integer"):
        ints_to_words([0.5, 0.0])
    cache = VectorizedMCache(entries=8, ways=2)
    with pytest.raises(ValueError, match="not an exact integer"):
        cache.lookup_or_insert_batch(np.array([0.5, 0.0]))
    # Exactly-integral floats are accepted (they round-trip).
    states, _ = cache.lookup_or_insert_batch(np.array([3.0, 3.0]))
    assert [CODE_TO_STATE[s].value for s in states] == ["MAU", "HIT"]


def test_probe_batch_is_non_mutating_across_representations():
    """Read-only probes never promote the tag store, never set the dirty
    flag, and treat negative residents as misses for word probes."""
    cache = VectorizedMCache(entries=8, ways=2)
    cache.lookup_or_insert(5)
    cache.lookup_or_insert(-5)
    cache.simulate([])                     # leaves the cache clean
    assert cache._tag_words is None and not cache._dirty

    wide = ints_to_words([(1 << 70) + 3, 5, (1 << 64) - 5])
    present, entry_ids = cache.probe_batch(wide)
    # Cache was cleared by simulate(): everything misses, nothing mutates.
    assert not present.any()
    assert cache._tag_words is None and not cache._dirty

    cache.lookup_or_insert(5)
    cache.lookup_or_insert(-5)
    present, entry_ids = cache.probe_batch(wide)
    assert list(present) == [False, True, False]   # -5 != 2^64 - 5
    assert entry_ids[1] >= 0
    assert cache._tag_words is None                # still int64 mode
    # int64 probes against a words-mode store bridge the other way too.
    cache.clear()
    cache.lookup_or_insert_batch(ints_to_words([(1 << 70) + 3, 9]))
    present, _ = cache.probe_batch(np.array([9, 10], dtype=np.int64))
    assert list(present) == [True, False]


def test_object_arrays_of_small_ints_take_the_int64_path():
    """Object-dtype traces whose values fit int64 (negatives included)
    behave exactly like int64 traces — no promotion, no rejection."""
    from repro.core.rpq import coerce_packed
    arr, wide = coerce_packed(np.array([5, -5, 1 << 40], dtype=object))
    assert not wide and arr.dtype == np.int64

    cache = VectorizedMCache(entries=8, ways=2)
    states, _ = cache.lookup_or_insert_batch(np.array([5, -5], dtype=object))
    assert [CODE_TO_STATE[s].value for s in states] == ["MAU", "MAU"]
    assert cache._tag_words is None              # still int64 mode
    present, _ = cache.probe_batch(np.array([-5, 6], dtype=object))
    assert list(present) == [True, False]

    sim = simulate_hitmap(np.array([7, 7, -2], dtype=object),
                          num_sets=4, ways=2)
    assert (sim.hits, sim.mau, sim.mnu) == (1, 2, 0)


def test_probe_batch_uint64_beyond_int63_is_exact():
    """1-D uint64 probes >= 2^63 must not wrap through int64: no false
    hit against a negative resident, no false miss of the exact
    resident value."""
    cache = VectorizedMCache(entries=8, ways=2)
    cache.lookup_or_insert(-5)
    present, _ = cache.probe_batch(
        np.array([(1 << 64) - 5], dtype=np.uint64))
    assert list(present) == [False]          # 2^64-5 != -5

    cache.clear()
    cache.lookup_or_insert_batch(np.array([(1 << 63) + 7],
                                          dtype=np.uint64))
    present, entry_ids = cache.probe_batch(
        np.array([(1 << 63) + 7, (1 << 63) + 8], dtype=np.uint64))
    assert list(present) == [True, False]
    assert entry_ids[0] >= 0


def test_negative_resident_refuses_multiword_promotion():
    """A resident negative signature (floor-mod int64 edge) cannot be
    represented as unsigned words; promotion must refuse loudly rather
    than wrap it into a colliding value."""
    cache = VectorizedMCache(entries=8, ways=2)
    cache.lookup_or_insert(-5)
    with pytest.raises(ValueError, match="negative signatures"):
        cache.lookup_or_insert_batch(ints_to_words([(1 << 64) - 5]))
    # After a clear, wide batches are accepted again.
    cache.clear()
    states, _ = cache.lookup_or_insert_batch(ints_to_words([(1 << 64) - 5]))
    assert len(states) == 1


def test_signature_words_round_trip_representations():
    values = [0, 1, (1 << 62) - 1, 1 << 63, (1 << 100) + 12345]
    words = signature_words(np.array(values, dtype=object))
    assert words.dtype == np.uint64
    assert [int(v) for v in signatures_to_ints(words)] == values
    # Padding preserves value.
    padded = signature_words(words, num_words=4)
    assert padded.shape[1] == 4
    assert [int(v) for v in signatures_to_ints(padded)] == values


@settings(deadline=None, max_examples=30)
@given(values=st.lists(wide_values, min_size=1, max_size=30),
       modulus=st.integers(1, 1 << 20))
def test_words_mod_matches_python_ints(values, modulus):
    words = ints_to_words(values)
    expected = [value % modulus for value in values]
    assert list(words_mod(words, modulus)) == expected


def test_hasher_emits_multiword_beyond_62_bits():
    hasher = RPQHasher(seed=3)
    vectors = np.random.default_rng(0).normal(size=(20, 9))
    sigs = hasher.signatures(vectors, 70)
    assert sigs.ndim == 2 and sigs.shape == (20, 2)
    assert sigs.dtype == np.uint64
    # Similarity analyses accept the representation directly.
    assert 0.0 <= hasher.similarity_fraction(vectors, 70) <= 1.0
    assert 1 <= hasher.unique_vector_count(vectors, 70) <= 20


def test_reuse_engine_backends_identical_at_96_bits(rng):
    config = MercuryConfig(signature_bits=96, max_signature_bits=96,
                           mcache_entries=32, mcache_ways=4,
                           adaptive_stoppage=False,
                           adaptive_signature_length=False)
    centers = rng.normal(size=(10, 9))
    picks = rng.integers(0, 10, size=50)
    vectors = centers[picks] + rng.normal(0, 1e-9, size=(50, 9))
    weights = rng.normal(size=(9, 4))
    outputs = {}
    for backend in ("vectorized", "groupby", "scalar"):
        engine = ReuseEngine(config.replace(mcache_backend=backend))
        outputs[backend] = engine.matmul(vectors, weights, layer="conv")
        record = engine.stats.get("conv", "forward")
        assert record.hits > 0          # wide signatures still find reuse
    np.testing.assert_array_equal(outputs["vectorized"], outputs["groupby"])
    np.testing.assert_array_equal(outputs["vectorized"], outputs["scalar"])


@pytest.mark.parametrize("backend", ["vectorized", "groupby", "scalar"])
def test_functional_training_smoke_beyond_62_bits(backend):
    """A real (tiny) training run at a 70-bit signature length."""
    from repro.analysis.functional_sweep import (FunctionalPoint,
                                                 evaluate_functional_point)
    point = FunctionalPoint(model="squeezenet", signature_bits=70,
                            mcache_backend=backend, epochs=1, seed=0)
    row = evaluate_functional_point(point)
    assert row["final_signature_bits"] >= 70
    assert np.isfinite(row["reuse_final_loss"])
    assert 0.0 <= row["reuse_accuracy"] <= 1.0
    assert 0.0 <= row["hit_fraction"] <= 1.0


def test_functional_backends_bit_identical_beyond_62_bits():
    """The three backends train bit-identically at 70 bits end to end."""
    from repro.analysis.functional_sweep import (FunctionalPoint,
                                                 evaluate_functional_point)
    rows = {}
    for backend in ("vectorized", "scalar"):
        point = FunctionalPoint(model="squeezenet", signature_bits=70,
                                mcache_backend=backend, epochs=1, seed=1)
        rows[backend] = evaluate_functional_point(point)
    assert rows["vectorized"]["reuse_losses"] == rows["scalar"]["reuse_losses"]
    assert rows["vectorized"]["reuse_accuracy"] == \
        rows["scalar"]["reuse_accuracy"]
    assert rows["vectorized"]["hit_fraction"] == rows["scalar"]["hit_fraction"]
