"""Fully-connected (dense) layer.

The paper exploits similarity among the *inputs of a minibatch* in a
fully-connected layer (§III-C3): if input ``i`` is similar to input
``j``, the products of input ``i`` with every weight column can be
reused for input ``j``.  Routing the forward matmul through the engine
implements exactly that grouping.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import default_rng, he_normal
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W + b`` with rows of ``x`` as input vectors."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: int | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features

        rng = default_rng(seed)
        weight = he_normal((in_features, out_features), in_features, rng)
        self.weight = Parameter(weight, name="linear_weight")
        self.bias = Parameter(np.zeros(out_features), name="linear_bias") if bias else None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        original_shape = x.shape
        x2d = x.reshape(-1, self.in_features)

        if self.engine is not None:
            out = self.engine.matmul(x2d, self.weight.value,
                                     layer=self.layer_name, phase="forward")
        else:
            out = x2d @ self.weight.value

        if self.bias is not None:
            out = out + self.bias.value

        self._cache = (original_shape, x2d)
        return out.reshape(*original_shape[:-1], self.out_features)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        original_shape, x2d = self._cache
        grad2d = grad_output.reshape(-1, self.out_features)

        self.weight.grad += x2d.T @ grad2d
        if self.bias is not None:
            self.bias.grad += grad2d.sum(axis=0)

        if self.engine is not None:
            grad_input = self.engine.matmul(grad2d, self.weight.value.T,
                                            layer=self.layer_name, phase="backward")
        else:
            grad_input = grad2d @ self.weight.value.T

        return grad_input.reshape(original_shape)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"
