"""Versioned audit manifests for replay/serve runs.

:class:`AuditRecorder` persists one JSON manifest per run — the
configuration fingerprint, the seed streams that generated the
traffic, per-window metric snapshots, snapshot/restore/recovery
events and every adaptive-controller decision — next to the cache
snapshots, so a serving run can be audited (and its controller
decisions *re-derived*, see
:func:`repro.obs.controller.replay_decisions`) long after the process
exited.

The write discipline matches the cache snapshots: the manifest lands
under a temp name and is committed with :func:`os.replace`, so a crash
mid-write leaves the previous complete manifest, never a torn one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

AUDIT_FORMAT = "repro-obs-audit"
AUDIT_VERSION = 1
AUDIT_MANIFEST = "audit.json"


class AuditRecorder:
    """Accumulate one run's audit trail and persist it as a manifest."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.run = 0
        self._active = False
        self._header: dict = {}
        self.windows: list[dict] = []
        self.events: list[dict] = []
        self.decisions: list[dict] = []

    # -- run lifecycle --------------------------------------------------
    def begin_run(self, *, kind: str, config: dict | None = None,
                  seeds: dict | None = None, **extra) -> None:
        """Open a fresh run (clears the previous run's accumulators)."""
        self.run += 1
        self._active = True
        self._header = {"kind": kind, "config": config or {},
                        "seeds": seeds or {}, **extra}
        self.windows = []
        self.events = []
        self.decisions = []

    def record_window(self, window: dict) -> None:
        if self._active:
            self.windows.append(dict(window))

    def record_event(self, kind: str, **payload) -> None:
        if self._active:
            self.events.append({"kind": kind, **payload})

    def record_decision(self, decision: dict) -> None:
        if self._active:
            self.decisions.append(dict(decision))

    def finalize(self, summary: dict | None = None) -> dict:
        """Write the manifest (torn-proof) and return it."""
        manifest = {
            "format": AUDIT_FORMAT,
            "version": AUDIT_VERSION,
            "run": self.run,
            **self._header,
            "windows": self.windows,
            "events": self.events,
            "decisions": self.decisions,
            "summary": summary or {},
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        target = self.directory / AUDIT_MANIFEST
        tmp = self.directory / (".tmp-" + AUDIT_MANIFEST)
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, target)
        self._active = False
        return manifest

    @property
    def manifest_path(self) -> Path:
        return self.directory / AUDIT_MANIFEST


def read_manifest(directory) -> dict:
    """Load and validate an audit manifest from a directory (or file)."""
    path = Path(directory)
    if path.is_dir():
        path = path / AUDIT_MANIFEST
    if not path.exists():
        raise ValueError(f"{path} holds no audit manifest")
    manifest = json.loads(path.read_text())
    if manifest.get("format") != AUDIT_FORMAT:
        raise ValueError(f"{path} is not a {AUDIT_FORMAT} manifest")
    if manifest.get("version") != AUDIT_VERSION:
        raise ValueError(f"audit manifest version "
                         f"{manifest.get('version')!r} is not supported "
                         f"(expected {AUDIT_VERSION})")
    return manifest


def render_manifest(manifest: dict) -> str:
    """Human-readable summary of a manifest (the ``--audit-read`` view)."""
    lines = [f"audit run {manifest.get('run')} "
             f"({manifest.get('kind', '?')})"]
    config = manifest.get("config", {})
    if config:
        lines.append("config:")
        for key in sorted(config):
            lines.append(f"  {key}: {config[key]}")
    seeds = manifest.get("seeds", {})
    if seeds:
        lines.append("seed streams: " + ", ".join(
            f"{key}={value}" for key, value in sorted(seeds.items())))
    windows = manifest.get("windows", [])
    lines.append(f"windows: {len(windows)}")
    for window in windows:
        lines.append(
            f"  w{window.get('window')}: rows={window.get('rows')} "
            f"hit_rate={window.get('hit_rate', 0.0):.3f} "
            f"evicted={window.get('evicted', 0)} "
            f"expired={window.get('expired', 0)}")
    decisions = manifest.get("decisions", [])
    lines.append(f"controller decisions: {len(decisions)}")
    for decision in decisions:
        detail = {key: value for key, value in decision.items()
                  if key not in ("action", "window", "reason")}
        lines.append(f"  w{decision.get('window')}: "
                     f"{decision.get('action')} "
                     f"({decision.get('reason', '')}) {detail}")
    events = manifest.get("events", [])
    if events:
        lines.append(f"events: {len(events)}")
        for event in events:
            lines.append(f"  {event.get('kind')}: "
                         + ", ".join(f"{key}={value}" for key, value
                                     in sorted(event.items())
                                     if key != "kind"))
    summary = manifest.get("summary", {})
    if summary:
        lines.append("summary:")
        for key in sorted(summary):
            lines.append(f"  {key}: {summary[key]}")
    return "\n".join(lines)
