"""Figure 14: adaptivity, cycle breakdown and speedup for the 12 models.

Paper results reproduced here:
* 14a — some layers have similarity detection switched off by the
  adaptation policy;
* 14b — signature generation is only a small fraction of MERCURY's total
  cycles, and MERCURY cuts total computation time roughly in half;
* 14c — an average (geomean) speedup of 1.97x over the baseline.
"""

from benchmarks.harness import paper_scale_report, print_header
from repro.analysis import format_table, geomean
from repro.models import MODEL_NAMES

PAPER_GEOMEAN_SPEEDUP = 1.97


def run_experiment():
    return {name: paper_scale_report(name) for name in MODEL_NAMES}


def test_fig14a_adaptivity(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 14a — layers with similarity detection on/off")
    rows = []
    for name, report in reports.items():
        counts = report.layers_on_off()
        rows.append([name, counts["on"], counts["off"]])
    print(format_table(["model", "layers on", "layers off"], rows))

    total_off = sum(report.layers_on_off()["off"] for report in reports.values())
    assert total_off >= 1          # adaptation turns some layers off
    for report in reports.values():
        counts = report.layers_on_off()
        assert counts["on"] >= counts["off"]   # most layers stay on


def test_fig14b_cycle_breakdown(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 14b — computational cycle breakdown "
                 "(paper: signatures are a small fraction; ~50% total saving)")
    rows = []
    for name, report in reports.items():
        breakdown = report.cycle_breakdown()
        rows.append([name,
                     breakdown["baseline"]["layer_computation"] / 1e6,
                     breakdown["mercury"]["layer_computation"] / 1e6,
                     breakdown["mercury"]["signature"] / 1e6,
                     report.signature_fraction * 100])
    print(format_table(["model", "baseline Mcycles", "MERCURY layer Mcycles",
                        "MERCURY signature Mcycles", "signature share (%)"],
                       rows, "{:.2f}"))

    for report in reports.values():
        assert report.signature_fraction < 0.20
        assert report.mercury_total_cycles < report.baseline_total_cycles


def test_fig14c_speedup(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    speedups = {name: report.speedup for name, report in reports.items()}
    overall = geomean(speedups.values())

    print_header("Figure 14c — speedup over the baseline "
                 f"(paper geomean: {PAPER_GEOMEAN_SPEEDUP}x)")
    rows = [[name, value] for name, value in speedups.items()]
    rows.append(["geomean", overall])
    print(format_table(["model", "speedup"], rows, "{:.2f}"))

    assert all(value > 1.3 for value in speedups.values())
    assert abs(overall - PAPER_GEOMEAN_SPEEDUP) < 0.35
    # Bigger networks expose at least as much saving as the smallest ones.
    assert speedups["vgg19"] >= speedups["vgg13"] - 0.05
    assert speedups["resnet152"] >= speedups["resnet50"] - 0.05
