"""MERCURY core: RPQ signatures, MCACHE, Hitmap and the reuse engine."""

from repro.core.config import MercuryConfig
from repro.core.rpq import RPQHasher, pack_bits, signature_via_convolution
from repro.core.signature import SignatureTable
from repro.core.hitmap import (
    CODE_TO_STATE,
    HIT_CODE,
    Hitmap,
    HitState,
    MAU_CODE,
    MNU_CODE,
    STATE_TO_CODE,
    codes_to_states,
    states_to_codes,
)
from repro.core.mcache import MCache
from repro.core.mcache_vec import VectorizedMCache
from repro.core.differential import (
    DifferentialReport,
    run_differential,
    scalar_reference_simulation,
)
from repro.core.reuse import ReuseEngine
from repro.core.session import (
    ADMISSION_POLICIES,
    CacheCounters,
    ReuseSession,
    ServeOutcome,
    SessionPolicy,
)
from repro.core.stats import LayerReuseStats, ReuseStats
from repro.core.adaptation import SignatureLengthScheduler, SimilarityStoppage

__all__ = [
    "MercuryConfig",
    "RPQHasher",
    "pack_bits",
    "signature_via_convolution",
    "SignatureTable",
    "Hitmap",
    "HitState",
    "HIT_CODE",
    "MAU_CODE",
    "MNU_CODE",
    "CODE_TO_STATE",
    "STATE_TO_CODE",
    "codes_to_states",
    "states_to_codes",
    "MCache",
    "VectorizedMCache",
    "DifferentialReport",
    "run_differential",
    "scalar_reference_simulation",
    "ReuseEngine",
    "ADMISSION_POLICIES",
    "CacheCounters",
    "ReuseSession",
    "ServeOutcome",
    "SessionPolicy",
    "LayerReuseStats",
    "ReuseStats",
    "SignatureLengthScheduler",
    "SimilarityStoppage",
]
