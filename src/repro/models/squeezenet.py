"""Scaled SqueezeNet-1.0 (fire modules)."""

from __future__ import annotations

import numpy as np

from repro.models.blocks import ConvBNReLU, FireBlock
from repro.nn import GlobalAvgPool2D, Linear, MaxPool2D
from repro.nn.module import Module, assign_unique_layer_names


class SqueezeNet(Module):
    """Stem + three fire modules + classifier."""

    def __init__(self, num_classes: int = 8, in_channels: int = 3, seed: int = 0):
        super().__init__()
        self.stem = ConvBNReLU(in_channels, 12, 3, 2, 1, seed=seed)
        self.fire1 = FireBlock(12, 4, 8, seed=seed + 1)
        self.fire2 = FireBlock(self.fire1.out_channels, 4, 8, seed=seed + 4)
        self.pool1 = MaxPool2D(2)
        self.fire3 = FireBlock(self.fire2.out_channels, 6, 12, seed=seed + 7)
        self.pool = GlobalAvgPool2D()
        self.head = Linear(self.fire3.out_channels, num_classes, seed=seed + 10)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.fire2(self.fire1(x))
        x = self.pool1(x)
        x = self.fire3(x)
        return self.head(self.pool(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.head.backward(grad_output))
        grad = self.fire3.backward(grad)
        grad = self.pool1.backward(grad)
        grad = self.fire1.backward(self.fire2.backward(grad))
        return self.stem.backward(grad)


def build_squeezenet(num_classes: int = 8, in_channels: int = 3,
                     seed: int = 0) -> SqueezeNet:
    model = SqueezeNet(num_classes, in_channels, seed)
    return assign_unique_layer_names(model, prefix="squeezenet")
