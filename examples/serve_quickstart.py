"""Serve a trained model with cross-request computation reuse.

Trains a small SqueezeNet, stands up an :class:`InferenceServer` with
the request-granularity exact cache — optionally sharded over several
workers with signature-hash routing (``--shards``) — and replays a
Zipfian (hot-key) load-generator trace through the micro-batching
queue(s).  The served
outputs are checked byte-for-byte against the engine-less per-request
forward oracle — cross-request reuse with ``exact_check`` only ever
copies an output the oracle computation produced for an identical
payload — and the reuse/latency telemetry is printed.

    python examples/serve_quickstart.py
    python examples/serve_quickstart.py --traffic bursty --requests 200 \
        --check --p99-floor-ms 250
    python examples/serve_quickstart.py --shards 4 --check
    python examples/serve_quickstart.py --parallel --workers 4 --check
    python examples/serve_quickstart.py --http  # also smoke the HTTP door

``--parallel`` runs the shards as real worker processes behind the
same router (measured wall-clock makespan, supervised crash recovery)
— the byte-identity check holds there too, since each worker applies
the same exact-cache serving path.  ``--check`` turns the run into a
gate (the CI serving-smoke job): it exits non-zero unless the hit rate
is positive, the outputs match the oracle bit-for-bit, and p99 latency
stays under the floor — at any shard or worker count, since exact
per-request serving is byte-identical to the oracle no matter how
requests are routed.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data import ClusteredImageDataset, ImageDatasetConfig, \
    train_test_split
from repro.models import build_model
from repro.serving import (BatcherConfig, InferenceServer, ServingPolicy,
                           TrafficConfig, build_request_pool, generate_trace)
from repro.serving.loadgen import TRAFFIC_PATTERNS, trace_summary
from repro.training import Trainer, TrainingConfig


def train_squeezenet(epochs: int, seed: int = 1):
    """A quick exact training run; serving wants trained weights."""
    dataset = ClusteredImageDataset(ImageDatasetConfig(
        num_classes=4, samples_per_class=12, image_size=12, seed=7))
    xtr, ytr, xte, yte = train_test_split(dataset.images, dataset.labels,
                                          test_fraction=0.25, seed=0)
    model = build_model("squeezenet", num_classes=4, seed=seed)
    trainer = Trainer(model, TrainingConfig(epochs=epochs, batch_size=8,
                                            learning_rate=0.01,
                                            optimizer="adam"))
    result = trainer.fit(xtr, ytr, validation=(xte, yte))
    return model, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traffic", default="zipfian",
                        choices=list(TRAFFIC_PATTERNS))
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--pool-size", type=int, default=24)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--shards", type=int, default=1,
                        help="worker shards behind the signature-hash "
                             "router")
    parser.add_argument("--parallel", action="store_true",
                        help="run the shards as real worker processes "
                             "(measured wall-clock makespan)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker-process count for --parallel")
    parser.add_argument("--vector-cache", action="store_true",
                        help="layer the per-layer vector cache under the "
                             "request cache")
    parser.add_argument("--http", action="store_true",
                        help="also serve one request over the HTTP front "
                             "end")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless hit rate > 0, outputs "
                             "are bit-identical and p99 holds the floor")
    parser.add_argument("--p99-floor-ms", type=float, default=250.0)
    args = parser.parse_args(argv)

    # 1. Train the model to serve.
    model, training = train_squeezenet(args.epochs)
    print(f"trained squeezenet: validation accuracy "
          f"{training.final_validation_accuracy:.2f}")

    # 2. A deterministic traffic scenario over a fixed request pool.
    pool = build_request_pool("squeezenet", pool_size=args.pool_size,
                              image_size=12, seed=0)
    trace = generate_trace(TrafficConfig(pattern=args.traffic,
                                         num_requests=args.requests,
                                         seed=1), len(pool))
    shape = trace_summary(trace)
    print(f"{args.traffic} trace: {shape['requests']} requests over "
          f"{shape['distinct_payloads']} distinct payloads "
          f"(top key {shape['top_key_share']:.0%} of traffic)")

    # 3. Serve it.  The request cache reuses whole outputs across
    #    identical requests; ``per_request`` compute keeps every miss
    #    bitwise reproducible against the oracle.
    policy = ServingPolicy(request_cache=True,
                           vector_cache=args.vector_cache,
                           exact_check=True, compute="per_request")
    config = BatcherConfig(max_batch_size=args.batch_size,
                           max_wait_s=0.001)
    shards = args.workers if args.parallel else args.shards
    server = InferenceServer(model, policy, config, shards=shards)
    if args.parallel:
        from repro.serving import ParallelInferenceServer
        with ParallelInferenceServer(model, policy, config,
                                     workers=args.workers) as parallel:
            outputs, report = parallel.replay(trace, pool)
        print(f"{args.workers} worker processes: measured makespan "
              f"{report.measured_makespan_s:.3f}s "
              f"({report.recoveries} recoveries)")
    else:
        outputs, report = server.replay(trace, pool)

    print(f"served {report.requests} requests in {report.duration_s:.2f}s "
          f"({report.throughput_rps:.0f} rps, "
          f"{report.batches} micro-batches, "
          f"mean size {report.mean_batch_size:.1f})")
    print(f"cross-request reuse: hit rate {report.hit_rate:.2%} "
          f"({report.request_cache['cross_hits']} cross-batch + "
          f"{report.request_cache['intra_hits']} intra-batch hits)")
    print(f"latency: p50 {report.latency_p50_ms:.2f} ms, "
          f"p99 {report.latency_p99_ms:.2f} ms")
    if report.shards > 1:
        shares = ", ".join(f"shard {row['shard']}: {row['requests']} reqs "
                           f"{row['hit_rate']:.0%}"
                           for row in report.shard_stats)
        print(f"sharded over {report.shards} workers ({shares})")
    if args.vector_cache:
        print(f"vector cache: {report.vector_cache['hit_rate']:.2%} row "
              f"hit rate across {len(report.layer_stats)} layer records")

    # 4. Exactness: byte-identical to the engine-less forward oracle.
    oracle = server.oracle_outputs(pool)
    identical = sum(
        1 for request, output in zip(trace, outputs)
        if np.array_equal(output, oracle[request.pool_index]))
    print(f"exactness: {identical}/{len(trace)} outputs bit-identical "
          f"to the engine-less oracle")

    # 5. Optionally exercise the HTTP front end.
    if args.http:
        import json
        import urllib.request
        front = server.serve_http(port=0)
        try:
            body = json.dumps({"inputs": pool[0].tolist()}).encode()
            request = urllib.request.Request(
                front.url("/infer"), data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.load(response)
            print(f"HTTP /infer round trip: {front.url('/infer')} -> "
                  f"{len(payload['outputs'])} logits in "
                  f"{payload['latency_ms']:.2f} ms")
        finally:
            front.stop()

    if args.check:
        failures = []
        if report.hit_rate <= 0:
            failures.append("hit rate is zero")
        if identical != len(trace):
            failures.append(
                f"only {identical}/{len(trace)} outputs bit-identical")
        if report.latency_p99_ms >= args.p99_floor_ms:
            failures.append(f"p99 {report.latency_p99_ms:.2f} ms over the "
                            f"{args.p99_floor_ms:.0f} ms floor")
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            return 1
        print("serving checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
