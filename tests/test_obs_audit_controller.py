"""Audit manifests + the adaptive policy controller, unit and end-to-end.

The contracts under test:

* the recorder persists a versioned, torn-proof manifest that
  round-trips through :func:`read_manifest`;
* the controller is a pure function of the window sequence, so
  :func:`replay_decisions` re-derives a run's recorded decisions from
  its manifest alone;
* telemetry is provably inert — a telemetry-on replay is byte-identical
  to the bare server;
* on the rotating-Zipf churn trace the controller's flash clears beat
  the static no-replacement policy's collapsed hit rate;
* the trainer reports per-epoch reuse through the same bus/vocabulary.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.serving_sweep import ServingPoint, serving_pieces
from repro.core.adaptation import SignatureLengthScheduler
from repro.obs import (AUDIT_FORMAT, AUDIT_VERSION,
                       AdaptivePolicyController, AuditRecorder,
                       ControllerConfig, Telemetry, read_manifest,
                       render_manifest, replay_decisions)

# The churn configuration the controller exists for: a Zipfian head
# that rotates every 40 requests over a no-replacement cache.  Small
# sets (8x8) pin the stale hot set, so the static hit rate collapses
# after the first rotation.
CHURN = dict(traffic="zipfian", cache_policy="request_exact",
             num_requests=240, pool_size=48, entries=8, ways=8,
             rotate_every=40, seed=0)


def _window(index, *, rows=16, hit_rate=0.5, **extra):
    return {"window": index, "rows": rows, "hit_rate": hit_rate,
            "hits": int(rows * hit_rate), **extra}


class TestAuditRecorder:
    def test_manifest_round_trip(self, tmp_path):
        recorder = AuditRecorder(tmp_path / "audit")
        recorder.begin_run(kind="replay", config={"shards": 2},
                           seeds={"trace": 1}, requests=60)
        recorder.record_window(_window(0))
        recorder.record_event("snapshot.write", generation=1)
        recorder.record_decision({"action": "flash_clear", "window": 0})
        manifest = recorder.finalize({"hit_rate": 0.5})
        assert recorder.manifest_path.exists()
        assert not (tmp_path / "audit" / ".tmp-audit.json").exists()

        loaded = read_manifest(tmp_path / "audit")
        assert loaded == manifest
        assert loaded["format"] == AUDIT_FORMAT
        assert loaded["version"] == AUDIT_VERSION
        assert loaded["run"] == 1
        assert loaded["kind"] == "replay"
        assert loaded["config"] == {"shards": 2}
        assert loaded["seeds"] == {"trace": 1}
        assert loaded["requests"] == 60
        assert loaded["windows"] == [_window(0)]
        assert loaded["events"] == [{"kind": "snapshot.write",
                                     "generation": 1}]
        assert loaded["decisions"] == [{"action": "flash_clear",
                                        "window": 0}]
        assert loaded["summary"] == {"hit_rate": 0.5}
        # read_manifest accepts the file path too.
        assert read_manifest(recorder.manifest_path) == manifest

    def test_new_run_clears_the_previous_accumulators(self, tmp_path):
        recorder = AuditRecorder(tmp_path)
        recorder.begin_run(kind="a")
        recorder.record_window(_window(0))
        recorder.finalize()
        recorder.begin_run(kind="b")
        manifest = recorder.finalize()
        assert manifest["run"] == 2
        assert manifest["kind"] == "b"
        assert manifest["windows"] == []

    def test_records_outside_a_run_are_ignored(self, tmp_path):
        recorder = AuditRecorder(tmp_path)
        recorder.record_window(_window(0))
        recorder.record_event("x")
        recorder.record_decision({"action": "noop"})
        recorder.begin_run(kind="replay")
        assert recorder.finalize()["windows"] == []

    def test_read_manifest_validates(self, tmp_path):
        with pytest.raises(ValueError, match="no audit manifest"):
            read_manifest(tmp_path)
        bad = tmp_path / "audit.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a"):
            read_manifest(tmp_path)
        bad.write_text(json.dumps({"format": AUDIT_FORMAT,
                                   "version": AUDIT_VERSION + 1}))
        with pytest.raises(ValueError, match="not supported"):
            read_manifest(tmp_path)

    def test_render_manifest_is_human_readable(self, tmp_path):
        recorder = AuditRecorder(tmp_path)
        recorder.begin_run(kind="replay", config={"shards": 2},
                           seeds={"trace": 1, "pool": 0})
        recorder.record_window(_window(0, hit_rate=0.625))
        recorder.record_decision({"action": "flash_clear", "window": 0,
                                  "reason": "collapse"})
        recorder.record_event("worker.recovered", worker=1)
        recorder.finalize({"requests": 60})
        text = render_manifest(read_manifest(tmp_path))
        assert "audit run 1 (replay)" in text
        assert "shards: 2" in text
        assert "trace=1" in text
        assert "hit_rate=0.625" in text
        assert "flash_clear" in text
        assert "worker.recovered" in text
        assert "requests: 60" in text


class TestControllerUnit:
    def test_config_validation(self):
        for kwargs in ({"min_window_rows": -1}, {"collapse_ratio": 0.0},
                       {"collapse_ratio": 1.0}, {"cooldown_windows": -1},
                       {"ttl_growth_factor": 1}):
            with pytest.raises(ValueError):
                ControllerConfig(**kwargs)

    def test_small_windows_are_ignored(self):
        controller = AdaptivePolicyController()
        assert controller.observe_window(_window(0, rows=4,
                                                 hit_rate=0.9)) == []
        # The tiny window must not have seeded the reference either.
        assert controller.observe_window(_window(1, hit_rate=0.1)) == []

    def test_collapse_triggers_flash_clear_then_cooldown(self):
        controller = AdaptivePolicyController()
        assert controller.observe_window(_window(0, hit_rate=0.6)) == []
        decided = controller.observe_window(_window(1, hit_rate=0.2))
        assert [d["action"] for d in decided] == ["flash_clear"]
        assert decided[0]["window"] == 1
        assert decided[0]["reference_hit_rate"] == 0.6
        # The refill window hits ~0 by construction; cooldown must
        # swallow it instead of clearing again.
        assert controller.observe_window(_window(2, hit_rate=0.0)) == []
        # Reference was reset: a recovered window re-seeds it ...
        assert controller.observe_window(_window(3, hit_rate=0.5)) == []
        # ... and a second collapse clears again.
        decided = controller.observe_window(_window(4, hit_rate=0.1))
        assert [d["action"] for d in decided] == ["flash_clear"]
        assert len(controller.decisions) == 2

    def test_collapse_needs_a_real_reference(self):
        controller = AdaptivePolicyController()
        controller.observe_window(_window(0, hit_rate=0.04))
        assert controller.observe_window(_window(1, hit_rate=0.0)) == []

    def test_ttl_widens_on_expiry_churn_and_saturates(self):
        controller = AdaptivePolicyController()
        decided = controller.observe_window(
            _window(0, rows=16, expired=8, ttl_batches=4))
        assert decided == [d for d in controller.decisions]
        assert decided[0]["action"] == "ttl"
        assert decided[0]["ttl_batches"] == 8
        assert decided[0]["previous"] == 4
        # At the cap the controller stays silent.
        assert controller.observe_window(
            _window(1, rows=16, expired=8, ttl_batches=256)) == []

    def test_admission_tightens_only_when_enabled(self):
        flooded = _window(0, hit_rate=0.0, inserted=14,
                          admission="always")
        assert AdaptivePolicyController().observe_window(
            dict(flooded)) == []
        controller = AdaptivePolicyController(
            ControllerConfig(adapt_admission=True))
        decided = controller.observe_window(dict(flooded))
        assert [d["action"] for d in decided] == ["admission"]
        assert decided[0]["admission"] == "frequency"

    def test_scheduler_grows_signature_bits_on_a_plateau(self):
        scheduler = SignatureLengthScheduler(initial_bits=16,
                                             max_bits=18,
                                             plateau_iterations=1,
                                             tolerance=1.0)
        controller = AdaptivePolicyController(scheduler=scheduler)
        assert controller.observe_window(
            _window(0, hit_rate=0.1, signature_bits=16)) == []
        decided = controller.observe_window(
            _window(1, hit_rate=0.1, signature_bits=16))
        assert [d["action"] for d in decided] == ["signature_bits"]
        assert decided[0]["signature_bits"] == 17
        assert decided[0]["previous"] == 16
        assert controller.describe()["scheduler"]["max_bits"] == 18

    def test_reset_forgets_everything(self):
        controller = AdaptivePolicyController()
        controller.observe_window(_window(0, hit_rate=0.6))
        controller.observe_window(_window(1, hit_rate=0.1))
        assert controller.decisions
        controller.reset()
        assert controller.decisions == []
        # No reference survives the reset: a low window is not a
        # collapse any more.
        assert controller.observe_window(_window(0, hit_rate=0.1)) == []

    def test_replay_from_bare_windows_matches_live(self):
        windows = [_window(0, hit_rate=0.6), _window(1, hit_rate=0.1),
                   _window(2, hit_rate=0.0), _window(3, hit_rate=0.55),
                   _window(4, rows=16, expired=8, ttl_batches=4)]
        controller = AdaptivePolicyController()
        for window in windows:
            controller.observe_window(window)
        assert replay_decisions(windows) == controller.decisions


class TestTelemetryBundle:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            Telemetry(window_batches=0)

    def test_summary_and_prometheus_track_the_bus(self):
        telemetry = Telemetry()
        telemetry.bus.emit("batcher.batch", size=4)
        summary = telemetry.summary()
        assert summary == {"events": 1, "dropped": 0, "handled": 1,
                           "decisions": 0}
        text = telemetry.render_prometheus()
        assert "repro_bus_events_total 1" in text
        assert "repro_bus_dropped_total 0" in text
        assert "repro_serving_batches_total 1" in text


def _churn_pieces(telemetry=None):
    point = ServingPoint(**CHURN)
    return serving_pieces(point, telemetry=telemetry)


class TestServingEndToEnd:
    def test_telemetry_on_replay_is_byte_identical(self):
        _, pool, trace, bare = _churn_pieces()
        bare_outputs, bare_report = bare.replay(trace, pool)

        telemetry = Telemetry(window_batches=2)
        _, pool, trace, observed = _churn_pieces(telemetry)
        outputs, report = observed.replay(trace, pool)

        for ours, theirs in zip(outputs, bare_outputs):
            assert ours.tobytes() == theirs.tobytes()
        assert report.hit_rate == bare_report.hit_rate
        assert report.batches == bare_report.batches
        assert report.request_cache == bare_report.request_cache
        assert report.shard_stats == bare_report.shard_stats
        # ... and the observed run actually observed something.
        assert report.telemetry["events"] > 0
        assert report.telemetry["dropped"] == 0
        assert bare_report.telemetry == {}
        assert report.latency_hist_p50_ms > 0.0

    def test_controller_beats_static_policy_on_churn(self, tmp_path):
        _, pool, trace, static_server = _churn_pieces()
        _, static = static_server.replay(trace, pool)

        telemetry = Telemetry(audit_dir=tmp_path,
                              controller=AdaptivePolicyController(),
                              window_batches=2,
                              seeds={"trace": CHURN["seed"]})
        _, pool, trace, adaptive_server = _churn_pieces(telemetry)
        _, adaptive = adaptive_server.replay(trace, pool)

        # The static no-replacement cache pins the first hot set and
        # collapses at every rotation; the controller's flash clears
        # free the sets and restore steady-state hits.
        assert adaptive.telemetry["decisions"] >= 1
        assert adaptive.hit_rate > static.hit_rate + 0.05

        # Every decision is reproducible from the manifest alone.
        manifest = read_manifest(tmp_path)
        assert manifest["kind"] == "replay"
        assert manifest["seeds"] == {"trace": CHURN["seed"]}
        assert manifest["config"]["window_batches"] == 2
        assert len(manifest["windows"]) > 0
        assert len(manifest["decisions"]) \
            == adaptive.telemetry["decisions"]
        assert any(d["action"] == "flash_clear"
                   for d in manifest["decisions"])
        assert replay_decisions(manifest) == manifest["decisions"]
        # The digest survives into the rendered view.
        assert "flash_clear" in render_manifest(manifest)

    def test_metrics_endpoint_payload(self):
        telemetry = Telemetry(window_batches=2)
        _, pool, trace, server = _churn_pieces(telemetry)
        server.replay(trace, pool)
        text = server.metrics_text()
        assert f"repro_serving_requests_total {CHURN['num_requests']}" \
            in text
        # Replay simulates latencies at report time, so the live
        # latency series is absent; the batch-shape histogram is real.
        assert "repro_serving_batch_size_count" in text
        assert 'repro_reuse_hit_rate{phase="serving"}' in text
        assert "repro_bus_events_total" in text

    def test_metrics_text_requires_telemetry(self):
        _, pool, trace, server = _churn_pieces()
        with pytest.raises(RuntimeError, match="telemetry"):
            server.metrics_text()


class TestTrainingTelemetry:
    def test_trainer_reports_per_epoch_reuse_through_the_bus(self):
        from repro import MercuryConfig, ReuseEngine
        from repro.data.synthetic_images import (ClusteredImageDataset,
                                                 ImageDatasetConfig)
        from repro.nn import (Conv2D, GlobalAvgPool2D, Linear, ReLU,
                              Sequential)
        from repro.training.trainer import Trainer, TrainingConfig

        dataset = ClusteredImageDataset(ImageDatasetConfig(
            num_classes=3, samples_per_class=8, image_size=12))
        model = Sequential(Conv2D(3, 6, 3, padding=1, seed=0), ReLU(),
                           GlobalAvgPool2D(), Linear(6, 3, seed=1))
        engine = ReuseEngine(MercuryConfig(signature_bits=16))
        telemetry = Telemetry()
        trainer = Trainer(model,
                          TrainingConfig(epochs=2, batch_size=6,
                                         learning_rate=0.02,
                                         optimizer="adam"),
                          engine=engine, bus=telemetry.bus)
        result = trainer.fit(dataset.images, dataset.labels)
        telemetry.pump()
        registry = telemetry.registry
        assert registry.counter("repro_training_epochs_total") == 2
        assert registry.counter("repro_reuse_requests_total",
                                phase="training") > 0
        assert registry.gauge("repro_training_loss") \
            == pytest.approx(result.epoch_losses[-1])
        assert registry.gauge("repro_training_accuracy") \
            == pytest.approx(result.epoch_train_accuracy[-1])
        assert registry.gauge("repro_reuse_signature_bits",
                              phase="training") == 16

    def test_trainer_without_a_bus_emits_nothing(self):
        from repro.training.trainer import Trainer, TrainingConfig
        from repro.nn import Linear, Sequential
        import numpy as np

        model = Sequential(Linear(4, 2, seed=0))
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=4))
        rng = np.random.default_rng(0)
        result = trainer.fit(rng.normal(size=(8, 4)).astype(np.float32),
                             rng.integers(0, 2, size=8))
        assert trainer.bus is None
        assert result.iterations == 2
