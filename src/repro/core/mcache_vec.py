"""Vectorized batch MCACHE.

:class:`VectorizedMCache` is a drop-in, array-backed implementation of
the signature-indexed result cache in :mod:`repro.core.mcache`.  Where
the scalar :class:`~repro.core.mcache.MCache` models the hardware line
by line (one Python loop iteration per probe), this engine keeps the
tag / Valid-Tag / Valid-Data state as dense numpy arrays over the
``(set, way)`` grid and services a whole batch of probes with sort-based
group-by operations, the same technique as
:func:`repro.core.hitmap_sim.simulate_hitmap` but against *persistent*
cache state.

The two implementations are bit-identical by construction and by test:
``tests/test_mcache_differential.py`` replays randomized traces through
both and asserts equal Hitmap states, entry ids, stats counters and
data-phase contents.  The scalar model stays in the tree as the oracle.

Batch semantics match a sequential replay of the trace:

* a signature already resident (from this batch or an earlier one) is a
  HIT on every occurrence;
* the first occurrence of a new signature whose set still has a free
  way is MAU, claims the lowest free way and the next entry id;
* later occurrences of an inserted signature are HITs on that entry;
* every occurrence of a new signature whose set was already full at its
  first occurrence is MNU — no replacement (§III-B3, Figure 9).

Because Valid-Tag bits are only ever cleared by a full :meth:`clear`
(``invalidate_data`` flash-clears VD bits only), the occupied ways of a
set are always a prefix ``0..occupancy-1``, which is what lets the
batch insert compute way indices arithmetically.

Signatures wider than 62 bits — reachable through adaptive signature
growth — arrive in the multi-word ``(n_vectors, n_words)`` ``uint64``
representation (:mod:`repro.core.rpq`).  The first such batch promotes
the tag store to a ``(set, way, word)`` array holding full signature
values; matching becomes an all-words equality and grouping a
lexicographic row sort, so nothing drops to Python loops.  Equality by
full value and set indexing by ``value % num_sets`` are exactly the
scalar model's (set, tag) split, so bit-identity is preserved — mixed
int64/multi-word traces included.
"""

from __future__ import annotations

import numpy as np

from repro.core.hitmap import CODE_TO_STATE, HIT_CODE, HitState
from repro.core.hitmap_sim import (HitmapSimulation, rank_within_groups,
                                   signature_sets, simulate_hitmap)
from repro.core.mcache import MCacheStats
from repro.core.rpq import (coerce_packed, ints_to_words, pad_words,
                            signature_words, unique_signatures)


class VectorizedMCache:
    """Set-associative, no-replacement cache with batch probe/insert.

    Parameters mirror :class:`~repro.core.mcache.MCache`: ``entries``
    total lines, ``ways`` associativity and ``versions`` data slots per
    line.
    """

    def __init__(self, entries: int = 1024, ways: int = 16, versions: int = 1):
        if entries <= 0 or ways <= 0 or versions <= 0:
            raise ValueError("entries, ways and versions must be positive")
        if entries % ways != 0:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.versions = versions
        self.num_sets = entries // ways
        self.stats = MCacheStats()
        self._tags = np.zeros((self.num_sets, ways), dtype=np.int64)
        # Multi-word mode: full signature values, one row of words per
        # line, most-significant word first.  ``None`` while every
        # resident signature fits the int64 tag path.
        self._tag_words: np.ndarray | None = None
        self._valid_tag = np.zeros((self.num_sets, ways), dtype=bool)
        self._line_entry = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._occupancy = np.zeros(self.num_sets, dtype=np.int64)
        self._valid_data = np.zeros((self.num_sets, ways, versions), dtype=bool)
        # Object grid of stored payloads.  Exercised only by the direct
        # data-phase API and the differential suite; the serving hot
        # path keeps results in the session's dense store instead.
        self._data = np.empty((self.num_sets, ways, versions), dtype=object)
        # entry_id -> (set, way); entry ids are dense 0..N-1 so plain
        # arrays indexed by id replace the scalar model's dict.
        self._entry_set = np.empty(0, dtype=np.int64)
        self._entry_way = np.empty(0, dtype=np.int64)
        self._next_entry_id = 0
        # False while every array is in its cleared state, making the
        # per-layer ``clear`` on the simulate hot path free.
        self._dirty = False

    # ------------------------------------------------------------------
    # Indexing (same split as the scalar model)
    # ------------------------------------------------------------------
    def set_index(self, signature: int) -> int:
        """Cache set for a signature (low-order bits)."""
        return signature % self.num_sets

    def tag(self, signature: int) -> int:
        """Tag portion of a signature (remaining high-order bits)."""
        return signature // self.num_sets

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------
    def _normalize(self, signatures) -> np.ndarray:
        """Return a 1-D int64 array or a 2-D multi-word uint64 array.

        Promotes the persistent tag store to multi-word mode the first
        time a batch needs it; afterwards int64 batches are widened on
        the fly so mixed traces keep comparing by full value.
        """
        arr, wide = coerce_packed(signatures)
        if arr.ndim > 2:
            raise ValueError("signatures must be one-dimensional "
                             "or multi-word (n_vectors, n_words)")
        if wide:
            words = arr.astype(np.uint64, copy=False) if arr.ndim == 2 \
                else ints_to_words(arr)
            self._enter_words_mode(words.shape[1])
            return pad_words(words, self._tag_words.shape[2])
        if self._tag_words is not None:
            # int64 batch while wide signatures are resident: widen.
            # (Negative signatures — a floor-mod edge the int64 path
            # supports — cannot be represented as unsigned words.)
            if (arr < 0).any():
                raise ValueError("negative signatures cannot mix with "
                                 "multi-word signatures")
            return pad_words(arr.astype(np.uint64)[:, None],
                             self._tag_words.shape[2])
        return arr

    def _widen_tag_words(self, words: np.ndarray,
                         num_words: int) -> np.ndarray:
        """Left-pad (MSB side) a (set, way, word) store to ``num_words``."""
        if words.shape[2] >= num_words:
            return words
        widened = np.zeros((self.num_sets, self.ways, num_words),
                           dtype=np.uint64)
        widened[:, :, num_words - words.shape[2]:] = words
        return widened

    def _resident_full_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Full signature values of int64-mode lines: tag*num_sets + set.

        Returns ``(full, negative)`` where ``negative`` marks valid
        lines holding a negative signature (the floor-mod int64 edge),
        which has no unsigned-word representation.
        """
        full = (self._tags * self.num_sets
                + np.arange(self.num_sets, dtype=np.int64)[:, None])
        return full, (full < 0) & self._valid_tag

    def _enter_words_mode(self, num_words: int) -> None:
        """Promote (or widen) the tag store to hold full-value words."""
        self._dirty = True
        if self._tag_words is None:
            full, negative = self._resident_full_values()
            if bool(negative.any()):
                # Wrapping a negative resident would break oracle
                # bit-identity, so refuse loudly — same contract as the
                # negative-batch guard in ``_normalize``.
                raise ValueError("negative signatures cannot mix with "
                                 "multi-word signatures")
            words = np.zeros((self.num_sets, self.ways, num_words),
                             dtype=np.uint64)
            words[:, :, -1] = np.where(self._valid_tag, full, 0).astype(
                np.uint64)
            self._tag_words = words
        else:
            self._tag_words = self._widen_tag_words(self._tag_words,
                                                    num_words)

    # ------------------------------------------------------------------
    # Signature phase — batch probe and insert
    # ------------------------------------------------------------------
    def lookup_or_insert_batch(self, signatures) -> tuple[np.ndarray, np.ndarray]:
        """Probe MCACHE with a batch of signatures in arrival order.

        Equivalent to calling the scalar model's ``lookup_or_insert``
        once per element; returns ``(states, entry_ids)`` where
        ``states`` is an ``int8`` array of state codes
        (:data:`~repro.core.hitmap.HIT_CODE` / ``MAU_CODE`` /
        ``MNU_CODE``) and ``entry_ids`` holds the owning cache entry
        (-1 for MNU).
        """
        sigs = self._normalize(signatures)
        if len(sigs) == 0:
            return (np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64))
        unique_values, first_index, inverse = unique_signatures(sigs)
        return self._probe_prepared(unique_values, first_index, inverse,
                                    len(sigs))

    def _match_resident(self, unique_values: np.ndarray,
                        unique_sets: np.ndarray) -> np.ndarray:
        """(U, ways) bool: which candidate lines hold each unique value."""
        candidate_valid = self._valid_tag[unique_sets]
        if unique_values.ndim == 2:
            candidates = self._tag_words[unique_sets]        # (U, ways, W)
            equal = (candidates == unique_values[:, None, :]).all(axis=2)
        else:
            unique_tags = unique_values // self.num_sets
            equal = np.asarray(self._tags[unique_sets]
                               == unique_tags[:, None], dtype=bool)
        return candidate_valid & equal

    def _store_tags(self, unique_values: np.ndarray, inserted: np.ndarray,
                    inserted_sets: np.ndarray,
                    inserted_ways: np.ndarray) -> None:
        """Write the winning signatures' tags into their claimed lines."""
        if unique_values.ndim == 2:
            self._tag_words[inserted_sets, inserted_ways] = \
                unique_values[inserted]
        else:
            self._tags[inserted_sets, inserted_ways] = \
                unique_values[inserted] // self.num_sets

    def _probe_prepared(self, unique_values, first_index, inverse,
                        num_probes) -> tuple[np.ndarray, np.ndarray]:
        """Batch probe/insert given a precomputed group-by of the batch."""
        num_unique = len(unique_values)
        unique_sets = signature_sets(unique_values, self.num_sets)

        # Which unique signatures are already resident?  An empty cache
        # (the per-layer fresh-clear path) skips the (U, ways) candidate
        # gather, which matters for fully-associative geometries.
        unique_entry = np.full(num_unique, -1, dtype=np.int64)
        if self._next_entry_id == 0:
            present = np.zeros(num_unique, dtype=bool)
        else:
            match = self._match_resident(unique_values, unique_sets)
            present = match.any(axis=1)
            present_way = np.argmax(match, axis=1)
            unique_entry[present] = self._line_entry[
                unique_sets[present], present_way[present]]

        # Absent uniques compete for free ways in first-occurrence order.
        absent = np.flatnonzero(~present)
        arrival = absent[np.argsort(first_index[absent], kind="stable")]
        arrival_sets = unique_sets[arrival]
        by_set = np.argsort(arrival_sets, kind="stable")
        sorted_sets = arrival_sets[by_set]
        rank_within_set = rank_within_groups(sorted_sets)

        free_ways = self.ways - self._occupancy[sorted_sets]
        inserted_sorted = rank_within_set < free_ways
        inserted_arrival = np.empty(len(arrival), dtype=bool)
        inserted_arrival[by_set] = inserted_sorted
        # Valid ways form a prefix, so the k-th insertion into a set
        # lands in way occupancy + k (the scalar model's "first invalid
        # way" scan).
        way_sorted = self._occupancy[sorted_sets] + rank_within_set
        way_arrival = np.empty(len(arrival), dtype=np.int64)
        way_arrival[by_set] = way_sorted

        inserted = arrival[inserted_arrival]   # unique indices, arrival order
        inserted_sets = unique_sets[inserted]
        inserted_ways = way_arrival[inserted_arrival]
        new_ids = self._next_entry_id + np.arange(len(inserted), dtype=np.int64)
        self._dirty = True

        self._store_tags(unique_values, inserted, inserted_sets, inserted_ways)
        self._valid_tag[inserted_sets, inserted_ways] = True
        self._line_entry[inserted_sets, inserted_ways] = new_ids
        np.add.at(self._occupancy, inserted_sets, 1)
        self._entry_set = np.concatenate([self._entry_set, inserted_sets])
        self._entry_way = np.concatenate([self._entry_way, inserted_ways])
        self._next_entry_id += len(inserted)
        unique_entry[inserted] = new_ids

        # Per-unique category: 0 resident before batch, 1 inserted, 2 rejected.
        unique_state = np.empty(num_unique, dtype=np.int8)
        unique_state[present] = 0
        unique_state[arrival] = np.where(inserted_arrival, 1, 2)

        is_first = np.zeros(num_probes, dtype=bool)
        is_first[first_index] = True
        # Per-unique categories map straight onto the dense state codes:
        # resident (0) is HIT on every occurrence, inserted (1) is MAU on
        # the first occurrence and HIT afterwards, rejected (2) is MNU —
        # the same numbers as HIT_CODE=0 / MAU_CODE=1 / MNU_CODE=2, so a
        # single in-place fixup of intra-batch hits yields the codes.
        codes = unique_state[inverse]
        codes[(codes == 1) & ~is_first] = HIT_CODE
        counts = np.bincount(codes, minlength=3)
        self.stats.hits += int(counts[0])
        self.stats.mau += int(counts[1])
        self.stats.mnu += int(counts[2])
        return codes, unique_entry[inverse]

    def lookup_or_insert(self, signature: int) -> tuple[HitState, int]:
        """Scalar probe, for API parity with the line-level model."""
        states, entries = self.lookup_or_insert_batch([signature])
        return CODE_TO_STATE[int(states[0])], int(entries[0])

    def probe_batch(self, signatures) -> tuple[np.ndarray, np.ndarray]:
        """Non-mutating batch lookup; returns (present, entry_ids).

        Unlike the insert path, a multi-word probe never promotes the
        tag store: representation mismatches are bridged by a temporary
        word view.  A negative resident (unrepresentable as unsigned
        words) simply cannot match a multi-word probe — a miss, not an
        error.
        """
        arr, wide = coerce_packed(signatures)
        if len(arr) == 0:
            return (np.empty(0, dtype=bool), np.empty(0, dtype=np.int64))

        if not wide and self._tag_words is None:
            sigs = arr
            sets = signature_sets(sigs, self.num_sets)
            match = self._match_resident(sigs, sets)
        else:
            store_words = 1 if self._tag_words is None \
                else self._tag_words.shape[2]
            negative_probe = None
            if not wide:
                # int64 probes against a words-mode store: negatives
                # have no unsigned representation, so they are misses.
                ints = arr.astype(np.int64)
                negative_probe = ints < 0
                arr = np.where(negative_probe, 0, ints)
            sigs = signature_words(arr)
            width = max(sigs.shape[1], store_words)
            sigs = pad_words(sigs, width)
            sets = signature_sets(sigs, self.num_sets)
            candidates, candidate_valid = self._tag_words_view(width)
            match = candidate_valid[sets] & (
                candidates[sets] == sigs[:, None, :]).all(axis=2)
            if negative_probe is not None:
                match &= ~negative_probe[:, None]

        present = match.any(axis=1)
        way = np.argmax(match, axis=1)
        entry_ids = np.full(len(sigs), -1, dtype=np.int64)
        entry_ids[present] = self._line_entry[sets[present], way[present]]
        return present, entry_ids

    def _tag_words_view(self, num_words: int) -> tuple[np.ndarray,
                                                       np.ndarray]:
        """(tags-as-words, matchable-validity) without mutating state.

        The read-path twin of :meth:`_enter_words_mode`: same widening
        and reconstruction, but negative residents are excluded from
        matching (they can never equal an unsigned probe) instead of
        raising.
        """
        if self._tag_words is not None:
            return (self._widen_tag_words(self._tag_words, num_words),
                    self._valid_tag)
        full, negative = self._resident_full_values()
        words = np.zeros((self.num_sets, self.ways, num_words),
                         dtype=np.uint64)
        words[:, :, -1] = np.where(negative | ~self._valid_tag, 0,
                                   full).astype(np.uint64)
        return words, self._valid_tag & ~negative

    def probe(self, signature: int) -> tuple[bool, int]:
        """Non-mutating scalar lookup; returns (present, entry_id)."""
        present, entry_ids = self.probe_batch([signature])
        return bool(present[0]), int(entry_ids[0])

    def replace_line(self, set_index: int, way: int, signature) -> int:
        """Evict the resident of ``(set, way)`` and hand its line to
        ``signature``; returns the new owner's entry id.

        The replacement-policy hook: the victim's tag is overwritten,
        its data slots are invalidated (stale rows must not survive the
        new owner), and a fresh dense entry id is appended — the
        victim's id is orphaned, which is behaviourally invisible
        because probes resolve ids through ``_line_entry``.  Occupancy
        is unchanged, so the valid-way prefix invariant that the batch
        insert relies on still holds.
        """
        if not 0 <= set_index < self.num_sets or not 0 <= way < self.ways:
            raise IndexError(f"({set_index}, {way}) outside the "
                             f"({self.num_sets}, {self.ways}) grid")
        if not self._valid_tag[set_index, way]:
            raise ValueError(f"({set_index}, {way}) holds no line to "
                             f"replace")
        sigs = self._normalize(np.asarray(signature)[None])
        if int(signature_sets(sigs, self.num_sets)[0]) != set_index:
            raise ValueError("signature does not map to the victim's set")
        self._store_tags(sigs, np.array([0]),
                         np.array([set_index]), np.array([way]))
        new_id = self._next_entry_id
        self._line_entry[set_index, way] = new_id
        self._valid_data[set_index, way, :] = False
        self._data[set_index, way, :] = None
        self._entry_set = np.append(self._entry_set, set_index)
        self._entry_way = np.append(self._entry_way, way)
        self._next_entry_id += 1
        self.stats.evictions += 1
        self._dirty = True
        return new_id

    # ------------------------------------------------------------------
    # Hitmap simulation (fresh cache, one batch — the reuse-engine path)
    # ------------------------------------------------------------------
    def simulate(self, signatures) -> HitmapSimulation:
        """Clear the cache, replay one batch and return its Hitmap.

        Produces the same :class:`HitmapSimulation` as
        :func:`repro.core.hitmap_sim.simulate_hitmap` for the same
        geometry; access counters accumulate in :attr:`stats` across
        calls.  Because the replay starts from (and returns to) an empty
        cache — the reuse engine's freshly-cleared-MCACHE-per-layer
        semantics — the classification is exactly the stateless group-by
        simulation, so this hot path skips the persistent probe/insert
        machinery entirely: no tag writes, no entry-id bookkeeping, and
        ``clear`` is a no-op while the cache is already clean.
        """
        self.clear()
        simulation = simulate_hitmap(signatures, num_sets=self.num_sets,
                                     ways=self.ways)
        self.stats.hits += simulation.hits
        self.stats.mau += simulation.mau
        self.stats.mnu += simulation.mnu
        return simulation

    # ------------------------------------------------------------------
    # Data phase — batched VD-bit bookkeeping
    # ------------------------------------------------------------------
    def _locate(self, entry_ids) -> tuple[np.ndarray, np.ndarray]:
        ids = np.atleast_1d(np.asarray(entry_ids, dtype=np.int64))
        if len(ids) and ((ids < 0).any() or (ids >= self._next_entry_id).any()):
            bad = ids[(ids < 0) | (ids >= self._next_entry_id)][0]
            raise KeyError(f"unknown MCACHE entry id {int(bad)}")
        return self._entry_set[ids], self._entry_way[ids]

    def _check_version(self, version: int) -> None:
        if not 0 <= version < self.versions:
            raise IndexError(f"version {version} out of range")

    def write_data_batch(self, entry_ids, values, version: int = 0) -> None:
        """Store one computed result per entry id and set its VD bit."""
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        self._data[sets, ways, version] = values
        self._valid_data[sets, ways, version] = True
        self._dirty = True
        self.stats.data_writes += len(sets)

    def read_data_batch(self, entry_ids, version: int = 0) -> np.ndarray:
        """Fetch previously stored results; raises if any VD bit is unset."""
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        valid = self._valid_data[sets, ways, version]
        if not valid.all():
            bad = np.atleast_1d(np.asarray(entry_ids))[~valid][0]
            raise LookupError(
                f"entry {int(bad)} version {version} has no valid data")
        self.stats.data_reads += len(sets)
        return self._data[sets, ways, version]

    def has_data_batch(self, entry_ids, version: int = 0) -> np.ndarray:
        self._check_version(version)
        sets, ways = self._locate(entry_ids)
        return self._valid_data[sets, ways, version]

    def write_data(self, entry_id: int, value, version: int = 0) -> None:
        self._check_version(version)
        sets, ways = self._locate([entry_id])
        self._data[sets[0], ways[0], version] = value
        self._valid_data[sets[0], ways[0], version] = True
        self._dirty = True
        self.stats.data_writes += 1

    def read_data(self, entry_id: int, version: int = 0):
        return self.read_data_batch([entry_id], version=version)[0]

    def has_data(self, entry_id: int, version: int = 0) -> bool:
        return bool(self.has_data_batch([entry_id], version=version)[0])

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_data(self, version: int | None = None) -> None:
        """Flash-clear VD bits (tags stay valid) — synchronous design."""
        if version is None:
            self._valid_data[:] = False
            self._data[:] = None
        else:
            self._check_version(version)
            self._valid_data[:, :, version] = False
            self._data[:, :, version] = None

    def clear(self) -> None:
        """Full reset (new channel / new set of input vectors)."""
        if not self._dirty:
            return
        self._dirty = False
        self._valid_tag[:] = False
        self._tag_words = None
        self._line_entry[:] = -1
        self._occupancy[:] = 0
        self._valid_data[:] = False
        self._data[:] = None
        self._entry_set = np.empty(0, dtype=np.int64)
        self._entry_way = np.empty(0, dtype=np.int64)
        self._next_entry_id = 0

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of lines with a valid tag."""
        return int(self._valid_tag.sum())

    def utilization(self) -> float:
        return self.occupancy() / self.entries

    def __repr__(self) -> str:  # pragma: no cover
        return (f"VectorizedMCache(entries={self.entries}, ways={self.ways}, "
                f"versions={self.versions}, occupancy={self.occupancy()})")
