"""Pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import conv_output_size
from repro.nn.module import Module


class MaxPool2D(Module):
    """Max pooling over non-overlapping or strided square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(height, k, s, 0)
        out_w = conv_output_size(width, k, s, 0)

        out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
        argmax = np.empty((batch, channels, out_h, out_w), dtype=np.int64)
        for i in range(out_h):
            for j in range(out_w):
                window = x[:, :, i * s:i * s + k, j * s:j * s + k]
                flat = window.reshape(batch, channels, -1)
                idx = flat.argmax(axis=2)
                argmax[:, :, i, j] = idx
                out[:, :, i, j] = np.take_along_axis(
                    flat, idx[:, :, None], axis=2)[:, :, 0]

        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, argmax = self._cache
        batch, channels, height, width = input_shape
        k, s = self.kernel_size, self.stride
        _, _, out_h, out_w = grad_output.shape

        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        for i in range(out_h):
            for j in range(out_w):
                idx = argmax[:, :, i, j]
                di, dj = np.divmod(idx, k)
                rows = i * s + di
                cols = j * s + dj
                b_idx, c_idx = np.meshgrid(np.arange(batch), np.arange(channels),
                                           indexing="ij")
                np.add.at(grad_input, (b_idx, c_idx, rows, cols),
                          grad_output[:, :, i, j])
        return grad_input


class AvgPool2D(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(height, k, s, 0)
        out_w = conv_output_size(width, k, s, 0)

        out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
        for i in range(out_h):
            for j in range(out_w):
                window = x[:, :, i * s:i * s + k, j * s:j * s + k]
                out[:, :, i, j] = window.mean(axis=(2, 3))

        self._cache = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape = self._cache
        k, s = self.kernel_size, self.stride
        _, _, out_h, out_w = grad_output.shape

        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        scale = 1.0 / (k * k)
        for i in range(out_h):
            for j in range(out_w):
                grad_input[:, :, i * s:i * s + k, j * s:j * s + k] += (
                    grad_output[:, :, i, j][:, :, None, None] * scale)
        return grad_input


class GlobalAvgPool2D(Module):
    """Average over the full spatial extent, producing ``(batch, channels)``."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._cache
        scale = 1.0 / (height * width)
        grad = grad_output[:, :, None, None] * scale
        return np.broadcast_to(grad, self._cache).copy()
