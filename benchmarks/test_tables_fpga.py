"""Tables II, III and IV: FPGA resource usage and on-chip power.

The rows are produced by the calibrated Virtex-7 model; configurations
published in the paper are reproduced exactly, others are interpolated.
"""

from benchmarks.harness import print_header
from repro.accelerator import FPGAModel
from repro.analysis import format_table

COLUMNS = ["cache_size", "sets", "ways", "slice_luts", "slice_registers",
           "block_ram", "dsp48", "total"]


def _rows_to_table(rows):
    return [[row.get(col, "") for col in COLUMNS] for row in rows]


def test_table2_resource_and_power_vs_sets(benchmark):
    fpga = FPGAModel()
    rows = benchmark.pedantic(fpga.table2_rows, rounds=1, iterations=1)

    print_header("Table II — MERCURY resources/power vs number of sets "
                 "(16 ways)")
    print(format_table(COLUMNS, _rows_to_table(rows), "{:.1f}"))

    assert [row["sets"] for row in rows] == [16, 32, 48, 64]
    assert rows[-1]["slice_luts"] == 216918
    assert rows[-1]["total"] == 1.929
    # Quadrupling the sets costs ~6.5% power (paper's headline trend).
    assert rows[-1]["total"] / rows[0]["total"] < 1.08


def test_table3_resource_and_power_vs_ways(benchmark):
    fpga = FPGAModel()
    rows = benchmark.pedantic(fpga.table3_rows, rounds=1, iterations=1)

    print_header("Table III — MERCURY resources/power vs number of ways "
                 "(64 sets)")
    print(format_table(COLUMNS, _rows_to_table(rows), "{:.1f}"))

    assert [row["ways"] for row in rows] == [2, 4, 8, 16]
    registers = [row["slice_registers"] for row in rows]
    assert registers == sorted(registers)
    # 2 -> 16 ways costs ~4% power.
    assert rows[-1]["total"] / rows[0]["total"] < 1.05


def test_table4_mercury_vs_baseline(benchmark):
    fpga = FPGAModel()
    rows = benchmark.pedantic(fpga.table4_rows, rounds=1, iterations=1)

    print_header("Table IV — MERCURY vs baseline (1024 entries, 16 ways)")
    columns = ["method", "slice_luts", "slice_registers", "block_ram",
               "dsp48", "total"]
    print(format_table(columns,
                       [[row[col] for col in columns] for row in rows],
                       "{:.1f}"))
    overhead = fpga.power_overhead(64, 16)
    print(f"power overhead: {overhead:.3f}x (paper: ~1.13x)")

    baseline, mercury = rows
    assert baseline["method"] == "Baseline" and mercury["method"] == "MERCURY"
    assert mercury["slice_luts"] > baseline["slice_luts"]
    assert mercury["dsp48"] == baseline["dsp48"] == 198
    assert 1.10 < overhead < 1.20
