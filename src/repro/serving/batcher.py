"""Asyncio micro-batching request queue.

Requests arrive one at a time; the accelerator-style backend wants
whole batches (and the reuse caches get their intra-batch dedup from
them).  :class:`MicroBatcher` sits between the two: ``submit`` enqueues
a payload and awaits its result, while a single collector task drains
the queue into batches bounded by ``max_batch_size`` and
``max_wait_s`` — a full batch leaves immediately, a partial one leaves
when its oldest request has waited long enough.  The queue itself is
bounded (``max_queue``), so a slow backend exerts backpressure on
producers instead of buffering without limit (the INFN-style
queued-scale-out behaviour under bursty load: absorb, then drain).

Telemetry is bounded too: a serve-forever process must not grow one
list entry per request, so :class:`BatcherTelemetry` keeps exact
running counters (counts, row totals, latency sum) plus a fixed-size
deterministic :class:`Reservoir` sample of the latency and batch-size
distributions — percentiles computed from the sample stay within a few
percent of the exact values at any stream length (regression-tested).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import LogHistogram

#: Default sample capacity of one telemetry reservoir.  4096 points keep
#: p50/p99 within a few percent of the exact stream percentiles while
#: bounding memory at ~32 KiB per metric regardless of uptime.
RESERVOIR_CAPACITY = 4096


@dataclass(frozen=True)
class BatcherConfig:
    """Micro-batching knobs."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    max_queue: int = 1024

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")


class Reservoir:
    """Fixed-size uniform sample of an unbounded value stream.

    Classic reservoir sampling (Algorithm R) with a seeded generator,
    so a given stream always yields the same sample — sweep rows and
    regression tests stay reproducible.  Until ``capacity`` values have
    been recorded the sample *is* the stream (exact); past that, each
    value replaces a uniformly random slot with probability
    ``capacity / count``.
    """

    __slots__ = ("capacity", "count", "_values", "_rng")

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self._values: list[float] = []
        self._rng = np.random.default_rng(seed)

    def record(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.capacity:
            self._values[slot] = float(value)

    @property
    def saturated(self) -> bool:
        """Whether eviction has begun (the sample is no longer exact)."""
        return self.count > self.capacity

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def values_since(self, mark: int) -> np.ndarray:
        """Values recorded after ``mark`` (a prior :attr:`count`).

        Exact while the reservoir has not evicted — the common case for
        one bounded run (a replay, a test) on a fresh batcher.  On a
        saturated reservoir the suffix is no longer identifiable, so
        the full sample is returned as the best available
        approximation of the recent distribution.
        """
        if not self.saturated and 0 <= mark <= len(self._values):
            return np.asarray(self._values[mark:], dtype=np.float64)
        return self.values()

    def absorb(self, other: "Reservoir") -> None:
        """Fold another reservoir's sample in (for aggregate reports)."""
        self.count += other.count
        self._values.extend(other._values)


@dataclass
class BatcherTelemetry:
    """Latency/batch-shape measurements of one batcher lifetime.

    Counters (``submitted``/``completed``/``failed``/``batches``/
    ``rows``/``latency_sum_s``) are exact forever; the latency and
    batch-size *distributions* are bounded reservoir samples, so a
    serve-forever process holds a fixed amount of telemetry no matter
    how many requests it sees.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Micro-batches executed / total rows across them (exact).
    batches: int = 0
    rows: int = 0
    latency_sum_s: float = 0.0
    latencies: Reservoir = field(default_factory=Reservoir)
    batch_sizes: Reservoir = field(
        default_factory=lambda: Reservoir(seed=1))
    #: Streaming log-bucket distribution summaries: exact-rank
    #: percentiles within bucket-width error at any stream length.
    #: The reservoirs above stay as the differential oracle (exact
    #: until saturation; regression-tested against these).
    latency_hist: LogHistogram = field(default_factory=LogHistogram)
    batch_size_hist: LogHistogram = field(default_factory=LogHistogram)
    #: Optional telemetry bus hookup (set by the owning server when
    #: observability is enabled; ``None`` keeps recording bus-free).
    bus: object = None
    source: str = ""

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.rows += int(size)
        self.batch_sizes.record(size)
        self.batch_size_hist.record(size)
        if self.bus is not None:
            self.bus.emit("batcher.batch", source=self.source,
                          size=int(size))

    def record_latency(self, latency_s: float) -> None:
        self.latency_sum_s += float(latency_s)
        self.latencies.record(latency_s)
        self.latency_hist.record(latency_s)
        if self.bus is not None:
            self.bus.emit("batcher.latency", source=self.source,
                          latency_s=float(latency_s))

    def latency_mark(self) -> int:
        """A token for :meth:`latencies_since` (the current count)."""
        return self.latencies.count

    def latencies_since(self, mark: int) -> np.ndarray:
        return self.latencies.values_since(mark)

    def latency_values(self) -> np.ndarray:
        return self.latencies.values()

    @property
    def mean_batch_size(self) -> float:
        """Exact at any stream length (running totals, not the sample)."""
        if not self.batches:
            return 0.0
        return self.rows / self.batches

    @classmethod
    def aggregate(cls, telemetries) -> "BatcherTelemetry":
        """Merge several batchers' telemetry (the sharded server's view).

        Counters sum exactly; the merged latency/batch-size samples
        concatenate (a report-grade view — the aggregate object is
        transient, so its sample is allowed to exceed one reservoir's
        capacity).
        """
        total = cls()
        for telemetry in telemetries:
            total.submitted += telemetry.submitted
            total.completed += telemetry.completed
            total.failed += telemetry.failed
            total.batches += telemetry.batches
            total.rows += telemetry.rows
            total.latency_sum_s += telemetry.latency_sum_s
            total.latencies.absorb(telemetry.latencies)
            total.batch_sizes.absorb(telemetry.batch_sizes)
            total.latency_hist.merge(telemetry.latency_hist)
            total.batch_size_hist.merge(telemetry.batch_size_hist)
        return total


class _Pending:
    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload, future, enqueued_at):
        self.payload = payload
        self.future = future
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Bounded queue + collector loop around a batch-processing callable.

    ``process_batch(payloads: list) -> list`` is called with up to
    ``max_batch_size`` payloads and must return one result per payload
    in order; it runs inside the event loop (numpy work releases the
    GIL quickly enough at this scale).  Exceptions fail every request
    of the batch individually — the loop keeps serving.
    """

    def __init__(self, process_batch, config: BatcherConfig | None = None):
        self.process_batch = process_batch
        self.config = config or BatcherConfig()
        self.telemetry = BatcherTelemetry()
        self._queue: asyncio.Queue | None = None
        self._collector: asyncio.Task | None = None
        self._closed = False
        # Submissions past the _closed check but not yet resolved.
        # stop() must not cancel the collector while any exist: a put
        # that lands after queue.join() would otherwise orphan its
        # future forever.
        self._inflight = 0
        # Set whenever _inflight is zero; stop() awaits it instead of
        # spinning the event loop with zero-delay sleeps.
        self._drained: asyncio.Event | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._collector is not None:
            raise RuntimeError("batcher already started")
        self._closed = False
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._drained = asyncio.Event()
        if not self._inflight:
            self._drained.set()
        self._collector = asyncio.get_running_loop().create_task(
            self._collect())

    async def stop(self) -> None:
        """Drain in-flight submissions, then cancel the collector."""
        if self._collector is None:
            return
        self._closed = True
        # Wait for every admitted submission to resolve — not just the
        # queue to empty: a submit suspended at its put() has nothing
        # in the queue yet, and joining too early would strand it.  The
        # drained event is set by the last in-flight submit, so this
        # parks instead of busy-polling the loop.
        await self._drained.wait()
        await self._queue.join()
        self._collector.cancel()
        try:
            await self._collector
        except asyncio.CancelledError:
            pass
        self._collector = None
        self._queue = None

    @property
    def running(self) -> bool:
        return self._collector is not None

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet collected)."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    async def submit(self, payload):
        """Enqueue one payload and await its result.

        Awaiting the bounded queue's ``put`` is the backpressure: when
        ``max_queue`` requests are in flight, producers stall here.
        """
        if self._queue is None or self._closed:
            raise RuntimeError("batcher is not running")
        future = asyncio.get_running_loop().create_future()
        pending = _Pending(payload, future, time.perf_counter())
        self.telemetry.submitted += 1
        self._inflight += 1
        self._drained.clear()
        try:
            await self._queue.put(pending)
            return await future
        finally:
            self._inflight -= 1
            if not self._inflight:
                self._drained.set()

    # ------------------------------------------------------------------
    async def _collect(self) -> None:
        config = self.config
        queue = self._queue
        while True:
            first = await queue.get()
            batch = [first]
            deadline = first.enqueued_at + config.max_wait_s
            while len(batch) < config.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    # Deadline passed: take whatever is already queued,
                    # without waiting for more.
                    try:
                        batch.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                    continue
                try:
                    batch.append(await asyncio.wait_for(queue.get(),
                                                        timeout=remaining))
                except asyncio.TimeoutError:
                    break
            self._run_batch(batch)
            for _ in batch:
                queue.task_done()

    def _run_batch(self, batch: list) -> None:
        self.telemetry.record_batch(len(batch))
        try:
            results = self.process_batch([item.payload for item in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"process_batch returned {len(results)} results "
                    f"for {len(batch)} payloads")
        except Exception as error:  # noqa: BLE001 — fail requests, not loop
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        RuntimeError(f"batch processing failed: {error}"))
            self.telemetry.failed += len(batch)
            return
        now = time.perf_counter()
        for item, result in zip(batch, results):
            self.telemetry.record_latency(now - item.enqueued_at)
            self.telemetry.completed += 1
            if not item.future.done():
                item.future.set_result(result)
