"""Registry mapping the paper's twelve model names to builders."""

from __future__ import annotations

from repro.models.alexnet import build_alexnet
from repro.models.googlenet import build_googlenet
from repro.models.inception import build_inception_v4
from repro.models.mobilenet import build_mobilenet_v2
from repro.models.resnet import build_resnet50, build_resnet101, build_resnet152
from repro.models.spec import ModelSpec
from repro.models.squeezenet import build_squeezenet
from repro.models.transformer import build_transformer
from repro.models.vgg import build_vgg13, build_vgg16, build_vgg19

_DEFAULT_IMAGE_SHAPE = (3, 32, 32)
_DEFAULT_NUM_CLASSES = 8
_DEFAULT_SEQ_LEN = 12
_DEFAULT_VOCAB = 64

_SPECS = {
    "alexnet": ModelSpec("alexnet", "cnn", _DEFAULT_IMAGE_SHAPE,
                         _DEFAULT_NUM_CLASSES, 1.0,
                         "5 conv + 3 FC layers"),
    "googlenet": ModelSpec("googlenet", "cnn", _DEFAULT_IMAGE_SHAPE,
                           _DEFAULT_NUM_CLASSES, 1.5,
                           "stem + 3 inception blocks"),
    "resnet50": ModelSpec("resnet50", "cnn", _DEFAULT_IMAGE_SHAPE,
                          _DEFAULT_NUM_CLASSES, 2.0,
                          "8 residual blocks in 4 stages"),
    "resnet101": ModelSpec("resnet101", "cnn", _DEFAULT_IMAGE_SHAPE,
                           _DEFAULT_NUM_CLASSES, 3.0,
                           "12 residual blocks in 4 stages"),
    "resnet152": ModelSpec("resnet152", "cnn", _DEFAULT_IMAGE_SHAPE,
                           _DEFAULT_NUM_CLASSES, 4.0,
                           "16 residual blocks in 4 stages"),
    "vgg13": ModelSpec("vgg13", "cnn", _DEFAULT_IMAGE_SHAPE,
                       _DEFAULT_NUM_CLASSES, 2.2, "10 convolution layers"),
    "vgg16": ModelSpec("vgg16", "cnn", _DEFAULT_IMAGE_SHAPE,
                       _DEFAULT_NUM_CLASSES, 2.8, "13 convolution layers"),
    "vgg19": ModelSpec("vgg19", "cnn", _DEFAULT_IMAGE_SHAPE,
                       _DEFAULT_NUM_CLASSES, 3.4, "16 convolution layers"),
    "inception_v4": ModelSpec("inception_v4", "cnn", _DEFAULT_IMAGE_SHAPE,
                              _DEFAULT_NUM_CLASSES, 3.2,
                              "stem + 4 inception blocks"),
    "mobilenet_v2": ModelSpec("mobilenet_v2", "cnn", _DEFAULT_IMAGE_SHAPE,
                              _DEFAULT_NUM_CLASSES, 1.2,
                              "separable convolution stacks"),
    "squeezenet": ModelSpec("squeezenet", "cnn", _DEFAULT_IMAGE_SHAPE,
                            _DEFAULT_NUM_CLASSES, 0.8, "3 fire modules"),
    "transformer": ModelSpec("transformer", "transformer",
                             (_DEFAULT_SEQ_LEN,), _DEFAULT_VOCAB, 1.4,
                             "2 encoder blocks, 4 heads"),
}

_BUILDERS = {
    "alexnet": build_alexnet,
    "googlenet": build_googlenet,
    "resnet50": build_resnet50,
    "resnet101": build_resnet101,
    "resnet152": build_resnet152,
    "vgg13": build_vgg13,
    "vgg16": build_vgg16,
    "vgg19": build_vgg19,
    "inception_v4": build_inception_v4,
    "mobilenet_v2": build_mobilenet_v2,
    "squeezenet": build_squeezenet,
    "transformer": build_transformer,
}

MODEL_NAMES = list(_SPECS)
CNN_MODEL_NAMES = [name for name, spec in _SPECS.items() if spec.kind == "cnn"]


def get_spec(name: str) -> ModelSpec:
    """Metadata for one model zoo entry."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {MODEL_NAMES}") from None


def build_model(name: str, num_classes: int | None = None, seed: int = 0):
    """Instantiate a model zoo entry.

    For CNNs ``num_classes`` overrides the default class count; the
    transformer's output size is its vocabulary and is configured
    through :func:`repro.models.transformer.build_transformer` directly.
    """
    spec = get_spec(name)
    builder = _BUILDERS[name]
    if spec.kind == "transformer":
        vocab = num_classes or spec.num_classes
        return builder(vocab_size=vocab, seed=seed)
    classes = num_classes or spec.num_classes
    return builder(num_classes=classes, seed=seed)
