"""Tests for the model zoo and the synthetic datasets."""

import numpy as np
import pytest

from repro.data import (BatchLoader, ClusteredImageDataset, ImageDatasetConfig,
                        TranslationConfig, TranslationDataset, train_test_split)
from repro.models import CNN_MODEL_NAMES, MODEL_NAMES, build_model, get_spec
from repro.models.blocks import (ConvBNReLU, FireBlock, InceptionBlock,
                                 ResidualBlock, SeparableBlock,
                                 TransformerEncoderBlock)
from repro.models.vgg import conv_layer_count
from repro.nn import CrossEntropyLoss

RNG = np.random.default_rng(5)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_has_twelve_models():
    assert len(MODEL_NAMES) == 12
    assert len(CNN_MODEL_NAMES) == 11
    assert "transformer" in MODEL_NAMES


def test_get_spec_and_unknown_model():
    spec = get_spec("vgg13")
    assert spec.kind == "cnn"
    with pytest.raises(ValueError):
        get_spec("lenet")
    with pytest.raises(ValueError):
        build_model("lenet")


def test_vgg13_has_ten_convolutions():
    assert conv_layer_count("vgg13") == 10
    assert conv_layer_count("vgg16") == 13
    assert conv_layer_count("vgg19") == 16


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_every_model_runs_forward_and_backward(name):
    spec = get_spec(name)
    model = build_model(name, seed=0)
    if spec.kind == "cnn":
        x = RNG.normal(size=(2, *spec.input_shape))
        y = RNG.integers(0, spec.num_classes, size=2)
    else:
        x = RNG.integers(0, spec.num_classes, size=(2, spec.input_shape[0]))
        y = RNG.integers(0, spec.num_classes, size=(2, spec.input_shape[0]))
    loss_fn = CrossEntropyLoss()
    logits = model(x)
    assert logits.shape[-1] == spec.num_classes
    loss = loss_fn(logits, y)
    assert np.isfinite(loss)
    model.zero_grad()
    model.backward(loss_fn.backward())
    # Every parameter receives some gradient signal somewhere.
    grads = np.concatenate([p.grad.reshape(-1) for p in model.parameters()])
    assert np.any(grads != 0)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_layer_names_are_unique(name):
    model = build_model(name, seed=0)
    names = [m.layer_name for m in model.modules()]
    assert len(names) == len(set(names))


def test_resnet_family_size_ordering():
    sizes = [build_model(n).num_parameters()
             for n in ("resnet50", "resnet101", "resnet152")]
    assert sizes == sorted(sizes)


def test_vgg_family_size_ordering():
    sizes = [build_model(n).num_parameters() for n in ("vgg13", "vgg16", "vgg19")]
    assert sizes == sorted(sizes)


# ----------------------------------------------------------------------
# Blocks
# ----------------------------------------------------------------------
def _roundtrip(block, x):
    out = block(x)
    grad = block.backward(np.ones_like(out))
    assert grad.shape == x.shape
    return out


def test_residual_block_shapes_and_projection():
    block = ResidualBlock(4, 8, stride=2, seed=0)
    out = _roundtrip(block, RNG.normal(size=(2, 4, 8, 8)))
    assert out.shape == (2, 8, 4, 4)
    identity = ResidualBlock(4, 4, stride=1, seed=0)
    assert identity.shortcut_conv is None


def test_inception_block_concatenates_branches():
    block = InceptionBlock(6, (2, 3, 4), seed=0)
    out = _roundtrip(block, RNG.normal(size=(1, 6, 8, 8)))
    assert out.shape == (1, 9, 8, 8)
    assert block.out_channels == 9


def test_fire_block_output_channels():
    block = FireBlock(8, 4, 6, seed=0)
    out = _roundtrip(block, RNG.normal(size=(1, 8, 6, 6)))
    assert out.shape == (1, 12, 6, 6)


def test_separable_block():
    block = SeparableBlock(4, 10, stride=2, seed=0)
    out = _roundtrip(block, RNG.normal(size=(1, 4, 8, 8)))
    assert out.shape == (1, 10, 4, 4)


def test_conv_bn_relu_is_nonnegative():
    block = ConvBNReLU(3, 4, seed=0)
    out = block(RNG.normal(size=(2, 3, 6, 6)))
    assert np.all(out >= 0)


def test_transformer_encoder_block_preserves_shape():
    block = TransformerEncoderBlock(8, 2, 16, seed=0)
    out = _roundtrip(block, RNG.normal(size=(2, 5, 8)))
    assert out.shape == (2, 5, 8)


# ----------------------------------------------------------------------
# Image dataset
# ----------------------------------------------------------------------
def test_image_dataset_shapes_and_labels():
    config = ImageDatasetConfig(num_classes=4, samples_per_class=6, image_size=16)
    dataset = ClusteredImageDataset(config)
    assert len(dataset) == 24
    assert dataset.images.shape == (24, 3, 16, 16)
    assert set(np.unique(dataset.labels)) == set(range(4))
    image, label = dataset[0]
    assert image.shape == dataset.input_shape
    assert 0 <= label < 4


def test_image_dataset_is_deterministic():
    config = ImageDatasetConfig(num_classes=3, samples_per_class=4, image_size=12)
    a = ClusteredImageDataset(config)
    b = ClusteredImageDataset(config)
    np.testing.assert_array_equal(a.images, b.images)


def test_image_dataset_classes_are_separable():
    """Class prototypes are far apart relative to the sample noise."""
    config = ImageDatasetConfig(num_classes=3, samples_per_class=10, image_size=16)
    dataset = ClusteredImageDataset(config)
    prototypes = dataset.prototypes
    across = np.mean([np.abs(prototypes[a] - prototypes[b]).mean()
                      for a in range(3) for b in range(a + 1, 3)])
    assert across > 3 * config.noise_std


def test_image_dataset_has_patch_similarity():
    """The property MERCURY exploits: repeated patch signatures."""
    from repro.core.rpq import RPQHasher
    from repro.nn.im2col import im2col
    dataset = ClusteredImageDataset(ImageDatasetConfig(num_classes=3,
                                                       samples_per_class=4,
                                                       image_size=16))
    cols = im2col(dataset.images[:4, :1], 3, 3)
    similarity = RPQHasher(seed=1).similarity_fraction(cols, 20)
    assert similarity > 0.3


def test_image_dataset_validation():
    with pytest.raises(ValueError):
        ImageDatasetConfig(num_classes=1)
    with pytest.raises(ValueError):
        ImageDatasetConfig(image_size=4)


# ----------------------------------------------------------------------
# Translation dataset
# ----------------------------------------------------------------------
def test_translation_dataset_mapping_is_deterministic():
    dataset = TranslationDataset(TranslationConfig(num_samples=20))
    np.testing.assert_array_equal(dataset.targets,
                                  dataset.translate(dataset.sources))
    assert dataset.sources.shape == dataset.targets.shape


def test_translation_tokens_in_vocab():
    dataset = TranslationDataset(TranslationConfig(vocab_size=32, num_samples=10))
    assert dataset.sources.max() < 32
    assert dataset.targets.max() < 32
    assert dataset.vocab_size == 32


def test_translation_mapping_is_a_permutation():
    dataset = TranslationDataset()
    mapping = dataset.token_mapping
    assert len(set(mapping.tolist())) == len(mapping)
    assert mapping[0] == dataset.PAD


def test_translation_validation():
    with pytest.raises(ValueError):
        TranslationConfig(vocab_size=4)
    with pytest.raises(ValueError):
        TranslationConfig(sequence_length=4, slots_per_sentence=4)


# ----------------------------------------------------------------------
# Loaders
# ----------------------------------------------------------------------
def test_train_test_split_partitions():
    inputs = np.arange(40).reshape(20, 2)
    labels = np.arange(20)
    xtr, ytr, xte, yte = train_test_split(inputs, labels, test_fraction=0.25,
                                          seed=1)
    assert len(xtr) == 15 and len(xte) == 5
    assert set(ytr.tolist()) | set(yte.tolist()) == set(range(20))


def test_train_test_split_validation():
    with pytest.raises(ValueError):
        train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(np.zeros((4, 1)), np.zeros(3))


def test_batch_loader_covers_all_samples():
    inputs = np.arange(10)[:, None]
    labels = np.arange(10)
    loader = BatchLoader(inputs, labels, batch_size=3, shuffle=True, seed=0)
    assert len(loader) == 4
    seen = []
    for batch_inputs, batch_labels in loader:
        assert len(batch_inputs) == len(batch_labels)
        seen.extend(batch_labels.tolist())
    assert sorted(seen) == list(range(10))


def test_batch_loader_validation():
    with pytest.raises(ValueError):
        BatchLoader(np.zeros((3, 1)), np.zeros(2))
    with pytest.raises(ValueError):
        BatchLoader(np.zeros((3, 1)), np.zeros(3), batch_size=0)
