"""Microbenchmark: batch MCACHE engine vs the scalar oracle.

Replays the signature trace of one VGG-13 convolution layer (the
112x112 conv2 stage at paper scale: 12,544 extracted 3x3 input vectors,
hashed with the default 20-bit RPQ) through both MCACHE models and
checks that the vectorized engine is at least 5x faster while producing
bit-identical Hitmap decisions.
"""

import time

import numpy as np

from benchmarks.harness import print_header
from repro.core.mcache import MCache
from repro.core.mcache_vec import VectorizedMCache
from repro.core.rpq import RPQHasher
from repro.nn.im2col import im2col

# VGG-13 conv2: 112x112 output positions, 3x3 kernels (workloads.py).
SPATIAL = 112
KERNEL = 3
SIGNATURE_BITS = 20
ENTRIES, WAYS = 1024, 16


def vgg13_conv_trace() -> np.ndarray:
    """RPQ signatures of one channel of the VGG-13 conv2 layer.

    The feature map is piecewise constant over 8x8 blocks, reproducing
    the high input similarity the paper measures in early conv layers
    (Figure 1): most 3x3 patches repeat, with variety along block edges.
    """
    rng = np.random.default_rng(42)
    side = SPATIAL + KERNEL - 1
    blocks = rng.normal(size=(side // 8 + 1, side // 8 + 1))
    image = np.repeat(np.repeat(blocks, 8, axis=0), 8, axis=1)[:side, :side]
    vectors = im2col(image[None, None], KERNEL, KERNEL)
    return RPQHasher(seed=1).signatures(vectors, SIGNATURE_BITS)


def scalar_replay(trace: np.ndarray):
    cache = MCache(entries=ENTRIES, ways=WAYS)
    states = [cache.lookup_or_insert(int(signature))[0].code
              for signature in trace]
    return states, cache.stats


def run_benchmark():
    trace = vgg13_conv_trace()
    vectorized = VectorizedMCache(entries=ENTRIES, ways=WAYS)
    vectorized.simulate(trace)  # warm-up (allocations, caches)

    start = time.perf_counter()
    scalar_states, scalar_stats = scalar_replay(trace)
    scalar_seconds = time.perf_counter() - start

    vectorized_seconds = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        simulation = vectorized.simulate(trace)
        vectorized_seconds = min(vectorized_seconds,
                                 time.perf_counter() - start)

    assert list(simulation.states) == scalar_states
    assert (simulation.hits, simulation.mau, simulation.mnu) == \
        (scalar_stats.hits, scalar_stats.mau, scalar_stats.mnu)
    return {"vectors": len(trace), "scalar_s": scalar_seconds,
            "vectorized_s": vectorized_seconds,
            "speedup": scalar_seconds / vectorized_seconds,
            "hit_fraction": simulation.hits / len(trace)}


def test_vectorized_mcache_speedup():
    result = run_benchmark()

    print_header("MCACHE engine microbenchmark — VGG-13 conv2 layer trace")
    print(f"vectors:            {result['vectors']}")
    print(f"hit fraction:       {result['hit_fraction']:.2f}")
    print(f"scalar oracle:      {result['scalar_s'] * 1e3:8.2f} ms")
    print(f"vectorized engine:  {result['vectorized_s'] * 1e3:8.2f} ms")
    print(f"speedup:            {result['speedup']:8.1f}x")

    assert result["vectors"] == SPATIAL * SPATIAL
    # Acceptance bar: the batch engine must beat the scalar model by >=5x
    # on a layer-level trace (it is typically well beyond that).
    assert result["speedup"] >= 5.0
