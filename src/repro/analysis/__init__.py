"""Characterisation utilities (similarity measurement, sweeps, reporting)."""

from repro.analysis.similarity import (
    LayerSimilarity,
    measure_layer_similarity,
    measure_unique_vectors,
    rpq_unique_vector_experiment,
)
from repro.analysis.reporting import (format_rows, format_table, geomean,
                                      render_results)
from repro.analysis.grid import GridResults, expand_grid, run_grid
from repro.analysis.sweep import (
    SweepPoint,
    SweepResults,
    build_grid,
    evaluate_point,
    measure_hit_scale,
    run_sweep,
)
from repro.analysis.functional_sweep import (
    FunctionalPoint,
    FunctionalSweepResults,
    build_functional_grid,
    evaluate_functional_point,
    run_functional_sweep,
)
from repro.analysis.serving_sweep import (
    ServingPoint,
    ServingSweepResults,
    build_serving_grid,
    evaluate_serving_point,
    run_serving_sweep,
)

__all__ = [
    "GridResults",
    "expand_grid",
    "run_grid",
    "FunctionalPoint",
    "FunctionalSweepResults",
    "build_functional_grid",
    "evaluate_functional_point",
    "run_functional_sweep",
    "LayerSimilarity",
    "measure_layer_similarity",
    "measure_unique_vectors",
    "rpq_unique_vector_experiment",
    "format_rows",
    "format_table",
    "geomean",
    "render_results",
    "ServingPoint",
    "ServingSweepResults",
    "build_serving_grid",
    "evaluate_serving_point",
    "run_serving_sweep",
    "SweepPoint",
    "SweepResults",
    "build_grid",
    "evaluate_point",
    "measure_hit_scale",
    "run_sweep",
]
