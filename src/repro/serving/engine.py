"""Cross-request reuse engines for inference serving.

Training batches are single-use: the reuse engine flash-clears its
MCACHE for every layer call, so similarity is only exploited *within* a
batch.  Serving traffic is the opposite regime — many requests repeat
(hot keys, retries, shared prefixes) — so here the
signature-indexed result cache is *persistent*: its tags, data and
access counters survive across micro-batches, and admission/eviction is
governed by an explicit :class:`ServingPolicy`.

Both regimes share one probe/insert + cache-ride implementation,
:class:`repro.core.session.ReuseSession` — training instantiates it in
flash mode, serving in persistent mode — so the two engines cannot
drift.  :class:`SignatureResultCache` is the serving-facing persistent
session; two granularities build on it:

* **request** — the whole input is one vector; a hit serves the cached
  network output without touching the model.  With ``exact_check`` the
  stored payload is compared bit-for-bit, so a hit can only reuse the
  output of an *identical* request: reuse is exact and the served
  output is byte-identical to what the model would have produced for
  that request (the golden determinism suite pins this).
* **vector** — every layer routed through
  :class:`ServingReuseEngine.matmul` probes a per-layer persistent
  cache with its RPQ signatures, the serving analogue of the training
  engine's Hitmap phase.  Hits copy dot-product rows computed in
  *earlier* batches; telemetry mirrors the training
  :class:`~repro.core.stats.ReuseStats` per layer.

A note on exactness: copying a row that an identical vector produced in
an earlier batch is numerically exact reuse, but BLAS kernels choose
different reduction orders for different matrix shapes, so a reused row
and a freshly computed row in a *differently shaped* batch may differ
in the last bits (~1e-16 relative).  The serving sweep therefore
measures output deviation against an engine-less oracle per scenario;
bit-identity is guaranteed (and regression-tested) for the
request-granularity exact configuration with per-request compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rpq import RPQHasher
from repro.core.session import (ADMISSION_POLICIES, CacheCounters,
                                ReuseSession, ServeOutcome, SessionPolicy)
from repro.core.stats import ReuseStats

__all__ = [
    "ADMISSION_POLICIES",
    "CacheCounters",
    "ServeOutcome",
    "ServingPolicy",
    "ServingReuseEngine",
    "SignatureResultCache",
]


@dataclass(frozen=True)
class ServingPolicy(SessionPolicy):
    """Admission/eviction policy of the serving caches.

    Extends the shared :class:`~repro.core.session.SessionPolicy` (the
    capacity geometry, TTL, exact-check and admission knobs every
    :class:`~repro.core.session.ReuseSession` understands) with the
    serving-only axes: which cache granularities are active, which
    layers the vector cache covers, and how misses are computed.
    ``layers`` restricts vector-granularity reuse to layers whose name
    contains one of the given substrings (``None`` = every routed
    layer).
    """

    # Which caches are active.
    request_cache: bool = True
    vector_cache: bool = False
    # Vector-granularity scope.
    layers: tuple[str, ...] | None = None
    # Convolution signature granularity for the vector cache (``None``
    # hashes the whole cross-channel patch — the natural serving choice,
    # where whole-input repeats dominate).
    conv_channel_group: int | None = None
    # How cache misses are computed by the server: "batched" forwards
    # all missing requests of a micro-batch in one stacked call (fast);
    # "per_request" forwards them one by one, which makes every output
    # independent of micro-batch composition and therefore bitwise
    # reproducible against the per-request oracle.
    compute: str = "batched"
    # Hot-key replication: the server's router tracks per-signature
    # request frequency and replicates the ``replicate_top`` hottest
    # signatures' cached rows across every shard (0 = off); see
    # :class:`repro.serving.router.HotKeyTracker`.
    replicate_top: int = 0
    replicate_min_count: int = 3

    def __post_init__(self):
        super().__post_init__()
        if self.compute not in ("batched", "per_request"):
            raise ValueError(f"unknown compute mode {self.compute!r}")
        if self.replicate_top < 0:
            raise ValueError("replicate_top must be >= 0")
        if self.replicate_min_count <= 0:
            raise ValueError("replicate_min_count must be positive")
        if self.replicate_top > 0 and not self.request_cache:
            raise ValueError("hot-key replication replicates request-"
                             "cache rows; enable request_cache")


class SignatureResultCache(ReuseSession):
    """Persistent signature→result store shared across micro-batches.

    The serving-facing face of :class:`~repro.core.session.ReuseSession`
    in persistent mode: one instance serves one stream of equal-length
    vectors (a request payload shape, or one layer's input vectors),
    its state survives across batches, and capacity behaves exactly
    like the hardware structure — set-associative, no replacement.
    """

    def __init__(self, policy: ServingPolicy,
                 hasher: RPQHasher | None = None):
        super().__init__(policy, hasher=hasher, persistent=True)


class ServingReuseEngine:
    """Per-layer cross-batch reuse engine for inference forwards.

    Drop-in for the training engine's ``matmul`` protocol (so any
    :class:`~repro.nn.module.Module` attaches it via ``set_engine``),
    but forward-only and *persistent*: each (layer, vector length)
    stream owns a :class:`SignatureResultCache` whose state survives
    across micro-batches.  Call :meth:`end_batch` once per micro-batch
    to advance the TTL clock.
    """

    def __init__(self, policy: ServingPolicy | None = None):
        self.policy = policy or ServingPolicy(vector_cache=True)
        # ``config`` mirrors the training engine's attribute so layers
        # discover the convolution signature granularity the same way.
        self.config = self.policy
        self.hasher = RPQHasher(seed=self.policy.rpq_seed)
        self.stats = ReuseStats()
        self.batch_index = 0
        # Optional telemetry bus hookup (set by the owning server):
        # ``end_batch`` emits the batch's vector-counter deltas.
        self.bus = None
        self.source = ""
        self._last_counters: dict | None = None
        self._caches: dict[tuple[str, int], SignatureResultCache] = {}
        # The weights operand each stream was populated against.  A
        # cached row is only valid while the layer multiplies by the
        # same matrix; layers that pass data-dependent weights (e.g. an
        # attention score matmul against the batch itself) present a
        # fresh array every call, which this identity check turns into
        # a permanent exact bypass instead of wrong reuse.  (In-place
        # mutation of a parameter while serving is not detectable at
        # this cost — freeze weights, or build a new engine after an
        # update.)
        self._stream_weights: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _layer_enabled(self, layer: str) -> bool:
        patterns = self.policy.layers
        if patterns is None:
            return True
        return any(pattern in layer for pattern in patterns)

    def _weights_stable(self, layer: str, vector_length: int,
                        weights: np.ndarray) -> bool:
        """Whether this stream still multiplies by its original matrix.

        The first call pins the weights array (or its base, so cached
        zero-copy views of one parameter keep matching); any later call
        with a *different* array — a data-dependent operand — empties
        the stream's cache and disables reuse for the call.
        """
        key = (layer, vector_length)
        anchor = weights if weights.base is None else weights.base
        pinned = self._stream_weights.get(key)
        if pinned is None:
            self._stream_weights[key] = anchor
            return True
        if pinned is anchor:
            return True
        cache = self._caches.get(key)
        if cache is not None:
            cache.clear()
        return False

    def cache_for(self, layer: str, vector_length: int
                  ) -> SignatureResultCache:
        key = (layer, vector_length)
        cache = self._caches.get(key)
        if cache is None:
            cache = SignatureResultCache(self.policy, hasher=self.hasher)
            self._caches[key] = cache
        return cache

    def cache_streams(self) -> list[tuple[str, int, SignatureResultCache]]:
        """Every (layer, vector length, cache) stream, snapshot-ordered."""
        return [(layer, length, cache)
                for (layer, length), cache in sorted(self._caches.items())]

    # ------------------------------------------------------------------
    def matmul(self, vectors: np.ndarray, weights: np.ndarray, *,
               layer: str, phase: str = "forward") -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if vectors.ndim != 2 or weights.ndim != 2:
            raise ValueError("matmul expects 2D vectors and weights")
        if vectors.shape[1] != weights.shape[0]:
            raise ValueError(
                f"shape mismatch: vectors {vectors.shape} x "
                f"weights {weights.shape}")
        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]
        if num_vectors == 0:
            return vectors @ weights

        if (phase != "forward" or not self._layer_enabled(layer)
                or not self._weights_stable(layer, vector_length, weights)):
            result = vectors @ weights
            record = self.stats.record_for(layer, phase)
            record.merge_call(vectors=num_vectors, hits=0, mau=0,
                              mnu=num_vectors, vector_length=vector_length,
                              num_filters=num_filters, signature_bits=0,
                              unique_signatures=num_vectors,
                              detection_on=False)
            return result

        cache = self.cache_for(layer, vector_length)
        result, outcome = cache.serve(
            vectors,
            lambda rows: vectors[rows] @ weights,
            self.batch_index)

        # Map the serving outcome onto the training-stats vocabulary:
        # every reused row (cross-batch or intra-batch duplicate) is a
        # HIT, computed-and-admitted uniques are MAU, computed uniques
        # without a line (set full / collision / refresh) are MNU.
        record = self.stats.record_for(layer, phase)
        record.merge_call(
            vectors=num_vectors,
            hits=outcome.hit_rows,
            mau=outcome.inserted_unique,
            mnu=(outcome.computed_unique - outcome.inserted_unique
                 + outcome.aliased_rows),
            vector_length=vector_length, num_filters=num_filters,
            signature_bits=self.policy.signature_bits,
            unique_signatures=outcome.unique,
            detection_on=True)
        return result

    # ------------------------------------------------------------------
    def end_batch(self) -> None:
        """Advance the TTL clock; call once per processed micro-batch."""
        self.batch_index += 1
        if self.bus is not None:
            current = self.counters().to_dict()
            previous = self._last_counters or {}
            delta = {key: current.get(key, 0) - previous.get(key, 0)
                     for key in current if key != "hit_rate"}
            self._last_counters = current
            if any(delta.values()):
                self.bus.emit("serve.vector_batch", source=self.source,
                              batch=self.batch_index, counters=delta)

    def end_iteration(self, loss: float | None = None) -> None:
        """Interface parity with the training engines (no adaptation)."""
        self.end_batch()

    # ------------------------------------------------------------------
    def counters(self) -> CacheCounters:
        """Aggregate row counters across every per-layer cache."""
        return CacheCounters.aggregate(cache.counters
                                       for cache in self._caches.values())

    def layer_summary(self) -> list[dict]:
        """JSON-safe per-(layer, phase) reuse telemetry."""
        rows = []
        for record in self.stats.all_records():
            rows.append({"layer": record.layer, "phase": record.phase,
                         "vectors": int(record.total_vectors),
                         "hits": int(record.hits),
                         "hit_fraction": float(record.hit_fraction),
                         "detection_on":
                             bool(record.similarity_detection_on)})
        return rows

    def occupancy(self) -> dict[str, int]:
        return {f"{layer}:{length}": cache.occupancy()
                for (layer, length), cache in self._caches.items()}
